//! Tokenization: lowercase alphanumeric terms, a fixed stopword list.

/// Stopwords excluded from indexing and queries.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "or", "that", "the", "to", "was", "were", "will", "with",
];

/// Split `text` into lowercase alphanumeric terms, dropping stopwords.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            if !STOPWORDS.contains(&cur.as_str()) {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if !cur.is_empty() && !STOPWORDS.contains(&cur.as_str()) {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("Wireless Mouse, 2.4GHz!"),
            vec!["wireless", "mouse", "2", "4ghz"]
        );
    }

    #[test]
    fn drops_stopwords() {
        assert_eq!(tokenize("the best of the best"), vec!["best", "best"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!...").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Écran HDÉ"), vec!["écran", "hdé"]);
    }
}
