//! # estocada-textstore
//!
//! An in-memory full-text store — the SOLR/Lucene stand-in. Documents
//! (keyed by an application value, e.g. product id) are tokenized into an
//! inverted index; searches score with BM25. The pivot model exposes an
//! index as a `(term, docKey)` relation with an `io` binding pattern: the
//! term must be supplied — exactly how the mediator integrates full-text
//! fragments.

#![warn(missing_docs)]

pub mod tokenize;

pub use tokenize::tokenize;

use estocada_pivot::Value;
use estocada_simkit::{FaultHook, LatencyModel, RequestTimer, StoreError, StoreMetrics};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// BM25 parameters (standard defaults).
const BM25_K1: f64 = 1.2;
const BM25_B: f64 = 0.75;

#[derive(Debug, Default)]
struct TextIndex {
    /// Document keys and token counts, by internal doc id.
    docs: Vec<(Value, u32)>,
    /// Raw document text, by internal doc id (retained so documents can be
    /// removed by exact content and the index rebuilt).
    raw: Vec<String>,
    /// term → postings (doc id, term frequency).
    postings: HashMap<String, Vec<(u32, u32)>>,
    total_tokens: u64,
}

impl TextIndex {
    fn add(&mut self, key: Value, text: &str) {
        let tokens = tokenize(text);
        let id = self.docs.len() as u32;
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in &tokens {
            *tf.entry(t.clone()).or_insert(0) += 1;
        }
        for (term, f) in tf {
            self.postings.entry(term).or_default().push((id, f));
        }
        self.total_tokens += tokens.len() as u64;
        self.docs.push((key, tokens.len() as u32));
        self.raw.push(text.to_string());
    }

    /// Rebuild a fresh index from (key, text) pairs — used after removals,
    /// where doc ids shift and postings must be recomputed.
    fn rebuild_from(pairs: Vec<(Value, String)>) -> TextIndex {
        let mut idx = TextIndex::default();
        for (k, t) in pairs {
            idx.add(k, &t);
        }
        idx
    }

    fn avg_len(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_tokens as f64 / self.docs.len() as f64
        }
    }

    /// BM25-scored disjunctive search over `terms`.
    fn search(&self, terms: &[String], limit: usize) -> Vec<(Value, f64)> {
        let n = self.docs.len() as f64;
        let avg = self.avg_len();
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for term in terms {
            let Some(postings) = self.postings.get(term) else {
                continue;
            };
            let df = postings.len() as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for (doc, tf) in postings {
                let len = self.docs[*doc as usize].1 as f64;
                let tf = *tf as f64;
                let s = idf * (tf * (BM25_K1 + 1.0))
                    / (tf + BM25_K1 * (1.0 - BM25_B + BM25_B * len / avg.max(1.0)));
                *scores.entry(*doc).or_insert(0.0) += s;
            }
        }
        let mut out: Vec<(Value, f64)> = scores
            .into_iter()
            .map(|(doc, s)| (self.docs[doc as usize].0.clone(), s))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(limit);
        out
    }

    /// Unscored postings of one term (the CQ integration path).
    fn lookup(&self, term: &str) -> Vec<Value> {
        self.postings
            .get(term)
            .map(|p| {
                p.iter()
                    .map(|(doc, _)| self.docs[*doc as usize].0.clone())
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// The full-text store: named indexes.
#[derive(Debug, Default)]
pub struct TextStore {
    indexes: RwLock<HashMap<String, TextIndex>>,
    /// Operation metrics.
    pub metrics: StoreMetrics,
    latency: LatencyModel,
    fault: RwLock<Option<Arc<FaultHook>>>,
}

impl TextStore {
    /// A store with no simulated latency.
    pub fn new() -> TextStore {
        TextStore::default()
    }

    /// A store charging `latency` per request.
    pub fn with_latency(latency: LatencyModel) -> TextStore {
        TextStore {
            latency,
            ..TextStore::default()
        }
    }

    /// Index `text` under `key` in `index` (created on demand).
    pub fn index_document(&self, index: &str, key: Value, text: &str) {
        self.indexes
            .write()
            .entry(index.to_string())
            .or_default()
            .add(key, text);
    }

    /// Remove documents from `index`: each `(key, text)` entry removes
    /// **one** document whose key and exact raw text match. The index is
    /// rebuilt once after the batch (doc ids shift, so postings are
    /// recomputed). Returns how many documents were removed. Admin path: no
    /// metrics, latency, or fault hook — like
    /// [`TextStore::index_document`].
    pub fn remove_documents(&self, index: &str, docs: &[(Value, String)]) -> usize {
        let mut guard = self.indexes.write();
        let Some(idx) = guard.get_mut(index) else {
            return 0;
        };
        let mut pairs: Vec<(Value, String)> = idx
            .docs
            .iter()
            .map(|(k, _)| k.clone())
            .zip(idx.raw.iter().cloned())
            .collect();
        let mut removed = 0;
        for (key, text) in docs {
            if let Some(pos) = pairs.iter().position(|(k, t)| k == key && t == text) {
                pairs.remove(pos);
                removed += 1;
            }
        }
        if removed > 0 {
            *idx = TextIndex::rebuild_from(pairs);
        }
        removed
    }

    /// BM25 search; `query` is tokenized with the same analyzer.
    pub fn search(&self, index: &str, query: &str, limit: usize) -> Vec<(Value, f64)> {
        let guard = self.indexes.read();
        let mut timer = RequestTimer::start(&self.metrics, self.latency);
        let out = guard
            .get(index)
            .map(|idx| idx.search(&tokenize(query), limit))
            .unwrap_or_default();
        let bytes: usize = out.iter().map(|(k, _)| k.approx_size() + 8).sum();
        timer.set_output(out.len() as u64, bytes as u64);
        out
    }

    /// Keys of documents containing `term` — the binding-restricted
    /// relational access path (`Contains(term, docKey)` with pattern `io`).
    pub fn term_lookup(&self, index: &str, term: &str) -> Vec<Value> {
        let guard = self.indexes.read();
        let mut timer = RequestTimer::start(&self.metrics, self.latency);
        let normalized = tokenize(term);
        let out = match (guard.get(index), normalized.first()) {
            (Some(idx), Some(t)) => idx.lookup(t),
            _ => Vec::new(),
        };
        let bytes: usize = out.iter().map(Value::approx_size).sum();
        timer.set_output(out.len() as u64, bytes as u64);
        out
    }

    /// Install (or clear) a fault-injection hook. Consulted only by the
    /// fallible query entry points ([`TextStore::try_search`],
    /// [`TextStore::try_term_lookup`]); infallible/admin paths bypass it.
    pub fn set_fault_hook(&self, hook: Option<Arc<FaultHook>>) {
        *self.fault.write() = hook;
    }

    fn fault_check(&self, op: &str) -> Result<(), StoreError> {
        match self.fault.read().as_ref() {
            Some(h) => h.check(op),
            None => Ok(()),
        }
    }

    /// Fallible [`TextStore::search`]: consults the fault hook before the
    /// simulated request.
    pub fn try_search(
        &self,
        index: &str,
        query: &str,
        limit: usize,
    ) -> Result<Vec<(Value, f64)>, StoreError> {
        self.fault_check("search")?;
        Ok(self.search(index, query, limit))
    }

    /// Fallible [`TextStore::term_lookup`]: consults the fault hook before
    /// the simulated request.
    pub fn try_term_lookup(&self, index: &str, term: &str) -> Result<Vec<Value>, StoreError> {
        self.fault_check("term_lookup")?;
        Ok(self.term_lookup(index, term))
    }

    /// Dump of an index's `(key, raw text)` documents in insertion order
    /// (admin path: no metrics, no latency, no fault hook). Empty for
    /// unknown indexes.
    pub fn documents(&self, index: &str) -> Vec<(Value, String)> {
        self.indexes
            .read()
            .get(index)
            .map(|i| {
                i.docs
                    .iter()
                    .map(|(k, _)| k.clone())
                    .zip(i.raw.iter().cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of documents in an index.
    pub fn len(&self, index: &str) -> usize {
        self.indexes
            .read()
            .get(index)
            .map(|i| i.docs.len())
            .unwrap_or(0)
    }

    /// `true` when missing or empty.
    pub fn is_empty(&self, index: &str) -> bool {
        self.len(index) == 0
    }

    /// Drop an index; returns whether it existed.
    pub fn drop_index(&self, index: &str) -> bool {
        self.indexes.write().remove(index).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TextStore {
        let s = TextStore::new();
        s.index_document(
            "catalog",
            Value::Int(1),
            "Wireless optical mouse with USB receiver",
        );
        s.index_document("catalog", Value::Int(2), "Mechanical keyboard, USB");
        s.index_document(
            "catalog",
            Value::Int(3),
            "Wireless keyboard and mouse combo bundle with numeric pad, palm rest and extra cables",
        );
        s
    }

    #[test]
    fn search_ranks_matching_documents() {
        let s = store();
        let hits = s.search("catalog", "wireless mouse", 10);
        assert_eq!(hits.len(), 2);
        // Doc 1 mentions both terms in a shorter doc than doc 3.
        assert_eq!(hits[0].0, Value::Int(1));
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn term_lookup_returns_all_keys() {
        let s = store();
        let mut keys = s.term_lookup("catalog", "usb");
        keys.sort();
        assert_eq!(keys, vec![Value::Int(1), Value::Int(2)]);
        assert!(s.term_lookup("catalog", "ghost").is_empty());
    }

    #[test]
    fn term_lookup_normalizes_case() {
        let s = store();
        assert_eq!(s.term_lookup("catalog", "USB").len(), 2);
    }

    #[test]
    fn limit_truncates_results() {
        let s = store();
        assert_eq!(s.search("catalog", "keyboard mouse usb", 1).len(), 1);
    }

    #[test]
    fn missing_index_is_empty() {
        let s = store();
        assert!(s.search("ghost", "x", 10).is_empty());
        assert!(s.is_empty("ghost"));
        assert_eq!(s.len("catalog"), 3);
    }

    #[test]
    fn remove_documents_rebuilds_the_index() {
        let s = store();
        let removed = s.remove_documents(
            "catalog",
            &[
                (
                    Value::Int(1),
                    "Wireless optical mouse with USB receiver".to_string(),
                ),
                (Value::Int(9), "no such document".to_string()),
            ],
        );
        assert_eq!(removed, 1);
        assert_eq!(s.len("catalog"), 2);
        // Postings were recomputed: "mouse" now only hits doc 3, "usb" doc 2.
        assert_eq!(s.term_lookup("catalog", "mouse"), vec![Value::Int(3)]);
        assert_eq!(s.term_lookup("catalog", "usb"), vec![Value::Int(2)]);
        assert_eq!(s.remove_documents("ghost", &[]), 0);
    }

    #[test]
    fn metrics_record_searches() {
        let s = store();
        s.search("catalog", "usb", 10);
        s.term_lookup("catalog", "usb");
        assert_eq!(s.metrics.snapshot().requests, 2);
    }
}
