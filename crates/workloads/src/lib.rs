//! # estocada-workloads
//!
//! Deterministic dataset and workload generators for the ESTOCADA
//! reproduction: the paper's marketplace scenario (Section II) and the
//! AMPLab Big Data Benchmark used by the demonstration (Section IV). Both
//! replace the proprietary Datalyse e-commerce data with synthetic
//! equivalents of the same schema and distribution shape (see DESIGN.md).

#![warn(missing_docs)]

pub mod analytics;
pub mod bigdata;
pub mod marketplace;
pub mod readwrite;
pub mod scenarios;
pub mod zipf;

pub use analytics::{
    analytics_sql, analytics_workload, run_analytics_exec_time, run_analytics_query,
    AnalyticsConfig, AnalyticsQuery,
};
pub use bigdata::{generate as generate_bigdata, BigDataConfig};
pub use marketplace::{
    generate as generate_marketplace, w1_workload, Marketplace, MarketplaceConfig, W1Query,
};
pub use readwrite::{
    assert_clean_read, run_rw_workload, rw_workload, stale_fragments, RwConfig, RwOp, RwSummary,
};
pub use scenarios::{
    cart_kv_view, cart_pattern, deploy_baseline, deploy_kv_migrated, deploy_materialized_join,
    personalized_sql, pref_sql, run_w1_exec_time, run_w1_query, user_orders_sql,
};
pub use zipf::Zipf;
