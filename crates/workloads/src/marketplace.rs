//! The marketplace scenario of the paper's Section II: product catalog as
//! documents with text, users / orders / shipping as relations, shopping
//! carts as documents, and web logs of user browsing.

use crate::zipf::Zipf;
use estocada::{Dataset, DocData, TableData};
use estocada_pivot::encoding::relational::TableEncoding;
use estocada_pivot::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct MarketplaceConfig {
    /// Number of users.
    pub users: usize,
    /// Number of products.
    pub products: usize,
    /// Number of orders.
    pub orders: usize,
    /// Number of web-log entries.
    pub log_entries: usize,
    /// Zipf skew of user activity.
    pub skew: f64,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl Default for MarketplaceConfig {
    fn default() -> Self {
        MarketplaceConfig {
            users: 1_000,
            products: 500,
            orders: 5_000,
            log_entries: 20_000,
            skew: 0.9,
            seed: 42,
        }
    }
}

/// Product categories used by titles and the personalized-search query.
pub const CATEGORIES: &[&str] = &[
    "laptop", "phone", "keyboard", "mouse", "monitor", "cable", "speaker", "camera",
];

const ADJECTIVES: &[&str] = &[
    "wireless",
    "ergonomic",
    "compact",
    "gaming",
    "premium",
    "budget",
    "portable",
    "silent",
];

/// The generated datasets.
#[derive(Debug)]
pub struct Marketplace {
    /// Relational dataset `sales`: Users, Prefs, Orders, Shipping, WebLog,
    /// Products(+text).
    pub sales: Dataset,
    /// Document dataset `Carts`: one cart per user (object with items).
    pub carts: Dataset,
    /// The configuration used.
    pub config: MarketplaceConfig,
}

/// Generate the marketplace datasets.
pub fn generate(config: MarketplaceConfig) -> Marketplace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let user_zipf = Zipf::new(config.users, config.skew);

    // Users(uid, name, tier)
    let users_rows: Vec<Vec<Value>> = (0..config.users)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::str(format!("user{i}")),
                Value::str(if rng.random_bool(0.2) { "gold" } else { "free" }),
            ]
        })
        .collect();

    // Prefs(uid, theme, language, newsletter)
    let prefs_rows: Vec<Vec<Value>> = (0..config.users)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::str(if rng.random_bool(0.5) {
                    "dark"
                } else {
                    "light"
                }),
                Value::str(["en", "fr", "de", "es"][rng.random_range(0..4)]),
                Value::Bool(rng.random_bool(0.3)),
            ]
        })
        .collect();

    // Products(pid, title, category, price)
    let products_rows: Vec<Vec<Value>> = (0..config.products)
        .map(|i| {
            let cat = CATEGORIES[rng.random_range(0..CATEGORIES.len())];
            let adj1 = ADJECTIVES[rng.random_range(0..ADJECTIVES.len())];
            let adj2 = ADJECTIVES[rng.random_range(0..ADJECTIVES.len())];
            vec![
                Value::Int(i as i64),
                Value::str(format!("{adj1} {adj2} {cat} model {i}")),
                Value::str(cat),
                Value::Double((rng.random_range(500..50_000) as f64) / 100.0),
            ]
        })
        .collect();

    // Orders(oid, uid, pid, category, amount)
    let orders_rows: Vec<Vec<Value>> = (0..config.orders)
        .map(|i| {
            let uid = user_zipf.sample(&mut rng) as i64;
            let pid = rng.random_range(0..config.products) as i64;
            let category = products_rows[pid as usize][2].clone();
            vec![
                Value::Int(i as i64),
                Value::Int(uid),
                Value::Int(pid),
                category,
                Value::Double((rng.random_range(100..100_000) as f64) / 100.0),
            ]
        })
        .collect();

    // Shipping(oid, status, country)
    let shipping_rows: Vec<Vec<Value>> = (0..config.orders)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::str(["pending", "shipped", "delivered"][rng.random_range(0..3)]),
                Value::str(["FR", "DE", "US", "JP"][rng.random_range(0..4)]),
            ]
        })
        .collect();

    // WebLog(lid, uid, pid, category, dwell_ms) — browsing history.
    let log_rows: Vec<Vec<Value>> = (0..config.log_entries)
        .map(|i| {
            let uid = user_zipf.sample(&mut rng) as i64;
            let pid = rng.random_range(0..config.products) as i64;
            let category = products_rows[pid as usize][2].clone();
            vec![
                Value::Int(i as i64),
                Value::Int(uid),
                Value::Int(pid),
                category,
                Value::Int(rng.random_range(100..120_000)),
            ]
        })
        .collect();

    let sales = Dataset::relational(
        "sales",
        vec![
            TableData {
                encoding: TableEncoding::new("Users", &["uid", "name", "tier"], Some(&["uid"])),
                rows: users_rows,
                text_columns: vec![],
            },
            TableData {
                encoding: TableEncoding::new(
                    "Prefs",
                    &["uid", "theme", "language", "newsletter"],
                    Some(&["uid"]),
                ),
                rows: prefs_rows,
                text_columns: vec![],
            },
            TableData {
                encoding: TableEncoding::new(
                    "Products",
                    &["pid", "title", "category", "price"],
                    Some(&["pid"]),
                ),
                rows: products_rows,
                text_columns: vec!["title".into()],
            },
            TableData {
                encoding: TableEncoding::new(
                    "Orders",
                    &["oid", "uid", "pid", "category", "amount"],
                    Some(&["oid"]),
                ),
                rows: orders_rows,
                text_columns: vec![],
            },
            TableData {
                encoding: TableEncoding::new(
                    "Shipping",
                    &["oid", "status", "country"],
                    Some(&["oid"]),
                ),
                rows: shipping_rows,
                text_columns: vec![],
            },
            TableData {
                encoding: TableEncoding::new(
                    "WebLog",
                    &["lid", "uid", "pid", "category", "dwell_ms"],
                    Some(&["lid"]),
                ),
                rows: log_rows,
                text_columns: vec![],
            },
        ],
    );

    // Carts: one document per user with up to 5 items.
    let carts_docs: Vec<DocData> = (0..config.users)
        .map(|i| {
            let n_items = rng.random_range(0..5usize);
            DocData {
                id: Value::Id(i as u64),
                name: format!("cart{i}"),
                body: Value::object_owned([
                    ("user".to_string(), Value::Int(i as i64)),
                    (
                        "items".to_string(),
                        Value::array((0..n_items).map(|_| {
                            let pid = rng.random_range(0..config.products) as i64;
                            Value::object_owned([
                                ("pid".to_string(), Value::Int(pid)),
                                ("qty".to_string(), Value::Int(rng.random_range(1..4))),
                            ])
                        })),
                    ),
                ]),
            }
        })
        .collect();
    let carts = Dataset::documents("Carts", carts_docs);

    Marketplace {
        sales,
        carts,
        config,
    }
}

/// The scenario's workload W1: a Zipf-sampled mix of key-based preference
/// and cart lookups (the predominant queries) plus occasional order scans.
/// Returns SQL texts and document patterns as `(kind, payload)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum W1Query {
    /// `SELECT p.theme, p.language FROM Prefs p WHERE p.uid = ?`
    PrefLookup(i64),
    /// Tree pattern: cart items of one user.
    CartLookup(i64),
    /// `SELECT o.oid, o.amount FROM Orders o WHERE o.uid = ?`
    UserOrders(i64),
}

/// Sample `n` workload-W1 queries.
pub fn w1_workload(config: &MarketplaceConfig, n: usize, seed: u64) -> Vec<W1Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(config.users, config.skew);
    (0..n)
        .map(|_| {
            let uid = zipf.sample(&mut rng) as i64;
            // The key-based searches (preferences, carts) are the
            // predominant point queries; order scans model the rest of the
            // application that the migration does not touch.
            match rng.random_range(0..12) {
                0..=2 => W1Query::PrefLookup(uid),
                3..=5 => W1Query::CartLookup(uid),
                _ => W1Query::UserOrders(uid),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada::DatasetContent;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(MarketplaceConfig {
            users: 50,
            products: 20,
            orders: 100,
            log_entries: 200,
            ..MarketplaceConfig::default()
        });
        let b = generate(MarketplaceConfig {
            users: 50,
            products: 20,
            orders: 100,
            log_entries: 200,
            ..MarketplaceConfig::default()
        });
        match (&a.sales.content, &b.sales.content) {
            (DatasetContent::Relational(ta), DatasetContent::Relational(tb)) => {
                assert_eq!(ta[0].rows, tb[0].rows);
                assert_eq!(ta[3].rows, tb[3].rows);
            }
            _ => panic!("expected relational"),
        }
    }

    #[test]
    fn orders_reference_valid_users_and_products() {
        let m = generate(MarketplaceConfig {
            users: 30,
            products: 10,
            orders: 50,
            log_entries: 10,
            ..MarketplaceConfig::default()
        });
        let DatasetContent::Relational(tables) = &m.sales.content else {
            panic!()
        };
        let orders = &tables[3];
        for row in &orders.rows {
            let uid = row[1].as_int().unwrap();
            let pid = row[2].as_int().unwrap();
            assert!((0..30).contains(&uid));
            assert!((0..10).contains(&pid));
        }
    }

    #[test]
    fn w1_mix_has_all_kinds() {
        let cfg = MarketplaceConfig {
            users: 100,
            ..MarketplaceConfig::default()
        };
        let w = w1_workload(&cfg, 200, 7);
        assert!(w.iter().any(|q| matches!(q, W1Query::PrefLookup(_))));
        assert!(w.iter().any(|q| matches!(q, W1Query::CartLookup(_))));
        assert!(w.iter().any(|q| matches!(q, W1Query::UserOrders(_))));
    }

    #[test]
    fn cart_documents_reference_their_user() {
        let m = generate(MarketplaceConfig {
            users: 10,
            products: 5,
            orders: 10,
            log_entries: 5,
            ..MarketplaceConfig::default()
        });
        let DatasetContent::Documents(docs) = &m.carts.content else {
            panic!()
        };
        assert_eq!(docs.len(), 10);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(d.body.get("user"), Some(&Value::Int(i as i64)));
        }
    }
}
