//! The AMPLab Big Data Benchmark datasets and queries (the demo's public
//! dataset): `Rankings(pageURL, pageRank, avgDuration)` and
//! `UserVisits(sourceIP, destURL, visitDate, adRevenue, ...)`, with the
//! benchmark's three query shapes.

use estocada::{Dataset, TableData};
use estocada_pivot::encoding::relational::TableEncoding;
use estocada_pivot::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct BigDataConfig {
    /// Number of ranked pages.
    pub pages: usize,
    /// Number of user visits.
    pub visits: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BigDataConfig {
    fn default() -> Self {
        BigDataConfig {
            pages: 2_000,
            visits: 20_000,
            seed: 7,
        }
    }
}

/// Generate the `bigdata` relational dataset.
pub fn generate(config: BigDataConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Rankings(url, pageRank, avgDuration) — pageRank roughly Zipf-ish.
    let rankings: Vec<Vec<Value>> = (0..config.pages)
        .map(|i| {
            let rank = (10_000.0 / (1.0 + (i as f64).sqrt())) as i64 + rng.random_range(0..50);
            vec![
                Value::str(format!("url{i}")),
                Value::Int(rank),
                Value::Int(rng.random_range(1..120)),
            ]
        })
        .collect();

    // UserVisits(sourceIP, destURL, visitDate, adRevenue, countryCode, duration)
    let visits: Vec<Vec<Value>> = (0..config.visits)
        .map(|i| {
            let page = rng.random_range(0..config.pages);
            let ip = format!(
                "{}.{}.{}.{}",
                rng.random_range(1..224),
                rng.random_range(0..256),
                rng.random_range(0..256),
                rng.random_range(1..255)
            );
            vec![
                Value::Int(i as i64),
                Value::str(ip),
                Value::str(format!("url{page}")),
                Value::Int(rng.random_range(19_800_000..20_260_000)), // yyyymmdd-ish
                Value::Double(rng.random::<f64>() * 5.0),
                Value::str(["FR", "DE", "US", "JP", "BR"][rng.random_range(0..5)]),
                Value::Int(rng.random_range(1..600)),
            ]
        })
        .collect();

    Dataset::relational(
        "bigdata",
        vec![
            TableData {
                encoding: TableEncoding::new(
                    "Rankings",
                    &["pageURL", "pageRank", "avgDuration"],
                    Some(&["pageURL"]),
                ),
                rows: rankings,
                text_columns: vec![],
            },
            TableData {
                encoding: TableEncoding::new(
                    "UserVisits",
                    &[
                        "vid",
                        "sourceIP",
                        "destURL",
                        "visitDate",
                        "adRevenue",
                        "countryCode",
                        "duration",
                    ],
                    Some(&["vid"]),
                ),
                rows: visits,
                text_columns: vec![],
            },
        ],
    )
}

/// Q1 (scan): `SELECT pageURL, pageRank FROM Rankings WHERE pageRank > X`.
pub fn q1_sql(threshold: i64) -> String {
    format!("SELECT r.pageURL, r.pageRank FROM Rankings r WHERE r.pageRank > {threshold}")
}

/// The conjunctive core of Q2 (aggregation): fetch `(sourceIP, adRevenue)`
/// pairs; the `SUBSTR`/`SUM` aggregation runs in the mediator runtime (see
/// the benchmark harness).
pub fn q2_fetch_sql() -> String {
    "SELECT v.vid, v.sourceIP, v.adRevenue FROM UserVisits v".to_string()
}

/// Q3 (join): rankings joined with visits in a date range, fetching the
/// per-visit revenue and rank.
pub fn q3_sql(date_lo: i64, date_hi: i64) -> String {
    format!(
        "SELECT v.vid, v.sourceIP, v.adRevenue, r.pageRank FROM Rankings r, UserVisits v \
         WHERE r.pageURL = v.destURL AND v.visitDate >= {date_lo} AND v.visitDate <= {date_hi}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada::DatasetContent;

    #[test]
    fn generation_shapes() {
        let d = generate(BigDataConfig {
            pages: 100,
            visits: 500,
            seed: 1,
        });
        let DatasetContent::Relational(tables) = &d.content else {
            panic!()
        };
        assert_eq!(tables[0].rows.len(), 100);
        assert_eq!(tables[1].rows.len(), 500);
        // Visits reference generated pages.
        for row in &tables[1].rows {
            let url = row[2].as_str().unwrap();
            let n: usize = url.strip_prefix("url").unwrap().parse().unwrap();
            assert!(n < 100);
        }
    }

    #[test]
    fn page_rank_is_skewed_descending() {
        let d = generate(BigDataConfig {
            pages: 100,
            visits: 10,
            seed: 2,
        });
        let DatasetContent::Relational(tables) = &d.content else {
            panic!()
        };
        let first = tables[0].rows[0][1].as_int().unwrap();
        let last = tables[0].rows[99][1].as_int().unwrap();
        assert!(first > last);
    }

    #[test]
    fn query_texts_parse_against_schema() {
        let d = generate(BigDataConfig {
            pages: 10,
            visits: 10,
            seed: 3,
        });
        let mut est = estocada::Estocada::in_memory();
        est.register_dataset(d).unwrap();
        est.add_fragment(estocada::FragmentSpec::NativeTables {
            dataset: "bigdata".into(),
            only: None,
        })
        .unwrap();
        assert!(est.query_sql(&q1_sql(1000)).is_ok());
        assert!(est.query_sql(&q2_fetch_sql()).is_ok());
        assert!(est.query_sql(&q3_sql(19_900_000, 20_000_000)).is_ok());
    }
}
