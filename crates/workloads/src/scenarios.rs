//! Pre-built deployments of the marketplace scenario — the storage
//! configurations the paper's Section II walks through, plus query helpers.
//!
//! - [`deploy_baseline`]: first release — Postgres-like store for users /
//!   prefs / orders / shipping, MongoDB-like store for carts, SOLR-like
//!   index for the catalog, Spark-like store for the web logs.
//! - [`deploy_kv_migrated`]: baseline + Voldemort/Redis-like key-value
//!   fragments for user preferences and shopping carts (the first change,
//!   "+20% on the application workload").
//! - [`deploy_materialized_join`]: the second change — the join of past
//!   purchases and browsing history materialized as a relation in the
//!   parallel store, indexed by user ID and product category ("an extra
//!   40%").

use crate::marketplace::{Marketplace, W1Query};
use estocada::{Estocada, FragmentSpec, Latencies, QueryOptions, QueryResult, ValidationMode};
use estocada_pivot::encoding::document::{PatternStep, TreePattern};
use estocada_pivot::{Cq, CqBuilder, Symbol, Term};
use std::time::Duration;

/// The cart tree pattern binding `(pid, qty)` of every item of one user.
/// Uses explicit child steps so that fragment views over the same shape
/// match structurally.
pub fn cart_pattern(uid: i64) -> TreePattern {
    TreePattern::new("Carts")
        .with_step(PatternStep::child("user").eq(uid))
        .with_step(
            PatternStep::child("items").with_child(
                PatternStep::child("$item")
                    .with_child(PatternStep::child("pid").bind("pid"))
                    .with_child(PatternStep::child("qty").bind("qty")),
            ),
        )
}

/// The cart view (same pattern, key variable instead of the constant):
/// `CartKV(user, pid, qty)`.
pub fn cart_kv_view() -> Cq {
    let pattern = TreePattern::new("Carts")
        .with_step(PatternStep::child("user").bind("user"))
        .with_step(
            PatternStep::child("items").with_child(
                PatternStep::child("$item")
                    .with_child(PatternStep::child("pid").bind("pid"))
                    .with_child(PatternStep::child("qty").bind("qty")),
            ),
        );
    let mut next = 0u32;
    let (atoms, bindings) = pattern.to_atoms(&mut next);
    let term_of = |name: &str| -> Term {
        bindings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.clone())
            .expect("binding")
    };
    Cq::new(
        Symbol::intern("CartKV"),
        vec![term_of("user"), term_of("pid"), term_of("qty")],
        atoms,
    )
}

/// SQL of the preference lookup.
pub fn pref_sql(uid: i64) -> String {
    format!("SELECT p.theme, p.language FROM Prefs p WHERE p.uid = {uid}")
}

/// SQL of the order history lookup.
pub fn user_orders_sql(uid: i64) -> String {
    format!("SELECT o.oid, o.amount FROM Orders o WHERE o.uid = {uid}")
}

/// SQL of the personalized item search: purchases × browsing history of one
/// user within one category.
pub fn personalized_sql(uid: i64, category: &str) -> String {
    format!(
        "SELECT o.pid, l.pid, o.amount, l.dwell_ms FROM Orders o, WebLog l \
         WHERE o.uid = {uid} AND l.uid = {uid} \
         AND o.category = '{category}' AND l.category = '{category}'"
    )
}

/// First-release deployment (see module docs). Every builtin deployment
/// runs its DDL under [`ValidationMode::Strict`]: the static analyzer
/// certifies each step, and a regression that introduced an
/// error-severity finding would fail these constructors outright.
pub fn deploy_baseline(m: &Marketplace, latencies: Latencies) -> Estocada {
    let mut est = Estocada::new(latencies);
    est.set_validation(ValidationMode::Strict);
    est.register_dataset(m.sales.clone()).unwrap();
    est.register_dataset(m.carts.clone()).unwrap();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "sales".into(),
        only: Some(vec![
            "Users".into(),
            "Prefs".into(),
            "Products".into(),
            "Orders".into(),
            "Shipping".into(),
        ]),
    })
    .expect("native tables");
    est.add_fragment(FragmentSpec::NativeDoc {
        dataset: "Carts".into(),
    })
    .expect("native docs");
    // The first release would index carts by user in the document store.
    est.stores.doc.create_index("Carts", "user");
    est.add_fragment(FragmentSpec::TextIndex {
        table: "Products".into(),
    })
    .expect("text index");
    // Web logs live in the parallel cluster.
    est.add_fragment(FragmentSpec::ParRows {
        view: CqBuilder::new("WebLogPar")
            .head_vars(["lid", "uid", "pid", "category", "dwell_ms"])
            .atom("WebLog", |a| {
                a.v("lid").v("uid").v("pid").v("category").v("dwell_ms")
            })
            .build(),
        index_on: vec![],
        partitions: 0,
    })
    .expect("weblog parallel");
    est
}

/// Baseline plus the key-value migration of preferences and carts.
pub fn deploy_kv_migrated(m: &Marketplace, latencies: Latencies) -> Estocada {
    let mut est = deploy_baseline(m, latencies);
    est.add_fragment(FragmentSpec::KeyValue {
        view: CqBuilder::new("PrefsKV")
            .head_vars(["uid", "theme", "language", "newsletter"])
            .atom("Prefs", |a| {
                a.v("uid").v("theme").v("language").v("newsletter")
            })
            .build(),
    })
    .expect("prefs kv");
    est.add_fragment(FragmentSpec::KeyValue {
        view: cart_kv_view(),
    })
    .expect("cart kv");
    est
}

/// KV-migrated deployment plus the materialized purchases⋈browsing join in
/// the parallel store, indexed by (uid, category).
pub fn deploy_materialized_join(m: &Marketplace, latencies: Latencies) -> Estocada {
    let mut est = deploy_kv_migrated(m, latencies);
    est.add_fragment(FragmentSpec::ParRows {
        view: CqBuilder::new("UserHist")
            .head_vars(["uid", "category", "opid", "amount", "lpid", "dwell_ms"])
            .atom("Orders", |a| {
                a.v("oid").v("uid").v("opid").v("category").v("amount")
            })
            .atom("WebLog", |a| {
                a.v("lid").v("uid").v("lpid").v("category").v("dwell_ms")
            })
            .build(),
        index_on: vec!["uid".into(), "category".into()],
        partitions: 0,
    })
    .expect("materialized join");
    est
}

/// Pin the rewriting worker count of a deployment (the parallel-backchase
/// knob) by adjusting its default [`QueryOptions`]. The rewriting outcome
/// is identical at any value — deployments use this to trade rewriting
/// latency against CPU, never correctness:
/// `let est = with_rewrite_workers(deploy_baseline(&m, lat), 4);`
pub fn with_rewrite_workers(mut est: Estocada, workers: usize) -> Estocada {
    let opts = QueryOptions {
        rewrite_workers: Some(workers.max(1)),
        ..est.default_query_options()
    };
    est.set_default_query_options(opts);
    est
}

/// Pin the trigger-search worker count of the chase loops inside a
/// deployment's rewriter (the phase-split knob) by adjusting its default
/// [`QueryOptions`]. Like [`with_rewrite_workers`], the outcome is
/// identical at any value — deployments use it to trade rewriting latency
/// against CPU: `let est = with_chase_workers(deploy_baseline(&m, lat), 4);`
pub fn with_chase_workers(mut est: Estocada, workers: usize) -> Estocada {
    let opts = QueryOptions {
        chase_workers: Some(workers.max(1)),
        ..est.default_query_options()
    };
    est.set_default_query_options(opts);
    est
}

/// Run one W1 query, returning its result. Takes `&Estocada`: W1 clients
/// share one engine.
pub fn run_w1_query(est: &Estocada, q: &W1Query) -> estocada::Result<QueryResult> {
    match q {
        W1Query::PrefLookup(uid) => est.query_sql(&pref_sql(*uid)),
        W1Query::CartLookup(uid) => {
            let p = cart_pattern(*uid);
            est.query_doc(&p, &["pid", "qty"])
        }
        W1Query::UserOrders(uid) => est.query_sql(&user_orders_sql(*uid)),
    }
}

/// Execute a W1 workload, summing *execution* time (stores + mediator
/// runtime; excludes rewriting, which a deployed application pays once per
/// query template — see EXPERIMENTS.md).
pub fn run_w1_exec_time(est: &Estocada, workload: &[W1Query]) -> Duration {
    let mut total = Duration::ZERO;
    for q in workload {
        let r = run_w1_query(est, q).expect("workload query failed");
        total += r.report.exec.total_time;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marketplace::{generate, MarketplaceConfig};

    fn small() -> Marketplace {
        generate(MarketplaceConfig {
            users: 60,
            products: 30,
            orders: 200,
            log_entries: 400,
            skew: 0.8,
            seed: 5,
        })
    }

    #[test]
    fn baseline_answers_all_w1_kinds() {
        let m = small();
        let est = deploy_baseline(&m, Latencies::zero());
        assert!(run_w1_query(&est, &W1Query::PrefLookup(3)).is_ok());
        assert!(run_w1_query(&est, &W1Query::CartLookup(3)).is_ok());
        assert!(run_w1_query(&est, &W1Query::UserOrders(3)).is_ok());
    }

    #[test]
    fn rewrite_worker_count_does_not_change_answers() {
        let m = small();
        let serial = with_rewrite_workers(deploy_kv_migrated(&m, Latencies::zero()), 1);
        let parallel = with_rewrite_workers(deploy_kv_migrated(&m, Latencies::zero()), 4);
        assert_eq!(parallel.rewrite_config().parallelism, 4);
        for q in [
            W1Query::PrefLookup(3),
            W1Query::CartLookup(7),
            W1Query::UserOrders(13),
        ] {
            let a = run_w1_query(&serial, &q).unwrap();
            let b = run_w1_query(&parallel, &q).unwrap();
            assert_eq!(a.rows, b.rows, "{q:?} differs across worker counts");
            assert_eq!(
                a.report.alternatives.len(),
                b.report.alternatives.len(),
                "{q:?} found different rewriting sets"
            );
        }
    }

    #[test]
    fn chase_worker_count_does_not_change_answers() {
        let m = small();
        let serial = with_chase_workers(deploy_kv_migrated(&m, Latencies::zero()), 1);
        let parallel = with_chase_workers(deploy_kv_migrated(&m, Latencies::zero()), 4);
        assert_eq!(parallel.rewrite_config().chase.search_workers, 4);
        assert_eq!(parallel.rewrite_config().prov.search_workers, 4);
        for q in [
            W1Query::PrefLookup(3),
            W1Query::CartLookup(7),
            W1Query::UserOrders(13),
        ] {
            let a = run_w1_query(&serial, &q).unwrap();
            let b = run_w1_query(&parallel, &q).unwrap();
            assert_eq!(a.rows, b.rows, "{q:?} differs across chase worker counts");
            assert_eq!(
                a.report.alternatives.len(),
                b.report.alternatives.len(),
                "{q:?} found different rewriting sets"
            );
        }
    }

    #[test]
    fn kv_migrated_uses_kv_for_prefs_and_carts() {
        let m = small();
        let est = deploy_kv_migrated(&m, Latencies::zero());
        let r = run_w1_query(&est, &W1Query::PrefLookup(3)).unwrap();
        assert!(
            r.report.delegated[0].starts_with("key-value: GET PrefsKV"),
            "got {:?}",
            r.report.delegated
        );
        let r = run_w1_query(&est, &W1Query::CartLookup(3)).unwrap();
        assert!(
            r.report.delegated[0].starts_with("key-value: GET CartKV"),
            "got {:?}",
            r.report.delegated
        );
    }

    #[test]
    fn kv_and_baseline_agree_on_results() {
        let m = small();
        let base = deploy_baseline(&m, Latencies::zero());
        let kv = deploy_kv_migrated(&m, Latencies::zero());
        for uid in [0, 1, 7, 13] {
            let a = run_w1_query(&base, &W1Query::CartLookup(uid)).unwrap();
            let b = run_w1_query(&kv, &W1Query::CartLookup(uid)).unwrap();
            let mut ra = a.rows.clone();
            let mut rb = b.rows.clone();
            ra.sort();
            rb.sort();
            assert_eq!(ra, rb, "cart {uid} differs across configurations");
        }
    }

    #[test]
    fn personalized_search_improves_with_materialized_join() {
        let m = small();
        let before = deploy_kv_migrated(&m, Latencies::zero());
        let after = deploy_materialized_join(&m, Latencies::zero());
        let sql = personalized_sql(1, "laptop");
        let rb = before.query_sql(&sql).unwrap();
        let ra = after.query_sql(&sql).unwrap();
        let mut x = rb.rows.clone();
        let mut y = ra.rows.clone();
        x.sort();
        y.sort();
        assert_eq!(x, y, "results must agree");
        assert!(
            ra.report.delegated[0].starts_with("parallel: LOOKUP UserHist"),
            "expected indexed lookup, got {:?}",
            ra.report.delegated
        );
        // The before-plan touches two systems.
        assert!(rb.report.delegated.len() >= 2);
    }
}
