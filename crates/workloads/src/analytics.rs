//! Analytics workload: Zipf-skewed GROUP BY / HAVING aggregates over the
//! marketplace deployments — the "reporting" counterpart to the W1
//! lookup workload, exercising the aggregation frontend and the
//! vectorized batch executor over rewritten hybrid plans.
//!
//! Skew matters here the same way it does for W1: dashboards re-run the
//! same per-user / per-category rollups for hot users and hot categories,
//! so the generator samples both through [`Zipf`].
//!
//! A note on semantics: the mediator evaluates conjunctive cores under set
//! semantics, so aggregates range over *distinct* core tuples (see
//! `estocada::frontends::sql`). Every query below aggregates a key column
//! (`COUNT(o.oid)`, `COUNT(l.lid)`) alongside the measures, which makes
//! the core tuples unique per underlying row and the sums/averages exact.

use crate::marketplace::CATEGORIES;
use crate::zipf::Zipf;
use estocada::{Estocada, QueryResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Analytics workload shape.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticsConfig {
    /// Number of queries to generate.
    pub queries: usize,
    /// User-id domain (match the marketplace's `users`).
    pub users: usize,
    /// Zipf skew of user/category sampling (0 = uniform).
    pub skew: f64,
    /// HAVING threshold of the big-spender rollup.
    pub min_total: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnalyticsConfig {
    fn default() -> Self {
        AnalyticsConfig {
            queries: 40,
            users: 1_000,
            skew: 0.9,
            min_total: 200,
            seed: 77,
        }
    }
}

/// One analytics query template with its sampled parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyticsQuery {
    /// Per-category order volume, revenue, and price extrema (all five
    /// aggregate functions over one GROUP BY).
    CategoryVolume,
    /// Users whose total spend clears a threshold (GROUP BY + HAVING on an
    /// aggregate).
    BigSpenders {
        /// Minimum total spend.
        min_total: i64,
    },
    /// Order counts per (user tier × product category) — a grouped
    /// cross-fragment join.
    TierCategoryMatrix,
    /// Per-product view counts and dwell time within one (hot) category of
    /// the web logs.
    CategoryEngagement {
        /// Sampled product category.
        category: String,
    },
    /// One (hot) user's spend per category.
    UserSpendByCategory {
        /// Sampled user id.
        uid: i64,
    },
}

/// Render a query to mini-SQL.
pub fn analytics_sql(q: &AnalyticsQuery) -> String {
    match q {
        AnalyticsQuery::CategoryVolume => "SELECT o.category, COUNT(o.oid) AS orders, \
             SUM(o.amount) AS revenue, MIN(o.amount) AS cheapest, MAX(o.amount) AS priciest \
             FROM Orders o GROUP BY o.category"
            .to_string(),
        AnalyticsQuery::BigSpenders { min_total } => format!(
            "SELECT o.uid, COUNT(o.oid) AS orders, SUM(o.amount) AS total \
             FROM Orders o GROUP BY o.uid HAVING SUM(o.amount) >= {min_total}"
        ),
        AnalyticsQuery::TierCategoryMatrix => "SELECT u.tier, o.category, COUNT(o.oid) AS orders \
             FROM Users u, Orders o WHERE u.uid = o.uid GROUP BY u.tier, o.category"
            .to_string(),
        AnalyticsQuery::CategoryEngagement { category } => format!(
            "SELECT l.pid, COUNT(l.lid) AS views, AVG(l.dwell_ms) AS avg_dwell \
             FROM WebLog l WHERE l.category = '{category}' GROUP BY l.pid"
        ),
        AnalyticsQuery::UserSpendByCategory { uid } => format!(
            "SELECT o.category, COUNT(o.oid) AS orders, SUM(o.amount) AS spend \
             FROM Orders o WHERE o.uid = {uid} GROUP BY o.category"
        ),
    }
}

/// Generate a deterministic, Zipf-skewed analytics workload.
pub fn analytics_workload(cfg: &AnalyticsConfig) -> Vec<AnalyticsQuery> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let user_zipf = Zipf::new(cfg.users.max(1), cfg.skew);
    let cat_zipf = Zipf::new(CATEGORIES.len(), cfg.skew);
    (0..cfg.queries)
        .map(|_| match rng.random_range(0..5) {
            0 => AnalyticsQuery::CategoryVolume,
            1 => AnalyticsQuery::BigSpenders {
                min_total: cfg.min_total,
            },
            2 => AnalyticsQuery::TierCategoryMatrix,
            3 => AnalyticsQuery::CategoryEngagement {
                category: CATEGORIES[cat_zipf.sample(&mut rng)].to_string(),
            },
            _ => AnalyticsQuery::UserSpendByCategory {
                uid: user_zipf.sample(&mut rng) as i64,
            },
        })
        .collect()
}

/// Run one analytics query against a deployment.
pub fn run_analytics_query(est: &Estocada, q: &AnalyticsQuery) -> estocada::Result<QueryResult> {
    est.query_sql(&analytics_sql(q))
}

/// Execute an analytics workload, summing *execution* time (stores +
/// mediator runtime; excludes rewriting — same accounting as
/// [`crate::scenarios::run_w1_exec_time`]).
pub fn run_analytics_exec_time(est: &Estocada, workload: &[AnalyticsQuery]) -> Duration {
    let mut total = Duration::ZERO;
    for q in workload {
        let r = run_analytics_query(est, q).expect("analytics query failed");
        total += r.report.exec.total_time;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marketplace::{generate, MarketplaceConfig};
    use crate::scenarios::{deploy_baseline, deploy_kv_migrated, deploy_materialized_join};
    use estocada::Latencies;

    fn small() -> crate::marketplace::Marketplace {
        generate(MarketplaceConfig {
            users: 50,
            products: 24,
            orders: 160,
            log_entries: 300,
            skew: 0.8,
            seed: 9,
        })
    }

    fn family() -> Vec<AnalyticsQuery> {
        vec![
            AnalyticsQuery::CategoryVolume,
            AnalyticsQuery::BigSpenders { min_total: 50 },
            AnalyticsQuery::TierCategoryMatrix,
            AnalyticsQuery::CategoryEngagement {
                category: "laptop".into(),
            },
            AnalyticsQuery::UserSpendByCategory { uid: 1 },
        ]
    }

    #[test]
    fn workload_is_deterministic_and_skewed() {
        let cfg = AnalyticsConfig {
            queries: 200,
            users: 100,
            ..AnalyticsConfig::default()
        };
        let a = analytics_workload(&cfg);
        let b = analytics_workload(&cfg);
        assert_eq!(a, b, "same seed must give the same workload");
        // Skewed user sampling: the hottest user dominates the tail.
        let hot = a
            .iter()
            .filter(|q| matches!(q, AnalyticsQuery::UserSpendByCategory { uid: 0 }))
            .count();
        let cold = a
            .iter()
            .filter(|q| matches!(q, AnalyticsQuery::UserSpendByCategory { uid } if *uid >= 50))
            .count();
        assert!(hot >= cold, "Zipf sampling should favor user 0");
    }

    /// The whole query family runs over all three builtin deployments
    /// (DDL under `ValidationMode::Strict`), and the vectorized executor
    /// agrees with the tuple-at-a-time oracle on every result.
    #[test]
    fn family_runs_on_all_deployments_and_matches_tuple_oracle() {
        let m = small();
        for est in [
            deploy_baseline(&m, Latencies::zero()),
            deploy_kv_migrated(&m, Latencies::zero()),
            deploy_materialized_join(&m, Latencies::zero()),
        ] {
            for q in family() {
                let sql = analytics_sql(&q);
                let vec = est.query(&sql).run().unwrap_or_else(|e| {
                    panic!("vectorized {q:?} failed: {e}");
                });
                let tup = est.query(&sql).with_vectorized(false).run().unwrap();
                assert_eq!(vec.columns, tup.columns, "{q:?} columns differ");
                let mut a = vec.rows.clone();
                let mut b = tup.rows.clone();
                a.sort();
                b.sort();
                assert_eq!(a, b, "{q:?} rows differ across executors");
                assert!(
                    !vec.rows.is_empty(),
                    "{q:?} should produce rows on the test data"
                );
            }
        }
    }

    #[test]
    fn having_filters_groups() {
        let m = small();
        let est = deploy_baseline(&m, Latencies::zero());
        let all = run_analytics_query(&est, &AnalyticsQuery::BigSpenders { min_total: 0 })
            .unwrap()
            .rows;
        let some = run_analytics_query(&est, &AnalyticsQuery::BigSpenders { min_total: 200 })
            .unwrap()
            .rows;
        assert!(
            some.len() < all.len(),
            "HAVING threshold should drop groups ({} vs {})",
            some.len(),
            all.len()
        );
        assert!(!some.is_empty(), "some users should clear the threshold");
    }
}
