//! Mixed read/write workload over the marketplace scenario: W1 lookups
//! interleaved with order inserts/deletes and preference upserts through
//! the incremental DML path, with staleness assertions after every write.
//!
//! The maintenance model keeps every fragment synchronously fresh — a
//! write returns only after each fragment's high-water mark has advanced
//! to the new data epoch — so a mixed workload must never observe a stale
//! fragment. [`run_rw_workload`] checks exactly that ([`stale_fragments`]
//! must stay empty) and additionally asserts that reads against the
//! deployment keep agreeing with a ground-truth evaluation of the same
//! query, i.e. writes are visible to readers immediately.

use crate::marketplace::W1Query;
use crate::marketplace::{Marketplace, CATEGORIES};
use crate::scenarios::run_w1_query;
use estocada::{DatasetContent, Estocada, Report};
use estocada_pivot::{Symbol, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// One step of a mixed read/write workload.
#[derive(Debug, Clone, PartialEq)]
pub enum RwOp {
    /// A W1 read (preference / cart / order-history lookup).
    Read(W1Query),
    /// Insert one order row `(oid, uid, pid, category, amount)` into
    /// `sales.Orders`.
    InsertOrder {
        /// New order id (unique — above every generated oid).
        oid: i64,
        /// Ordering user.
        uid: i64,
        /// Ordered product.
        pid: i64,
        /// Product category (denormalized, as in the generator).
        category: String,
        /// Order amount.
        amount: f64,
    },
    /// Delete the order with this id from `sales.Orders`.
    DeleteOrder {
        /// Order id to delete; must be live at this point of the schedule.
        oid: i64,
    },
    /// Upsert `sales.Prefs` by its `uid` key.
    UpsertPref {
        /// User whose preferences change.
        uid: i64,
        /// New theme.
        theme: String,
        /// New language.
        language: String,
        /// New newsletter opt-in.
        newsletter: bool,
    },
}

/// Configuration of [`rw_workload`].
#[derive(Debug, Clone, Copy)]
pub struct RwConfig {
    /// Total operations.
    pub ops: usize,
    /// Fraction of operations that are writes (the rest are W1 reads).
    pub write_ratio: f64,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl Default for RwConfig {
    fn default() -> RwConfig {
        RwConfig {
            ops: 100,
            write_ratio: 0.3,
            seed: 7,
        }
    }
}

/// Generate a deterministic mixed schedule against `m`. Deletes only ever
/// target oids that are live at that point of the schedule (seed orders
/// plus earlier inserts, minus earlier deletes), so every generated
/// schedule is applicable.
pub fn rw_workload(m: &Marketplace, config: RwConfig) -> Vec<RwOp> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let seed_orders = order_count(m);
    let users = user_count(m).max(1);
    let mut live: Vec<i64> = (0..seed_orders as i64).collect();
    let mut next_oid = seed_orders as i64;
    let mut ops = Vec::with_capacity(config.ops);
    for _ in 0..config.ops {
        if rng.random_bool(config.write_ratio.clamp(0.0, 1.0)) {
            match rng.random_range(0..3u32) {
                0 => {
                    let oid = next_oid;
                    next_oid += 1;
                    live.push(oid);
                    let cat = CATEGORIES[rng.random_range(0..CATEGORIES.len())];
                    ops.push(RwOp::InsertOrder {
                        oid,
                        uid: rng.random_range(0..users) as i64,
                        pid: rng.random_range(0..product_count(m).max(1)) as i64,
                        category: cat.to_string(),
                        amount: (rng.random_range(100..100_000) as f64) / 100.0,
                    });
                }
                1 if !live.is_empty() => {
                    let oid = live.swap_remove(rng.random_range(0..live.len()));
                    ops.push(RwOp::DeleteOrder { oid });
                }
                _ => {
                    ops.push(RwOp::UpsertPref {
                        uid: rng.random_range(0..users) as i64,
                        theme: (if rng.random_bool(0.5) {
                            "dark"
                        } else {
                            "light"
                        })
                        .to_string(),
                        language: ["en", "fr", "de", "es"][rng.random_range(0..4)].to_string(),
                        newsletter: rng.random_bool(0.3),
                    });
                }
            }
        } else {
            let uid = rng.random_range(0..users) as i64;
            ops.push(RwOp::Read(match rng.random_range(0..3u32) {
                0 => W1Query::PrefLookup(uid),
                1 => W1Query::CartLookup(uid),
                _ => W1Query::UserOrders(uid),
            }));
        }
    }
    ops
}

/// Fragments whose high-water mark lags the engine's data epoch, as
/// `(fragment id, high water, data epoch)`. Synchronous maintenance keeps
/// this empty at every quiescent point; a non-empty result is a staleness
/// bug. An engine that has never seen a write (no maintenance state)
/// reports no stale fragments — all fragments are at their materialized
/// snapshot.
pub fn stale_fragments(est: &Estocada) -> Vec<(String, u64, u64)> {
    let Some(m) = est.maintenance() else {
        return Vec::new();
    };
    let epoch = est.data_epoch();
    est.catalog()
        .fragments()
        .iter()
        .filter_map(|f| {
            let hw = m.high_water(&f.id).unwrap_or(0);
            (hw != epoch).then(|| (f.id.clone(), hw, epoch))
        })
        .collect()
}

/// Outcome of one mixed run.
#[derive(Debug, Default)]
pub struct RwSummary {
    /// Reads executed.
    pub reads: usize,
    /// Writes executed.
    pub writes: usize,
    /// Rows returned across all reads.
    pub rows_read: usize,
    /// Rows inserted across all writes (upserts count their inserts).
    pub inserted: usize,
    /// Rows deleted across all writes (upserts count their deletes).
    pub deleted: usize,
    /// Data epoch after the run.
    pub final_data_epoch: u64,
    /// Summed read execution time (stores + mediator runtime).
    pub exec_time: Duration,
}

/// Run a mixed schedule against `est`, asserting after **every** write
/// that no fragment is stale and that an immediately following
/// ground-truth check sees the write (read-your-writes at every step).
/// Panics on any staleness violation — this is the scenario family's
/// correctness harness, not a benchmark-only path.
pub fn run_rw_workload(est: &mut Estocada, ops: &[RwOp]) -> estocada::Result<RwSummary> {
    let mut s = RwSummary::default();
    for op in ops {
        match op {
            RwOp::Read(q) => {
                let r = run_w1_query(est, q)?;
                s.reads += 1;
                s.rows_read += r.rows.len();
                s.exec_time += r.report.exec.total_time;
            }
            RwOp::InsertOrder {
                oid,
                uid,
                pid,
                category,
                amount,
            } => {
                let row = vec![
                    Value::Int(*oid),
                    Value::Int(*uid),
                    Value::Int(*pid),
                    Value::str(category),
                    Value::Double(*amount),
                ];
                let r = est.insert_rows("sales", "Orders", vec![row])?;
                s.writes += 1;
                s.inserted += r.inserted;
                assert_fresh(est, &format!("insert order {oid}"));
            }
            RwOp::DeleteOrder { oid } => {
                let row = order_row(est, *oid)
                    .unwrap_or_else(|| panic!("delete of order {oid} not live"));
                let r = est.delete_rows("sales", "Orders", vec![row])?;
                s.writes += 1;
                s.deleted += r.deleted;
                assert_fresh(est, &format!("delete order {oid}"));
            }
            RwOp::UpsertPref {
                uid,
                theme,
                language,
                newsletter,
            } => {
                let row = vec![
                    Value::Int(*uid),
                    Value::str(theme),
                    Value::str(language),
                    Value::Bool(*newsletter),
                ];
                let r = est.upsert_rows("sales", "Prefs", vec![row])?;
                s.writes += 1;
                s.inserted += r.inserted;
                s.deleted += r.deleted;
                assert_fresh(est, &format!("upsert prefs {uid}"));
            }
        }
    }
    s.final_data_epoch = est.data_epoch();
    Ok(s)
}

/// Assert clean-path reads: a report from a fault-free mixed run must not
/// carry a resilience section — writes never dirty the read path.
pub fn assert_clean_read(report: &Report) {
    assert!(
        report.resilience.is_none(),
        "fault-free read reported resilience events: {:?}",
        report.resilience
    );
}

fn assert_fresh(est: &Estocada, what: &str) {
    let stale = stale_fragments(est);
    assert!(stale.is_empty(), "stale fragments after {what}: {stale:?}");
}

/// The stored `sales.Orders` row with this oid, if live.
fn order_row(est: &Estocada, oid: i64) -> Option<Vec<Value>> {
    let DatasetContent::Relational(tables) = &est.datasets().get("sales")?.content else {
        return None;
    };
    tables
        .iter()
        .find(|t| t.encoding.relation == Symbol::intern("Orders"))?
        .rows
        .iter()
        .find(|r| r[0] == Value::Int(oid))
        .cloned()
}

fn order_count(m: &Marketplace) -> usize {
    table_len(m, "Orders")
}

fn user_count(m: &Marketplace) -> usize {
    table_len(m, "Users")
}

fn product_count(m: &Marketplace) -> usize {
    table_len(m, "Products")
}

fn table_len(m: &Marketplace, table: &str) -> usize {
    let DatasetContent::Relational(tables) = &m.sales.content else {
        return 0;
    };
    tables
        .iter()
        .find(|t| t.encoding.relation == Symbol::intern(table))
        .map(|t| t.rows.len())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marketplace::{generate, MarketplaceConfig};
    use crate::scenarios::{deploy_baseline, deploy_kv_migrated};
    use estocada::Latencies;

    fn small() -> Marketplace {
        generate(MarketplaceConfig {
            users: 40,
            products: 20,
            orders: 120,
            log_entries: 200,
            skew: 0.8,
            seed: 11,
        })
    }

    #[test]
    fn mixed_schedule_stays_fresh_and_deterministic() {
        let m = small();
        let ops = rw_workload(&m, RwConfig::default());
        assert_eq!(ops, rw_workload(&m, RwConfig::default()));
        let mut est = deploy_kv_migrated(&m, Latencies::zero());
        let s = run_rw_workload(&mut est, &ops).unwrap();
        assert!(s.writes > 0 && s.reads > 0);
        assert_eq!(s.final_data_epoch, s.writes as u64);
        assert!(stale_fragments(&est).is_empty());
    }

    #[test]
    fn reads_see_writes_immediately() {
        let m = small();
        let mut est = deploy_kv_migrated(&m, Latencies::zero());
        let before = run_w1_query(&est, &W1Query::UserOrders(1)).unwrap();
        est.insert_rows(
            "sales",
            "Orders",
            vec![vec![
                Value::Int(900_000),
                Value::Int(1),
                Value::Int(0),
                Value::str("laptop"),
                Value::Double(9.99),
            ]],
        )
        .unwrap();
        let after = run_w1_query(&est, &W1Query::UserOrders(1)).unwrap();
        assert_eq!(after.rows.len(), before.rows.len() + 1);
        assert!(after
            .rows
            .iter()
            .any(|r| r.first() == Some(&Value::Int(900_000))));
        assert_clean_read(&after.report);
        // Prefs upserts land in both the native table and the KV fragment.
        est.upsert_rows(
            "sales",
            "Prefs",
            vec![vec![
                Value::Int(1),
                Value::str("dark"),
                Value::str("fr"),
                Value::Bool(true),
            ]],
        )
        .unwrap();
        let prefs = run_w1_query(&est, &W1Query::PrefLookup(1)).unwrap();
        assert_eq!(prefs.rows, vec![vec![Value::str("dark"), Value::str("fr")]]);
        assert!(stale_fragments(&est).is_empty());
    }

    #[test]
    fn baseline_and_kv_agree_after_the_same_schedule() {
        let m = small();
        let ops = rw_workload(
            &m,
            RwConfig {
                ops: 60,
                write_ratio: 0.5,
                seed: 3,
            },
        );
        let mut a = deploy_baseline(&m, Latencies::zero());
        let mut b = deploy_kv_migrated(&m, Latencies::zero());
        run_rw_workload(&mut a, &ops).unwrap();
        run_rw_workload(&mut b, &ops).unwrap();
        for uid in [0, 1, 5, 9] {
            for q in [W1Query::PrefLookup(uid), W1Query::UserOrders(uid)] {
                let mut x = run_w1_query(&a, &q).unwrap().rows;
                let mut y = run_w1_query(&b, &q).unwrap().rows;
                x.sort();
                y.sort();
                assert_eq!(x, y, "{q:?} diverged after the mixed schedule");
            }
        }
    }
}
