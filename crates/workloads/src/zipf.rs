//! Zipf-distributed sampling for skewed access patterns (hot users, hot
//! products — the "predominant queries" of the motivating scenario).

use rand::Rng;

/// A Zipf(θ) sampler over `0..n` using inverse-CDF lookup.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` items with skew `theta` (0 = uniform,
    /// ~1 = classic Zipf).
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Zipf { cdf: weights }
    }

    /// Sample one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skewed_sampling_prefers_low_indices() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 5);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!(c > 700 && c < 1300, "count {c} too far from uniform");
        }
    }
}
