//! Document (JSON) data model encoded into the pivot model.
//!
//! Following the paper, a document collection `C` is described by the virtual
//! relations
//!
//! - `C_Doc(docID, name)` — documents of the collection,
//! - `C_Root(docID, nodeID)` — the root node of a document,
//! - `C_Node(nodeID, tag)` — every node with its tag (object field name,
//!   `"$root"` for roots, `"$item"` for array elements),
//! - `C_Child(parentID, childID)` — parent/child edges,
//! - `C_Desc(ancestorID, descID)` — the descendant (transitive, reflexive on
//!   nothing) relation, and
//! - `C_Val(nodeID, value)` — scalar leaf values,
//!
//! together with the constraints that every child is a descendant,
//! descendants compose, and that parent, tag, value and root are functional
//! ("every node has just one parent and one tag").

use crate::atom::Atom;
use crate::constraint::{Constraint, Egd, Tgd};
use crate::fact::{Fact, IdGen};
use crate::schema::{RelationDecl, Schema};
use crate::symbol::Symbol;
use crate::term::Term;
use crate::value::Value;

/// Tag assigned to document root nodes.
pub const ROOT_TAG: &str = "$root";
/// Tag assigned to array element nodes.
pub const ITEM_TAG: &str = "$item";

/// Names of the virtual relations that encode one document collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocRelations {
    /// `C_Doc(docID, name)`.
    pub doc: Symbol,
    /// `C_Root(docID, nodeID)`.
    pub root: Symbol,
    /// `C_Node(nodeID, tag)`.
    pub node: Symbol,
    /// `C_Child(parentID, childID)`.
    pub child: Symbol,
    /// `C_Desc(ancestorID, descID)`.
    pub desc: Symbol,
    /// `C_Val(nodeID, value)`.
    pub val: Symbol,
}

impl DocRelations {
    /// Relation names for the collection called `prefix`.
    pub fn for_collection(prefix: &str) -> DocRelations {
        DocRelations {
            doc: Symbol::intern(&format!("{prefix}_Doc")),
            root: Symbol::intern(&format!("{prefix}_Root")),
            node: Symbol::intern(&format!("{prefix}_Node")),
            child: Symbol::intern(&format!("{prefix}_Child")),
            desc: Symbol::intern(&format!("{prefix}_Desc")),
            val: Symbol::intern(&format!("{prefix}_Val")),
        }
    }

    /// Declare the six virtual relations into `schema` and register the
    /// document-model constraints.
    pub fn declare(&self, schema: &mut Schema) {
        schema.add_relation(RelationDecl::new(self.doc, &["docID", "name"]));
        schema.add_relation(RelationDecl::new(self.root, &["docID", "nodeID"]));
        schema.add_relation(RelationDecl::new(self.node, &["nodeID", "tag"]));
        schema.add_relation(RelationDecl::new(self.child, &["parentID", "childID"]));
        schema.add_relation(RelationDecl::new(self.desc, &["ancID", "descID"]));
        schema.add_relation(RelationDecl::new(self.val, &["nodeID", "value"]));
        for c in self.constraints() {
            schema.add_constraint(c);
        }
    }

    /// The document-model constraint set for this collection.
    pub fn constraints(&self) -> Vec<Constraint> {
        let v = |i: u32| Term::var(i);
        let name = |s: &str| format!("{}_{s}", self.child);
        vec![
            // Child(p, c) → Desc(p, c)
            Constraint::Tgd(Tgd::new(
                name("child_is_desc").as_str(),
                vec![Atom::new(self.child, vec![v(0), v(1)])],
                vec![Atom::new(self.desc, vec![v(0), v(1)])],
            )),
            // Child(a, b) ∧ Desc(b, c) → Desc(a, c)
            Constraint::Tgd(Tgd::new(
                name("desc_trans").as_str(),
                vec![
                    Atom::new(self.child, vec![v(0), v(1)]),
                    Atom::new(self.desc, vec![v(1), v(2)]),
                ],
                vec![Atom::new(self.desc, vec![v(0), v(2)])],
            )),
            // Child(p1, c) ∧ Child(p2, c) → p1 = p2  (single parent)
            Constraint::Egd(Egd::new(
                name("single_parent").as_str(),
                vec![
                    Atom::new(self.child, vec![v(0), v(2)]),
                    Atom::new(self.child, vec![v(1), v(2)]),
                ],
                (v(0), v(1)),
            )),
            // Node(n, t1) ∧ Node(n, t2) → t1 = t2  (single tag)
            Constraint::Egd(Egd::new(
                name("single_tag").as_str(),
                vec![
                    Atom::new(self.node, vec![v(0), v(1)]),
                    Atom::new(self.node, vec![v(0), v(2)]),
                ],
                (v(1), v(2)),
            )),
            // Val(n, v1) ∧ Val(n, v2) → v1 = v2  (single value)
            Constraint::Egd(Egd::new(
                name("single_val").as_str(),
                vec![
                    Atom::new(self.val, vec![v(0), v(1)]),
                    Atom::new(self.val, vec![v(0), v(2)]),
                ],
                (v(1), v(2)),
            )),
            // Root(d, r1) ∧ Root(d, r2) → r1 = r2  (single root)
            Constraint::Egd(Egd::new(
                name("single_root").as_str(),
                vec![
                    Atom::new(self.root, vec![v(0), v(1)]),
                    Atom::new(self.root, vec![v(0), v(2)]),
                ],
                (v(1), v(2)),
            )),
        ]
    }

    /// Encode one document into ground facts. Returns the root node id.
    ///
    /// Every object field becomes a child node tagged with the field name;
    /// array elements become children tagged [`ITEM_TAG`]; scalars attach a
    /// `Val` fact to their node. `Desc` facts are **not** emitted — they are
    /// derivable and stores answer descendant queries natively.
    pub fn encode_document(
        &self,
        doc_id: Value,
        doc_name: &str,
        body: &Value,
        ids: &mut IdGen,
        out: &mut Vec<Fact>,
    ) -> Value {
        out.push(Fact::new(
            self.doc,
            vec![doc_id.clone(), Value::str(doc_name)],
        ));
        let root = ids.fresh_id();
        out.push(Fact::new(self.root, vec![doc_id, root.clone()]));
        out.push(Fact::new(
            self.node,
            vec![root.clone(), Value::str(ROOT_TAG)],
        ));
        self.encode_value(&root, body, ids, out);
        root
    }

    fn encode_value(&self, node: &Value, v: &Value, ids: &mut IdGen, out: &mut Vec<Fact>) {
        match v {
            Value::Object(fields) => {
                for (k, fv) in fields.iter() {
                    let child = ids.fresh_id();
                    out.push(Fact::new(self.child, vec![node.clone(), child.clone()]));
                    out.push(Fact::new(
                        self.node,
                        vec![child.clone(), Value::Str(k.clone())],
                    ));
                    self.encode_value(&child, fv, ids, out);
                }
            }
            Value::Array(items) => {
                for item in items.iter() {
                    let child = ids.fresh_id();
                    out.push(Fact::new(self.child, vec![node.clone(), child.clone()]));
                    out.push(Fact::new(
                        self.node,
                        vec![child.clone(), Value::str(ITEM_TAG)],
                    ));
                    self.encode_value(&child, item, ids, out);
                }
            }
            scalar => {
                out.push(Fact::new(self.val, vec![node.clone(), scalar.clone()]));
            }
        }
    }
}

/// A tree-pattern query over one document collection: the native query shape
/// of the document frontend, directly translatable to pivot atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePattern {
    /// Collection prefix (matches [`DocRelations::for_collection`]).
    pub collection: String,
    /// Pattern root steps (children of the document root).
    pub steps: Vec<PatternStep>,
}

/// One node of a tree pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternStep {
    /// Tag to match.
    pub tag: String,
    /// Axis from the parent pattern node.
    pub axis: Axis,
    /// Bind the node's scalar value to this variable name.
    pub bind_value: Option<String>,
    /// Require the node's scalar value to equal this constant.
    pub eq_value: Option<Value>,
    /// Child pattern steps.
    pub children: Vec<PatternStep>,
}

/// Pattern axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Direct child.
    Child,
    /// Any descendant.
    Descendant,
}

impl PatternStep {
    /// A child-axis step matching `tag`.
    pub fn child(tag: &str) -> PatternStep {
        PatternStep {
            tag: tag.to_string(),
            axis: Axis::Child,
            bind_value: None,
            eq_value: None,
            children: Vec::new(),
        }
    }

    /// A descendant-axis step matching `tag`.
    pub fn descendant(tag: &str) -> PatternStep {
        PatternStep {
            tag: tag.to_string(),
            axis: Axis::Descendant,
            ..PatternStep::child(tag)
        }
    }

    /// Bind the node's value to variable `name` (builder style).
    pub fn bind(mut self, name: &str) -> Self {
        self.bind_value = Some(name.to_string());
        self
    }

    /// Require the node's value to equal `v` (builder style).
    pub fn eq(mut self, v: impl Into<Value>) -> Self {
        self.eq_value = Some(v.into());
        self
    }

    /// Add a child step (builder style).
    pub fn with_child(mut self, c: PatternStep) -> Self {
        self.children.push(c);
        self
    }
}

impl TreePattern {
    /// New pattern over `collection`.
    pub fn new(collection: &str) -> TreePattern {
        TreePattern {
            collection: collection.to_string(),
            steps: Vec::new(),
        }
    }

    /// Add a top-level step (builder style).
    pub fn with_step(mut self, s: PatternStep) -> Self {
        self.steps.push(s);
        self
    }

    /// Translate the pattern to pivot atoms.
    ///
    /// `vars` maps binding names to variable terms; fresh node variables are
    /// drawn from `next_var`. Returns the atoms and the `(binding name,
    /// variable)` pairs in pattern order.
    pub fn to_atoms(&self, next_var: &mut u32) -> (Vec<Atom>, Vec<(String, Term)>) {
        let rels = DocRelations::for_collection(&self.collection);
        let mut atoms = Vec::new();
        let mut bindings = Vec::new();
        let doc = fresh(next_var);
        let root = fresh(next_var);
        atoms.push(Atom::new(rels.root, vec![doc, root.clone()]));
        for s in &self.steps {
            encode_step(&rels, &root, s, next_var, &mut atoms, &mut bindings);
        }
        (atoms, bindings)
    }
}

fn fresh(next: &mut u32) -> Term {
    let t = Term::var(*next);
    *next += 1;
    t
}

fn encode_step(
    rels: &DocRelations,
    parent: &Term,
    step: &PatternStep,
    next_var: &mut u32,
    atoms: &mut Vec<Atom>,
    bindings: &mut Vec<(String, Term)>,
) {
    let node = fresh(next_var);
    let edge_rel = match step.axis {
        Axis::Child => rels.child,
        Axis::Descendant => rels.desc,
    };
    atoms.push(Atom::new(edge_rel, vec![parent.clone(), node.clone()]));
    atoms.push(Atom::new(
        rels.node,
        vec![node.clone(), Term::Const(Value::str(&step.tag))],
    ));
    if let Some(c) = &step.eq_value {
        atoms.push(Atom::new(
            rels.val,
            vec![node.clone(), Term::Const(c.clone())],
        ));
    }
    if let Some(b) = &step.bind_value {
        let val_var = fresh(next_var);
        atoms.push(Atom::new(rels.val, vec![node.clone(), val_var.clone()]));
        bindings.push((b.clone(), val_var));
    }
    for c in &step.children {
        encode_step(rels, &node, c, next_var, atoms, bindings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_document_produces_expected_facts() {
        let rels = DocRelations::for_collection("Carts");
        let mut ids = IdGen::new();
        let mut out = Vec::new();
        let doc = Value::object([
            ("user", Value::Int(7)),
            ("items", Value::array([Value::str("a"), Value::str("b")])),
        ]);
        rels.encode_document(Value::Id(100), "cart7", &doc, &mut ids, &mut out);
        let child_count = out.iter().filter(|f| f.pred == rels.child).count();
        // root -> user, root -> items, items -> 2 elements
        assert_eq!(child_count, 4);
        let vals: Vec<_> = out.iter().filter(|f| f.pred == rels.val).collect();
        assert_eq!(vals.len(), 3); // 7, "a", "b"
                                   // single root fact
        assert_eq!(out.iter().filter(|f| f.pred == rels.root).count(), 1);
    }

    #[test]
    fn constraints_include_transitivity_and_fds() {
        let rels = DocRelations::for_collection("C");
        let cs = rels.constraints();
        assert_eq!(cs.len(), 6);
        let tgds = cs
            .iter()
            .filter(|c| matches!(c, Constraint::Tgd(_)))
            .count();
        assert_eq!(tgds, 2);
    }

    #[test]
    fn tree_pattern_translates_to_atoms_with_bindings() {
        let p = TreePattern::new("Carts").with_step(
            PatternStep::child("user")
                .eq(Value::Int(7))
                .with_child(PatternStep::descendant("sku").bind("s")),
        );
        let mut next = 0;
        let (atoms, bindings) = p.to_atoms(&mut next);
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0].0, "s");
        let rels = DocRelations::for_collection("Carts");
        assert!(atoms.iter().any(|a| a.pred == rels.desc));
        assert!(atoms
            .iter()
            .any(|a| a.pred == rels.val && a.args[1] == Term::Const(Value::Int(7))));
    }

    #[test]
    fn declare_registers_relations_and_constraints() {
        let rels = DocRelations::for_collection("P");
        let mut s = Schema::new();
        rels.declare(&mut s);
        assert!(s.relation(rels.desc).is_some());
        assert_eq!(s.constraints.len(), 6);
    }
}
