//! Key-value data model encoded as binding-restricted relations.
//!
//! A key-value namespace `N` storing records `key → (v1, ..., vk)` is the
//! relation `N_KV(key, v1, ..., vk)` with access pattern `i o...o`: the key
//! *must* be supplied to access the values — the paper's "original encoding
//! of access pattern restrictions". Feasible rewritings reach such relations
//! through BindJoin.

use crate::binding::AccessPattern;
use crate::fact::Fact;
use crate::schema::{RelationDecl, Schema};
use crate::symbol::Symbol;
use crate::value::Value;

/// Pivot description of one key-value namespace.
#[derive(Debug, Clone)]
pub struct KvEncoding {
    /// Pivot relation name (`{namespace}_KV`).
    pub relation: Symbol,
    /// Namespace name in the store.
    pub namespace: String,
    /// Names of the value columns (the key column is always first, named
    /// `key`).
    pub value_columns: Vec<String>,
}

impl KvEncoding {
    /// Describe namespace `namespace` with the given value columns.
    pub fn new(namespace: &str, value_columns: &[&str]) -> KvEncoding {
        KvEncoding {
            relation: Symbol::intern(&format!("{namespace}_KV")),
            namespace: namespace.to_string(),
            value_columns: value_columns.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Relation arity (key + values).
    pub fn arity(&self) -> usize {
        1 + self.value_columns.len()
    }

    /// The `i o...o` access pattern.
    pub fn access_pattern(&self) -> AccessPattern {
        let mut s = String::from("i");
        s.extend(std::iter::repeat_n('o', self.value_columns.len()));
        AccessPattern::parse(&s)
    }

    /// Declare the relation (with its key and access pattern) into `schema`.
    pub fn declare(&self, schema: &mut Schema) {
        let mut cols: Vec<&str> = vec!["key"];
        cols.extend(self.value_columns.iter().map(|s| s.as_str()));
        schema.add_relation(
            RelationDecl::new(self.relation, &cols)
                .with_access(self.access_pattern())
                .with_key(&["key"]),
        );
    }

    /// Encode one record as a fact.
    pub fn encode_record(&self, key: Value, values: Vec<Value>) -> Fact {
        assert_eq!(
            values.len(),
            self.value_columns.len(),
            "value arity mismatch for namespace {}",
            self.namespace
        );
        let mut args = Vec::with_capacity(self.arity());
        args.push(key);
        args.extend(values);
        Fact::new(self.relation, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_pattern_requires_key() {
        let e = KvEncoding::new("prefs", &["theme", "lang"]);
        assert_eq!(format!("{}", e.access_pattern()), "ioo");
    }

    #[test]
    fn declare_adds_key_and_pattern() {
        let e = KvEncoding::new("carts", &["payload"]);
        let mut s = Schema::new();
        e.declare(&mut s);
        let d = s.relation(e.relation).unwrap();
        assert_eq!(d.arity(), 2);
        assert_eq!(d.keys.len(), 1);
        assert!(s.access_map().get(e.relation).is_some());
        // key EGDs: one non-key column
        assert_eq!(s.constraints.len(), 1);
    }

    #[test]
    fn encode_record_builds_fact() {
        let e = KvEncoding::new("prefs", &["theme"]);
        let f = e.encode_record(Value::Int(7), vec![Value::str("dark")]);
        assert_eq!(f.args.len(), 2);
        assert_eq!(f.pred, Symbol::intern("prefs_KV"));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn encode_record_checks_arity() {
        let e = KvEncoding::new("prefs", &["theme"]);
        let _ = e.encode_record(Value::Int(7), vec![]);
    }
}
