//! Encodings of application/storage data models into the pivot model.
//!
//! "To correctly account for the characteristics of each application data
//! model and storage data model, we describe their specific features in the
//! same pivot model, by means of powerful constraints." Each submodule
//! covers one data model:
//!
//! - [`relational`] — identity encoding, keys as EGDs;
//! - [`document`] — JSON trees as `Node`/`Child`/`Desc`/`Val` relations with
//!   functional-dependency and transitivity constraints;
//! - [`keyvalue`] — namespaces as relations with `i o…o` binding patterns;
//! - [`nested`] — nested relations as a keyed top relation plus flattened
//!   element relations;
//! - [`text`] — full-text indexes as term→document relations with `io`
//!   binding patterns.

pub mod document;
pub mod keyvalue;
pub mod nested;
pub mod relational;
pub mod text;
