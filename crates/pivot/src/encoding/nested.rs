//! Nested relations (the model of Pig/HBase/Spark datasets) encoded into the
//! pivot model.
//!
//! A nested relation `N` with scalar columns `c1..cn` and nested collection
//! columns `g1..gm` (each a bag of tuples) becomes:
//!
//! - a top relation `N(rowID, c1, ..., cn)` keyed by `rowID`, and
//! - per nested column `gj`, a relation `N_gj(rowID, e1, ..., ek)` holding
//!   the flattened elements, connected to the parent through `rowID`.
//!
//! The encoding mirrors the document encoding but keeps the first-normal-form
//! structure the paper notes is "very similar" for nested relations.

use crate::fact::{Fact, IdGen};
use crate::schema::{RelationDecl, Schema};
use crate::symbol::Symbol;
use crate::value::Value;

/// Description of one nested collection column.
#[derive(Debug, Clone)]
pub struct NestedColumn {
    /// Column name in the nested relation.
    pub name: String,
    /// Field names of the element tuples.
    pub element_columns: Vec<String>,
}

/// Pivot description of a nested relation.
#[derive(Debug, Clone)]
pub struct NestedEncoding {
    /// Top relation name.
    pub relation: Symbol,
    /// Scalar column names.
    pub scalar_columns: Vec<String>,
    /// Nested collection columns.
    pub nested_columns: Vec<NestedColumn>,
}

impl NestedEncoding {
    /// Describe nested relation `name`.
    pub fn new(name: &str, scalar_columns: &[&str], nested: &[(&str, &[&str])]) -> NestedEncoding {
        NestedEncoding {
            relation: Symbol::intern(name),
            scalar_columns: scalar_columns.iter().map(|s| s.to_string()).collect(),
            nested_columns: nested
                .iter()
                .map(|(n, cols)| NestedColumn {
                    name: n.to_string(),
                    element_columns: cols.iter().map(|s| s.to_string()).collect(),
                })
                .collect(),
        }
    }

    /// Pivot relation name of nested column `col`.
    pub fn nested_relation(&self, col: &str) -> Symbol {
        Symbol::intern(&format!("{}_{}", self.relation, col))
    }

    /// Declare top and nested relations (top keyed by `rowID`).
    pub fn declare(&self, schema: &mut Schema) {
        let mut cols: Vec<&str> = vec!["rowID"];
        cols.extend(self.scalar_columns.iter().map(|s| s.as_str()));
        schema.add_relation(RelationDecl::new(self.relation, &cols).with_key(&["rowID"]));
        for nc in &self.nested_columns {
            let mut ncols: Vec<&str> = vec!["rowID"];
            ncols.extend(nc.element_columns.iter().map(|s| s.as_str()));
            schema.add_relation(RelationDecl::new(self.nested_relation(&nc.name), &ncols));
        }
    }

    /// Encode one nested row: scalar values plus, per nested column, the
    /// list of element tuples. Returns the allocated `rowID`.
    pub fn encode_row(
        &self,
        scalars: Vec<Value>,
        nested: Vec<Vec<Vec<Value>>>,
        ids: &mut IdGen,
        out: &mut Vec<Fact>,
    ) -> Value {
        assert_eq!(scalars.len(), self.scalar_columns.len(), "scalar arity");
        assert_eq!(nested.len(), self.nested_columns.len(), "nested arity");
        let row_id = ids.fresh_id();
        let mut args = Vec::with_capacity(1 + scalars.len());
        args.push(row_id.clone());
        args.extend(scalars);
        out.push(Fact::new(self.relation, args));
        for (nc, elements) in self.nested_columns.iter().zip(nested) {
            let rel = self.nested_relation(&nc.name);
            for e in elements {
                assert_eq!(e.len(), nc.element_columns.len(), "element arity");
                let mut eargs = Vec::with_capacity(1 + e.len());
                eargs.push(row_id.clone());
                eargs.extend(e);
                out.push(Fact::new(rel, eargs));
            }
        }
        row_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc() -> NestedEncoding {
        NestedEncoding::new(
            "UserHistory",
            &["uid", "category"],
            &[("purchases", &["sku", "price"])],
        )
    }

    #[test]
    fn declare_creates_top_and_nested_relations() {
        let e = enc();
        let mut s = Schema::new();
        e.declare(&mut s);
        assert!(s.relation(e.relation).is_some());
        assert!(s.relation(e.nested_relation("purchases")).is_some());
        // rowID key over 2 scalar columns → 2 EGDs
        assert_eq!(s.constraints.len(), 2);
    }

    #[test]
    fn encode_row_links_elements_by_row_id() {
        let e = enc();
        let mut ids = IdGen::new();
        let mut out = Vec::new();
        let rid = e.encode_row(
            vec![Value::Int(7), Value::str("books")],
            vec![vec![
                vec![Value::str("sku1"), Value::Double(9.99)],
                vec![Value::str("sku2"), Value::Double(19.99)],
            ]],
            &mut ids,
            &mut out,
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|f| f.args[0] == rid));
    }

    #[test]
    #[should_panic(expected = "element arity")]
    fn element_arity_checked() {
        let e = enc();
        let mut ids = IdGen::new();
        let mut out = Vec::new();
        e.encode_row(
            vec![Value::Int(7), Value::str("books")],
            vec![vec![vec![Value::str("sku1")]]],
            &mut ids,
            &mut out,
        );
    }
}
