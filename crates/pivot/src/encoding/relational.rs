//! Relational data model: the identity encoding.
//!
//! Relational tables map one-to-one onto pivot relations; declared keys
//! become EGDs. This module only adds the row→fact plumbing.

use crate::fact::Fact;
use crate::schema::{RelationDecl, Schema};
use crate::symbol::Symbol;
use crate::value::Value;

/// Pivot description of one relational table.
#[derive(Debug, Clone)]
pub struct TableEncoding {
    /// Pivot relation (same name as the table).
    pub relation: Symbol,
    /// Column names.
    pub columns: Vec<String>,
    /// Key columns (first candidate key), if any.
    pub key: Option<Vec<String>>,
}

impl TableEncoding {
    /// Describe table `name` with columns and an optional primary key.
    pub fn new(name: &str, columns: &[&str], key: Option<&[&str]>) -> TableEncoding {
        TableEncoding {
            relation: Symbol::intern(name),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            key: key.map(|k| k.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// Declare the relation into `schema`.
    pub fn declare(&self, schema: &mut Schema) {
        let cols: Vec<&str> = self.columns.iter().map(|s| s.as_str()).collect();
        let mut d = RelationDecl::new(self.relation, &cols);
        if let Some(k) = &self.key {
            let kc: Vec<&str> = k.iter().map(|s| s.as_str()).collect();
            d = d.with_key(&kc);
        }
        schema.add_relation(d);
    }

    /// Encode a row (in column order) as a fact.
    pub fn encode_row(&self, row: Vec<Value>) -> Fact {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity mismatch for table {}",
            self.relation
        );
        Fact::new(self.relation, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_with_key_produces_egds() {
        let t = TableEncoding::new("Users", &["uid", "name"], Some(&["uid"]));
        let mut s = Schema::new();
        t.declare(&mut s);
        assert_eq!(s.constraints.len(), 1);
        assert_eq!(s.relation(t.relation).unwrap().arity(), 2);
    }

    #[test]
    fn encode_row_round_trips() {
        let t = TableEncoding::new("Users", &["uid", "name"], None);
        let f = t.encode_row(vec![Value::Int(1), Value::str("ann")]);
        assert_eq!(f.pred, Symbol::intern("Users"));
        assert_eq!(f.args[1], Value::str("ann"));
    }
}
