//! Full-text indexes encoded as binding-restricted relations.
//!
//! A text index `T` over documents keyed by `docKey` is the relation
//! `T_Text(term, docKey)` with access pattern `io`: the search term must be
//! supplied (full-text engines answer term → postings, not arbitrary scans
//! of the token space).

use crate::binding::AccessPattern;
use crate::fact::Fact;
use crate::schema::{RelationDecl, Schema};
use crate::symbol::Symbol;
use crate::value::Value;

/// Pivot description of one full-text index.
#[derive(Debug, Clone)]
pub struct TextEncoding {
    /// Pivot relation name (`{index}_Text`).
    pub relation: Symbol,
    /// Index name in the text store.
    pub index: String,
}

impl TextEncoding {
    /// Describe text index `index`.
    pub fn new(index: &str) -> TextEncoding {
        TextEncoding {
            relation: Symbol::intern(&format!("{index}_Text")),
            index: index.to_string(),
        }
    }

    /// Declare the relation into `schema` with its `io` pattern.
    pub fn declare(&self, schema: &mut Schema) {
        schema.add_relation(
            RelationDecl::new(self.relation, &["term", "docKey"])
                .with_access(AccessPattern::parse("io")),
        );
    }

    /// Encode "document `doc_key` contains `term`" as a fact.
    pub fn encode_posting(&self, term: &str, doc_key: Value) -> Fact {
        Fact::new(self.relation, vec![Value::str(term), doc_key])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_relation_requires_term() {
        let t = TextEncoding::new("catalog");
        let mut s = Schema::new();
        t.declare(&mut s);
        let p = s.access_map();
        assert_eq!(format!("{}", p.get(t.relation).unwrap()), "io");
    }

    #[test]
    fn posting_encodes_term_first() {
        let t = TextEncoding::new("catalog");
        let f = t.encode_posting("laptop", Value::Id(3));
        assert_eq!(f.args[0], Value::str("laptop"));
        assert_eq!(f.args[1], Value::Id(3));
    }
}
