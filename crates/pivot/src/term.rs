//! Terms: the arguments of atoms — variables or constants.

use crate::value::Value;
use std::fmt;

/// A query variable, identified by a small integer within the owning
/// query/constraint's namespace. Human-readable names live in the owning
/// [`crate::cq::Cq`]'s name table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Index into per-query variable tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// Either a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// Query variable.
    Var(Var),
    /// Constant value.
    Const(Value),
}

impl Term {
    /// Variable constructor.
    pub fn var(id: u32) -> Term {
        Term::Var(Var(id))
    }

    /// Constant constructor.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(v) => Some(v),
        }
    }

    /// `true` if the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let t = Term::var(3);
        assert_eq!(t.as_var(), Some(Var(3)));
        assert!(t.as_const().is_none());
        let c = Term::constant(42i64);
        assert_eq!(c.as_const(), Some(&Value::Int(42)));
        assert!(!c.is_var());
    }
}
