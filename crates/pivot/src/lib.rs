//! # estocada-pivot
//!
//! The internal **pivot model** of the ESTOCADA hybrid-store mediator:
//! relational conjunctive queries endowed with integrity constraints (TGDs
//! and EGDs), in which every application/storage data model — relational,
//! document, key-value, nested, full-text — is faithfully encoded.
//!
//! This crate is purely logical: it defines values, terms, atoms,
//! conjunctive queries, constraints, view definitions, access patterns and
//! the per-data-model encodings. The chase-based reasoning over these
//! objects lives in `estocada-chase`; the stores and the mediator live
//! further up the stack.

#![warn(missing_docs)]

pub mod atom;
pub mod binding;
pub mod constraint;
pub mod cq;
pub mod encoding;
pub mod fact;
pub mod intern;
pub mod schema;
pub mod symbol;
pub mod term;
pub mod value;

pub use atom::Atom;
pub use binding::{AccessMap, AccessPattern, Adornment};
pub use constraint::{Constraint, Egd, Tgd, ViewDef};
pub use cq::{Cq, CqBuilder};
pub use fact::{Fact, IdGen};
pub use intern::{ConstId, ConstReader};
pub use schema::{RelationDecl, Schema};
pub use symbol::Symbol;
pub use term::{Term, Var};
pub use value::Value;
