//! Process-wide interning of ground constant [`Value`]s.
//!
//! The chase engine stores constants in bindings, posting-map keys and
//! dedup keys, and compares them constantly during homomorphism search.
//! Structural [`Value`]s make every such key a clone and every comparison a
//! tree walk; interning them to a `u32`-sized [`ConstId`] (the same pattern
//! as [`crate::Symbol`] for names) turns all of that into `Copy` moves and
//! O(1) integer equality. The table is global and append-only: ground
//! constants live for the process lifetime, which matches how a mediator
//! uses them (schema constants, query constants, and the finite active
//! domain of the instances being chased).
//!
//! Equality and hashing of `ConstId` agree with `Value` equality by
//! construction (interning is injective on `Value` equivalence classes:
//! `Value`'s own `Eq`/`Hash` drive the lookup table). `ConstId`'s `Ord` is
//! the *allocation order*, not the `Value` order — stable within a process,
//! suitable for dense keys, but not for semantically ordering constants
//! (resolve the [`ConstId::value`] for that).
//!
//! Small integers (`Value::Int` in ±32 K) bypass the table's lock and hash
//! entirely: their ids are computed arithmetically from a pre-seeded dense
//! range, which makes the columnar executor's hottest path — interning
//! scan and arithmetic-result columns — lock-free.

use crate::value::Value;
use parking_lot::{RwLock, RwLockReadGuard};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An interned ground constant. Copyable, `O(1)` equality and hashing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(u32);

struct ConstTable {
    values: Vec<Arc<Value>>,
    lookup: HashMap<Arc<Value>, u32>,
}

/// Small integers get dense, arithmetically computed ids at the front of
/// the table — no lock, no hash. The table pre-seeds their `values` slots
/// at init so id → value resolution stays a plain index; the `lookup` map
/// never contains them (every lookup path checks [`small_id`] first,
/// keeping interning injective).
const SMALL_MIN: i64 = -32_768;
const SMALL_MAX: i64 = 32_767;

fn small_id(value: &Value) -> Option<ConstId> {
    match value {
        Value::Int(i) if (SMALL_MIN..=SMALL_MAX).contains(i) => {
            Some(ConstId((i - SMALL_MIN) as u32))
        }
        _ => None,
    }
}

fn table() -> &'static RwLock<ConstTable> {
    static TABLE: OnceLock<RwLock<ConstTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let values = (SMALL_MIN..=SMALL_MAX)
            .map(|i| Arc::new(Value::Int(i)))
            .collect();
        RwLock::new(ConstTable {
            values,
            lookup: HashMap::new(),
        })
    })
}

impl ConstId {
    /// Intern `value`, returning its unique id. The value is cloned only
    /// the first time it is seen.
    pub fn intern(value: &Value) -> ConstId {
        if let Some(id) = small_id(value) {
            return id;
        }
        {
            let guard = table().read();
            if let Some(&id) = guard.lookup.get(value) {
                return ConstId(id);
            }
        }
        let mut guard = table().write();
        if let Some(&id) = guard.lookup.get(value) {
            return ConstId(id);
        }
        let id = guard.values.len() as u32;
        let arc = Arc::new(value.clone());
        guard.values.push(arc.clone());
        guard.lookup.insert(arc, id);
        ConstId(id)
    }

    /// Intern an owned (or convertible) value.
    pub fn of(value: impl Into<Value>) -> ConstId {
        ConstId::intern(&value.into())
    }

    /// The interned value (cheap: an `Arc` clone).
    pub fn value(&self) -> Arc<Value> {
        table().read().values[self.0 as usize].clone()
    }

    /// Raw id; stable for the process lifetime.
    pub fn id(&self) -> u32 {
        self.0
    }

    /// Intern a batch of values with one shared read pass.
    ///
    /// The common case in a columnar scan is that every value is already in
    /// the table; this resolves the whole slice under a single read guard
    /// and only takes the write lock for values never seen before (after
    /// the read guard is dropped, so it cannot deadlock).
    pub fn intern_all<'a, I>(values: I) -> Vec<ConstId>
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let mut out = Vec::new();
        let mut misses: Vec<(usize, &Value)> = Vec::new();
        {
            let guard = table().read();
            for (i, v) in values.into_iter().enumerate() {
                if let Some(id) = small_id(v) {
                    out.push(id);
                } else {
                    match guard.lookup.get(v) {
                        Some(&id) => out.push(ConstId(id)),
                        None => {
                            out.push(ConstId(0));
                            misses.push((i, v));
                        }
                    }
                }
            }
        }
        for (i, v) in misses {
            out[i] = ConstId::intern(v);
        }
        out
    }
}

/// A held read guard over the intern table for amortized id → value
/// resolution.
///
/// [`ConstId::value`] takes the table's read lock and clones an `Arc` on
/// every call — fine for one-off lookups, wasteful inside a columnar
/// operator that resolves thousands of ids per batch. A `ConstReader`
/// acquires the read lock once and hands out `&Value` borrows for the
/// lifetime of the guard.
///
/// **Never intern while holding a `ConstReader`**: interning a new value
/// takes the table's write lock, and `std`-backed read guards are not
/// reentrant — the write would deadlock against the held read guard.
/// Intern first (e.g. via [`ConstId::intern_all`]), then open the reader.
pub struct ConstReader {
    guard: RwLockReadGuard<'static, ConstTable>,
}

impl ConstReader {
    /// Open a reader (acquires the table's read lock until dropped).
    pub fn new() -> ConstReader {
        ConstReader {
            guard: table().read(),
        }
    }

    /// Resolve an id without cloning.
    pub fn get(&self, id: ConstId) -> &Value {
        &self.guard.values[id.0 as usize]
    }

    /// Look up the id of an already-interned value, if any.
    pub fn lookup(&self, value: &Value) -> Option<ConstId> {
        small_id(value).or_else(|| self.guard.lookup.get(value).map(|&id| ConstId(id)))
    }
}

impl Default for ConstReader {
    fn default() -> Self {
        ConstReader::new()
    }
}

impl fmt::Display for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

impl fmt::Debug for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.value())
    }
}

impl From<&Value> for ConstId {
    fn from(v: &Value) -> Self {
        ConstId::intern(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = ConstId::intern(&Value::Int(42));
        let b = ConstId::of(42i64);
        assert_eq!(a, b);
        assert_eq!(*a.value(), Value::Int(42));
    }

    #[test]
    fn distinct_values_get_distinct_ids() {
        assert_ne!(ConstId::of(1i64), ConstId::of(2i64));
        // Value's Eq keeps Int(1) and Double(1.0) apart; so must the table.
        assert_ne!(ConstId::of(1i64), ConstId::of(1.0f64));
    }

    #[test]
    fn composite_values_intern_structurally() {
        let a = ConstId::intern(&Value::array([Value::Int(1), Value::str("x")]));
        let b = ConstId::intern(&Value::array([Value::Int(1), Value::str("x")]));
        let c = ConstId::intern(&Value::array([Value::Int(2)]));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn const_id_is_copy_and_4_bytes() {
        fn assert_copy<T: Copy + Eq + Ord + std::hash::Hash>() {}
        assert_copy::<ConstId>();
        assert_eq!(std::mem::size_of::<ConstId>(), 4);
    }

    #[test]
    fn bulk_intern_matches_one_by_one() {
        let vals: Vec<Value> = (0..64)
            .map(|i| {
                if i % 3 == 0 {
                    Value::Int(i)
                } else {
                    Value::str(format!("bulk-{i}"))
                }
            })
            .collect();
        let bulk = ConstId::intern_all(&vals);
        let single: Vec<ConstId> = vals.iter().map(ConstId::intern).collect();
        assert_eq!(bulk, single);
    }

    #[test]
    fn reader_resolves_without_cloning() {
        let id = ConstId::of("reader-test");
        let ids = ConstId::intern_all(&[Value::Int(7), Value::str("reader-test")]);
        let reader = ConstReader::new();
        assert_eq!(reader.get(id), &Value::str("reader-test"));
        assert_eq!(reader.get(ids[0]), &Value::Int(7));
        assert_eq!(reader.lookup(&Value::str("reader-test")), Some(id));
        assert_eq!(reader.lookup(&Value::str("reader-test-missing-xyz")), None);
    }

    #[test]
    fn table_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| std::thread::spawn(move || (i % 3, ConstId::of((i % 3) as i64))))
            .collect();
        for h in handles {
            let (k, id) = h.join().unwrap();
            assert_eq!(id, ConstId::of(k as i64));
        }
    }
}
