//! Process-wide interning of ground constant [`Value`]s.
//!
//! The chase engine stores constants in bindings, posting-map keys and
//! dedup keys, and compares them constantly during homomorphism search.
//! Structural [`Value`]s make every such key a clone and every comparison a
//! tree walk; interning them to a `u32`-sized [`ConstId`] (the same pattern
//! as [`crate::Symbol`] for names) turns all of that into `Copy` moves and
//! O(1) integer equality. The table is global and append-only: ground
//! constants live for the process lifetime, which matches how a mediator
//! uses them (schema constants, query constants, and the finite active
//! domain of the instances being chased).
//!
//! Equality and hashing of `ConstId` agree with `Value` equality by
//! construction (interning is injective on `Value` equivalence classes:
//! `Value`'s own `Eq`/`Hash` drive the lookup table). `ConstId`'s `Ord` is
//! the *allocation order*, not the `Value` order — stable within a process,
//! suitable for dense keys, but not for semantically ordering constants
//! (resolve the [`ConstId::value`] for that).

use crate::value::Value;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An interned ground constant. Copyable, `O(1)` equality and hashing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(u32);

struct ConstTable {
    values: Vec<Arc<Value>>,
    lookup: HashMap<Arc<Value>, u32>,
}

fn table() -> &'static RwLock<ConstTable> {
    static TABLE: OnceLock<RwLock<ConstTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(ConstTable {
            values: Vec::new(),
            lookup: HashMap::new(),
        })
    })
}

impl ConstId {
    /// Intern `value`, returning its unique id. The value is cloned only
    /// the first time it is seen.
    pub fn intern(value: &Value) -> ConstId {
        {
            let guard = table().read();
            if let Some(&id) = guard.lookup.get(value) {
                return ConstId(id);
            }
        }
        let mut guard = table().write();
        if let Some(&id) = guard.lookup.get(value) {
            return ConstId(id);
        }
        let id = guard.values.len() as u32;
        let arc = Arc::new(value.clone());
        guard.values.push(arc.clone());
        guard.lookup.insert(arc, id);
        ConstId(id)
    }

    /// Intern an owned (or convertible) value.
    pub fn of(value: impl Into<Value>) -> ConstId {
        ConstId::intern(&value.into())
    }

    /// The interned value (cheap: an `Arc` clone).
    pub fn value(&self) -> Arc<Value> {
        table().read().values[self.0 as usize].clone()
    }

    /// Raw id; stable for the process lifetime.
    pub fn id(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value())
    }
}

impl fmt::Debug for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.value())
    }
}

impl From<&Value> for ConstId {
    fn from(v: &Value) -> Self {
        ConstId::intern(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = ConstId::intern(&Value::Int(42));
        let b = ConstId::of(42i64);
        assert_eq!(a, b);
        assert_eq!(*a.value(), Value::Int(42));
    }

    #[test]
    fn distinct_values_get_distinct_ids() {
        assert_ne!(ConstId::of(1i64), ConstId::of(2i64));
        // Value's Eq keeps Int(1) and Double(1.0) apart; so must the table.
        assert_ne!(ConstId::of(1i64), ConstId::of(1.0f64));
    }

    #[test]
    fn composite_values_intern_structurally() {
        let a = ConstId::intern(&Value::array([Value::Int(1), Value::str("x")]));
        let b = ConstId::intern(&Value::array([Value::Int(1), Value::str("x")]));
        let c = ConstId::intern(&Value::array([Value::Int(2)]));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn const_id_is_copy_and_4_bytes() {
        fn assert_copy<T: Copy + Eq + Ord + std::hash::Hash>() {}
        assert_copy::<ConstId>();
        assert_eq!(std::mem::size_of::<ConstId>(), 4);
    }

    #[test]
    fn table_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| std::thread::spawn(move || (i % 3, ConstId::of((i % 3) as i64))))
            .collect();
        for h in handles {
            let (k, id) = h.join().unwrap();
            assert_eq!(id, ConstId::of(k as i64));
        }
    }
}
