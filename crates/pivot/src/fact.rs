//! Ground facts: fully constant tuples over pivot relations.
//!
//! Facts are the interchange format between native store contents and the
//! pivot level (encoding documents as `Node`/`Child`/... facts, key-value
//! pairs as binding-restricted relation facts, and so on).

use crate::symbol::Symbol;
use crate::value::Value;
use std::fmt;

/// A ground tuple `P(v1, ..., vn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// Relation name.
    pub pred: Symbol,
    /// Constant arguments.
    pub args: Vec<Value>,
}

impl Fact {
    /// Construct a fact.
    pub fn new(pred: impl Into<Symbol>, args: Vec<Value>) -> Fact {
        Fact {
            pred: pred.into(),
            args,
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, v) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Monotonically increasing id generator for node / tuple identifiers
/// allocated while encoding data into the pivot model.
#[derive(Debug, Default)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Start at zero.
    pub fn new() -> IdGen {
        IdGen::default()
    }

    /// Start at a given offset (to keep id spaces disjoint).
    pub fn starting_at(next: u64) -> IdGen {
        IdGen { next }
    }

    /// Allocate a fresh id.
    pub fn fresh(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Allocate a fresh id wrapped as a `Value`.
    pub fn fresh_id(&mut self) -> Value {
        Value::Id(self.fresh())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_gen_is_monotonic() {
        let mut g = IdGen::new();
        assert_eq!(g.fresh(), 0);
        assert_eq!(g.fresh(), 1);
        let mut g2 = IdGen::starting_at(100);
        assert_eq!(g2.fresh_id(), Value::Id(100));
    }

    #[test]
    fn fact_displays_like_an_atom() {
        let f = Fact::new("Child", vec![Value::Id(1), Value::Id(2)]);
        assert_eq!(format!("{f}"), "Child(#1, #2)");
    }
}
