//! Access patterns (binding patterns) and executability of rewritings.
//!
//! Key-value stores only answer "given the key, return the value" — the
//! paper encodes this as *relations with binding patterns*. A rewriting is
//! **feasible** iff its atoms can be ordered so that every input-adorned
//! position is bound by a query constant or by an earlier atom's output.

use crate::atom::Atom;
use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Adornment of one relation position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Adornment {
    /// The position must be bound before the relation can be accessed
    /// (an input: e.g. the key of a key-value collection).
    Input,
    /// The position is produced by the access.
    Output,
}

/// Per-relation access pattern: one adornment per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPattern {
    /// Adornment per position.
    pub adornments: Vec<Adornment>,
}

impl AccessPattern {
    /// All-output pattern (freely scannable relation) of the given arity.
    pub fn free(arity: usize) -> AccessPattern {
        AccessPattern {
            adornments: vec![Adornment::Output; arity],
        }
    }

    /// Parse a compact adornment string, e.g. `"io"` = first position input,
    /// second output.
    pub fn parse(s: &str) -> AccessPattern {
        AccessPattern {
            adornments: s
                .chars()
                .map(|c| match c {
                    'i' | 'I' => Adornment::Input,
                    'o' | 'O' => Adornment::Output,
                    other => panic!("invalid adornment character {other:?}"),
                })
                .collect(),
        }
    }

    /// Indices of input positions.
    pub fn input_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.adornments
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Adornment::Input)
            .map(|(i, _)| i)
    }

    /// `true` when the relation has no input restriction.
    pub fn is_free(&self) -> bool {
        self.adornments.iter().all(|a| *a == Adornment::Output)
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.adornments {
            write!(
                f,
                "{}",
                match a {
                    Adornment::Input => 'i',
                    Adornment::Output => 'o',
                }
            )?;
        }
        Ok(())
    }
}

/// Registry of access patterns per relation. Relations without an entry are
/// treated as freely accessible.
#[derive(Debug, Clone, Default)]
pub struct AccessMap {
    patterns: HashMap<Symbol, AccessPattern>,
}

impl AccessMap {
    /// Empty map: everything freely accessible.
    pub fn new() -> AccessMap {
        AccessMap::default()
    }

    /// Register the access pattern of `relation`.
    pub fn set(&mut self, relation: impl Into<Symbol>, pattern: AccessPattern) {
        self.patterns.insert(relation.into(), pattern);
    }

    /// Pattern for `relation`, if restricted.
    pub fn get(&self, relation: Symbol) -> Option<&AccessPattern> {
        self.patterns.get(&relation)
    }

    /// Compute an *executable order* of `atoms`: a permutation in which each
    /// atom's input positions only reference constants or variables bound by
    /// earlier atoms (or `pre_bound` variables, e.g. query constants that
    /// arrived as parameters). Returns `None` when the conjunction is
    /// infeasible.
    ///
    /// Greedy selection is complete here: once an atom becomes executable it
    /// stays executable (bound sets only grow), so any feasible conjunction
    /// admits a greedy order.
    pub fn executable_order(
        &self,
        atoms: &[Atom],
        pre_bound: &BTreeSet<Var>,
    ) -> Option<Vec<usize>> {
        let mut bound = pre_bound.clone();
        let mut remaining: Vec<usize> = (0..atoms.len()).collect();
        let mut order = Vec::with_capacity(atoms.len());
        while !remaining.is_empty() {
            let pick = remaining
                .iter()
                .position(|&i| self.atom_executable(&atoms[i], &bound))?;
            let idx = remaining.remove(pick);
            order.push(idx);
            for t in &atoms[idx].args {
                if let Term::Var(v) = t {
                    bound.insert(*v);
                }
            }
        }
        Some(order)
    }

    /// `true` if `atom` can run with the given bound variables.
    pub fn atom_executable(&self, atom: &Atom, bound: &BTreeSet<Var>) -> bool {
        match self.patterns.get(&atom.pred) {
            None => true,
            Some(p) => p.input_positions().all(|i| match atom.args.get(i) {
                Some(Term::Const(_)) => true,
                Some(Term::Var(v)) => bound.contains(v),
                None => false,
            }),
        }
    }

    /// Feasibility of a whole conjunction (no specific order needed).
    pub fn is_feasible(&self, atoms: &[Atom], pre_bound: &BTreeSet<Var>) -> bool {
        self.executable_order(atoms, pre_bound).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(pred: &str, vars: &[u32]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    #[test]
    fn free_atoms_any_order() {
        let m = AccessMap::new();
        let atoms = vec![atom("R", &[0, 1]), atom("S", &[1, 2])];
        assert_eq!(
            m.executable_order(&atoms, &BTreeSet::new()),
            Some(vec![0, 1])
        );
    }

    #[test]
    fn kv_atom_requires_bound_key() {
        let mut m = AccessMap::new();
        m.set("KV", AccessPattern::parse("io"));
        // KV(k, v) alone with free k: infeasible.
        assert!(!m.is_feasible(&[atom("KV", &[0, 1])], &BTreeSet::new()));
        // R(x, k), KV(k, v): feasible — R binds the key first.
        let atoms = vec![atom("KV", &[1, 2]), atom("R", &[0, 1])];
        let order = m.executable_order(&atoms, &BTreeSet::new()).unwrap();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn constant_key_is_always_bound() {
        let mut m = AccessMap::new();
        m.set("KV", AccessPattern::parse("io"));
        let a = Atom::new("KV", vec![Term::constant("user42"), Term::var(0)]);
        assert!(m.is_feasible(&[a], &BTreeSet::new()));
    }

    #[test]
    fn pre_bound_parameters_count() {
        let mut m = AccessMap::new();
        m.set("KV", AccessPattern::parse("io"));
        let mut pre = BTreeSet::new();
        pre.insert(Var(0));
        assert!(m.is_feasible(&[atom("KV", &[0, 1])], &pre));
    }

    #[test]
    fn chained_kv_accesses_resolve() {
        let mut m = AccessMap::new();
        m.set("KV1", AccessPattern::parse("io"));
        m.set("KV2", AccessPattern::parse("io"));
        // KV2 needs KV1's output, KV1 needs a constant: both fine.
        let atoms = vec![
            atom("KV2", &[1, 2]),
            Atom::new("KV1", vec![Term::constant(7i64), Term::var(1)]),
        ];
        assert_eq!(
            m.executable_order(&atoms, &BTreeSet::new()),
            Some(vec![1, 0])
        );
    }

    #[test]
    fn cyclic_inputs_are_infeasible() {
        let mut m = AccessMap::new();
        m.set("A", AccessPattern::parse("io"));
        m.set("B", AccessPattern::parse("io"));
        // A(x, y), B(y, x): each needs the other's output first.
        let atoms = vec![atom("A", &[0, 1]), atom("B", &[1, 0])];
        assert!(!m.is_feasible(&atoms, &BTreeSet::new()));
    }

    #[test]
    fn pattern_parse_and_display_round_trip() {
        let p = AccessPattern::parse("ioo");
        assert_eq!(format!("{p}"), "ioo");
        assert_eq!(p.input_positions().collect::<Vec<_>>(), vec![0]);
        assert!(!p.is_free());
        assert!(AccessPattern::free(3).is_free());
    }
}
