//! Integrity constraints: tuple-generating and equality-generating
//! dependencies, and the compilation of view definitions into constraint
//! pairs — the machinery the paper calls "capturing the various data models
//! and describing the fragments each DMS stores".

use crate::atom::Atom;
use crate::cq::Cq;
use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Tuple-generating dependency
/// `∀x̄ (premise(x̄) → ∃ȳ conclusion(x̄', ȳ))`.
///
/// Variables appearing only in the conclusion are implicitly
/// existentially quantified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    /// Constraint name (for diagnostics / provenance display).
    pub name: Symbol,
    /// Premise (left-hand side) atoms.
    pub premise: Vec<Atom>,
    /// Conclusion (right-hand side) atoms.
    pub conclusion: Vec<Atom>,
}

impl Tgd {
    /// Construct a named TGD.
    pub fn new(name: impl Into<Symbol>, premise: Vec<Atom>, conclusion: Vec<Atom>) -> Tgd {
        Tgd {
            name: name.into(),
            premise,
            conclusion,
        }
    }

    /// Universally quantified variables (those in the premise).
    pub fn frontier(&self) -> BTreeSet<Var> {
        self.premise.iter().flat_map(|a| a.vars()).collect()
    }

    /// Existential variables (conclusion-only).
    pub fn existentials(&self) -> BTreeSet<Var> {
        let frontier = self.frontier();
        self.conclusion
            .iter()
            .flat_map(|a| a.vars())
            .filter(|v| !frontier.contains(v))
            .collect()
    }

    /// `true` when the conclusion has no existential variables (a *full*
    /// TGD; full TGDs never threaten chase termination).
    pub fn is_full(&self) -> bool {
        self.existentials().is_empty()
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.name)?;
        for (i, a) in self.premise.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " → ")?;
        for (i, a) in self.conclusion.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Equality-generating dependency `∀x̄ (premise(x̄) → t1 = t2)`.
///
/// Captures keys and functional dependencies ("every node has just one
/// parent and one tag").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Egd {
    /// Constraint name.
    pub name: Symbol,
    /// Premise atoms.
    pub premise: Vec<Atom>,
    /// The two terms forced equal.
    pub equal: (Term, Term),
}

impl Egd {
    /// Construct a named EGD.
    pub fn new(name: impl Into<Symbol>, premise: Vec<Atom>, equal: (Term, Term)) -> Egd {
        Egd {
            name: name.into(),
            premise,
            equal,
        }
    }
}

impl fmt::Display for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.name)?;
        for (i, a) in self.premise.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " → {} = {}", self.equal.0, self.equal.1)
    }
}

/// A constraint: TGD or EGD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// Tuple-generating dependency.
    Tgd(Tgd),
    /// Equality-generating dependency.
    Egd(Egd),
}

impl Constraint {
    /// The constraint's diagnostic name.
    pub fn name(&self) -> Symbol {
        match self {
            Constraint::Tgd(t) => t.name,
            Constraint::Egd(e) => e.name,
        }
    }

    /// Premise atoms of either kind of constraint.
    pub fn premise(&self) -> &[Atom] {
        match self {
            Constraint::Tgd(t) => &t.premise,
            Constraint::Egd(e) => &e.premise,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Tgd(t) => write!(f, "{t}"),
            Constraint::Egd(e) => write!(f, "{e}"),
        }
    }
}

impl From<Tgd> for Constraint {
    fn from(t: Tgd) -> Self {
        Constraint::Tgd(t)
    }
}

impl From<Egd> for Constraint {
    fn from(e: Egd) -> Self {
        Constraint::Egd(e)
    }
}

/// A materialized-view definition: a named conjunctive query whose result is
/// stored as a fragment. Views are the unit of the local-as-view mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// The view query; `view.name` is the fragment relation name and
    /// `view.head` its columns.
    pub view: Cq,
}

impl ViewDef {
    /// Wrap a query as a view definition. The query must be safe.
    pub fn new(view: Cq) -> ViewDef {
        assert!(view.is_safe(), "view definition must be a safe CQ");
        ViewDef { view }
    }

    /// Fragment relation name.
    pub fn name(&self) -> Symbol {
        self.view.name
    }

    /// The head atom `V(x̄)` of the view over its own variable namespace.
    pub fn head_atom(&self) -> Atom {
        Atom::new(self.view.name, self.view.head.clone())
    }

    /// Forward inclusion `body(V) → V(x̄)`: holding the view's definition,
    /// its extent contains each result tuple. Drives the chase phase that
    /// builds the universal plan.
    pub fn forward_tgd(&self) -> Tgd {
        Tgd::new(
            format!("{}_io", self.view.name).as_str(),
            self.view.body.clone(),
            vec![self.head_atom()],
        )
    }

    /// Backward inclusion `V(x̄) → ∃ȳ body(V)`: every stored view tuple is
    /// witnessed by source data. Drives the backchase.
    pub fn backward_tgd(&self) -> Tgd {
        Tgd::new(
            format!("{}_oi", self.view.name).as_str(),
            vec![self.head_atom()],
            self.view.body.clone(),
        )
    }

    /// Both directions, as generic constraints.
    pub fn constraints(&self) -> [Constraint; 2] {
        [self.forward_tgd().into(), self.backward_tgd().into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;

    fn view() -> ViewDef {
        ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "z"])
                .atom("R", |a| a.v("x").v("y"))
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        )
    }

    #[test]
    fn forward_tgd_is_full() {
        let f = view().forward_tgd();
        assert!(f.is_full());
        assert_eq!(f.conclusion[0].pred, Symbol::intern("V"));
    }

    #[test]
    fn backward_tgd_has_existential_join_var() {
        let b = view().backward_tgd();
        assert_eq!(b.existentials().len(), 1); // `y` is not in the view head
        assert!(!b.is_full());
    }

    #[test]
    #[should_panic(expected = "safe CQ")]
    fn unsafe_view_rejected() {
        ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "w"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
    }

    #[test]
    fn display_formats_implication() {
        let t = view().forward_tgd();
        let s = format!("{t}");
        assert!(s.contains("→"));
        assert!(s.contains("V_io"));
    }
}
