//! Conjunctive queries over the pivot schema.
//!
//! A [`Cq`] is `name(x̄) :- A1, ..., An` — the internal representation every
//! native-language query and every fragment definition is translated into.
//! Head terms may repeat variables and may contain constants.

use crate::atom::Atom;
use crate::symbol::Symbol;
use crate::term::{Term, Var};
use crate::value::Value;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A conjunctive query with a named head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cq {
    /// Name of the query / view (the head predicate).
    pub name: Symbol,
    /// Head (output) terms.
    pub head: Vec<Term>,
    /// Body atoms.
    pub body: Vec<Atom>,
    /// Human-readable variable names, indexed by `Var::index`. May be
    /// shorter than the variable count; missing entries display as `?N`.
    pub var_names: Vec<String>,
}

impl Cq {
    /// Construct a query; prefer [`CqBuilder`] for ergonomic literals.
    pub fn new(name: impl Into<Symbol>, head: Vec<Term>, body: Vec<Atom>) -> Cq {
        Cq {
            name: name.into(),
            head,
            body,
            var_names: Vec::new(),
        }
    }

    /// All variables in head and body, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        let mut visit = |t: &Term| {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        };
        for t in &self.head {
            visit(t);
        }
        for a in &self.body {
            for t in &a.args {
                visit(t);
            }
        }
        out
    }

    /// Distinct head variables.
    pub fn head_vars(&self) -> BTreeSet<Var> {
        self.head.iter().filter_map(Term::as_var).collect()
    }

    /// Distinct body variables.
    pub fn body_vars(&self) -> BTreeSet<Var> {
        self.body.iter().flat_map(|a| a.vars()).collect()
    }

    /// A query is *safe* when every head variable occurs in the body.
    pub fn is_safe(&self) -> bool {
        let bv = self.body_vars();
        self.head_vars().iter().all(|v| bv.contains(v))
    }

    /// The greatest variable id used, plus one (i.e. the size of the
    /// variable namespace).
    pub fn var_space(&self) -> u32 {
        self.vars().iter().map(|v| v.0 + 1).max().unwrap_or(0)
    }

    /// Renames all variables by adding `offset`; used to make two queries'
    /// variable namespaces disjoint.
    pub fn shift_vars(&self, offset: u32) -> Cq {
        let f = |v: Var| Var(v.0 + offset);
        Cq {
            name: self.name,
            head: self
                .head
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(f(*v)),
                    c => c.clone(),
                })
                .collect(),
            body: self.body.iter().map(|a| a.rename(&f)).collect(),
            var_names: self.var_names.clone(),
        }
    }

    /// One canonicalization step: renumber variables `0..n` in
    /// first-occurrence order (head first), then sort and deduplicate the
    /// body. Renaming and sorting interact, so a single step need not be a
    /// fixpoint — see [`Cq::canonicalize`].
    fn canonicalize_step(&self) -> Cq {
        let vars = self.vars();
        let map: HashMap<Var, Var> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, Var(i as u32)))
            .collect();
        let f = |v: Var| map[&v];
        let mut body: Vec<Atom> = self.body.iter().map(|a| a.rename(&f)).collect();
        body.sort();
        body.dedup();
        Cq {
            name: self.name,
            head: self
                .head
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(f(*v)),
                    c => c.clone(),
                })
                .collect(),
            body,
            var_names: Vec::new(),
        }
    }

    /// Canonical form: variables renumbered and body atoms sorted, iterated
    /// until the renumber/sort interplay stabilizes (cycles resolve to the
    /// least member). Idempotent, invariant under variable renaming; used
    /// to deduplicate rewritings, where over-splitting automorphic queries
    /// is harmless.
    pub fn canonicalize(&self) -> Cq {
        let key = |c: &Cq| (c.body.clone(), c.head.clone());
        let mut seen: Vec<Cq> = Vec::new();
        let mut cur = self.canonicalize_step();
        // Each step permutes a finite variable set: a cycle must appear.
        while !seen.iter().any(|s| key(s) == key(&cur)) && seen.len() < 64 {
            seen.push(cur.clone());
            cur = cur.canonicalize_step();
        }
        seen.into_iter().min_by_key(key).expect("at least one step")
    }

    /// Apply a substitution to head and body.
    pub fn substitute(&self, map: &dyn Fn(Var) -> Option<Term>) -> Cq {
        Cq {
            name: self.name,
            head: self
                .head
                .iter()
                .map(|t| match t {
                    Term::Var(v) => map(*v).unwrap_or_else(|| t.clone()),
                    c => c.clone(),
                })
                .collect(),
            body: self.body.iter().map(|a| a.substitute(map)).collect(),
            var_names: Vec::new(),
        }
    }

    /// Display name for a variable (falls back to `?N`).
    pub fn var_name(&self, v: Var) -> String {
        self.var_names
            .get(v.index())
            .cloned()
            .unwrap_or_else(|| format!("?{}", v.0))
    }
}

impl fmt::Display for Cq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let term = |t: &Term| -> String {
            match t {
                Term::Var(v) => self.var_name(*v),
                Term::Const(c) => format!("{c}"),
            }
        };
        write!(f, "{}(", self.name)?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", term(t))?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", a.pred)?;
            for (j, t) in a.args.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", term(t))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Fluent builder for conjunctive queries using string variable names.
///
/// ```
/// use estocada_pivot::cq::CqBuilder;
/// let q = CqBuilder::new("Q")
///     .head_vars(["u", "p"])
///     .atom("Orders", |a| a.v("u").v("p").v("d"))
///     .atom("Users", |a| a.v("u").c("gold"))
///     .build();
/// assert!(q.is_safe());
/// assert_eq!(q.body.len(), 2);
/// ```
pub struct CqBuilder {
    name: Symbol,
    head: Vec<Term>,
    body: Vec<Atom>,
    names: Vec<String>,
    by_name: HashMap<String, Var>,
}

/// Argument-list builder used by [`CqBuilder::atom`].
pub struct ArgsBuilder<'a> {
    owner: &'a mut CqBuilder,
    args: Vec<Term>,
}

impl<'a> ArgsBuilder<'a> {
    /// Append a named variable argument.
    pub fn v(mut self, name: &str) -> Self {
        let var = self.owner.var(name);
        self.args.push(Term::Var(var));
        self
    }

    /// Append a constant argument.
    pub fn c(mut self, value: impl Into<Value>) -> Self {
        self.args.push(Term::Const(value.into()));
        self
    }
}

impl CqBuilder {
    /// Start building a query named `name`.
    pub fn new(name: impl Into<Symbol>) -> CqBuilder {
        CqBuilder {
            name: name.into(),
            head: Vec::new(),
            body: Vec::new(),
            names: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Get-or-create the variable for `name`.
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(v) = self.by_name.get(name) {
            return *v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), v);
        v
    }

    /// Set head to the given named variables.
    pub fn head_vars<const N: usize>(mut self, names: [&str; N]) -> Self {
        self.head = names
            .iter()
            .map(|n| {
                let v = self.var(n);
                Term::Var(v)
            })
            .collect();
        self
    }

    /// Append a constant to the head.
    pub fn head_const(mut self, value: impl Into<Value>) -> Self {
        self.head.push(Term::Const(value.into()));
        self
    }

    /// Append one body atom; arguments are supplied through the closure.
    pub fn atom(
        mut self,
        pred: impl Into<Symbol>,
        f: impl FnOnce(ArgsBuilder<'_>) -> ArgsBuilder<'_>,
    ) -> Self {
        let pred = pred.into();
        let args = f(ArgsBuilder {
            owner: &mut self,
            args: Vec::new(),
        })
        .args;
        self.body.push(Atom::new(pred, args));
        self
    }

    /// Finish, yielding the query.
    pub fn build(self) -> Cq {
        Cq {
            name: self.name,
            head: self.head,
            body: self.body,
            var_names: self.names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cq {
        CqBuilder::new("Q")
            .head_vars(["x", "z"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("S", |a| a.v("y").v("z"))
            .build()
    }

    #[test]
    fn builder_assigns_vars_in_order() {
        let q = sample();
        // head vars are interned first: x=0, z=1; then y=2 from the body.
        assert_eq!(q.head, vec![Term::var(0), Term::var(1)]);
        assert_eq!(q.body[0].args, vec![Term::var(0), Term::var(2)]);
        assert_eq!(q.body[1].args, vec![Term::var(2), Term::var(1)]);
        assert!(q.is_safe());
    }

    #[test]
    fn unsafe_query_detected() {
        let q = CqBuilder::new("Q")
            .head_vars(["x", "w"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        assert!(!q.is_safe());
    }

    #[test]
    fn canonicalize_is_invariant_under_renaming_and_reordering() {
        let q1 = sample();
        let q2 = CqBuilder::new("Q")
            .head_vars(["a", "c"])
            .atom("S", |a| a.v("b").v("c"))
            .atom("R", |a| a.v("a").v("b"))
            .build();
        assert_eq!(q1.canonicalize(), q2.canonicalize());
    }

    #[test]
    fn shift_vars_keeps_structure() {
        let q = sample().shift_vars(10);
        assert_eq!(q.head[0], Term::var(10));
        assert_eq!(q.body[1].args, vec![Term::var(12), Term::var(11)]);
    }

    #[test]
    fn display_uses_variable_names() {
        let q = sample();
        assert_eq!(format!("{q}"), "Q(x, z) :- R(x, y), S(y, z)");
    }

    #[test]
    fn canonicalize_dedups_identical_atoms() {
        let q = CqBuilder::new("Q")
            .head_vars(["x"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("R", |a| a.v("x").v("y"))
            .build();
        assert_eq!(q.canonicalize().body.len(), 1);
    }
}
