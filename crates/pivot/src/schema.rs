//! Relation declarations and schemas for the pivot model.

use crate::atom::Atom;
use crate::binding::{AccessMap, AccessPattern};
use crate::constraint::{Constraint, Egd};
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::HashMap;
use std::fmt;

/// Declaration of one pivot relation: name, column names, optional access
/// pattern and key columns.
#[derive(Debug, Clone)]
pub struct RelationDecl {
    /// Relation name.
    pub name: Symbol,
    /// Column names (length = arity).
    pub columns: Vec<String>,
    /// Access restriction; `None` = freely accessible.
    pub access: Option<AccessPattern>,
    /// Candidate keys, each a set of column indices.
    pub keys: Vec<Vec<usize>>,
}

impl RelationDecl {
    /// Declare a freely accessible relation.
    pub fn new(name: impl Into<Symbol>, columns: &[&str]) -> RelationDecl {
        RelationDecl {
            name: name.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            access: None,
            keys: Vec::new(),
        }
    }

    /// Attach an access pattern (builder style).
    pub fn with_access(mut self, pattern: AccessPattern) -> Self {
        assert_eq!(
            pattern.adornments.len(),
            self.columns.len(),
            "access pattern arity mismatch for {}",
            self.name
        );
        self.access = Some(pattern);
        self
    }

    /// Declare a candidate key over the named columns (builder style).
    pub fn with_key(mut self, key_cols: &[&str]) -> Self {
        let idx: Vec<usize> = key_cols
            .iter()
            .map(|k| {
                self.columns
                    .iter()
                    .position(|c| c == k)
                    .unwrap_or_else(|| panic!("unknown key column {k} on {}", self.name))
            })
            .collect();
        self.keys.push(idx);
        self
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The key EGDs implied by the declared keys: two tuples agreeing on the
    /// key columns agree on every other column.
    pub fn key_egds(&self) -> Vec<Constraint> {
        let mut out = Vec::new();
        for (k, key) in self.keys.iter().enumerate() {
            // Premise: R(x0..xn-1) ∧ R(y0..yn-1) with xi = yi on key columns.
            let n = self.arity();
            let a1 = Atom::new(self.name, (0..n as u32).map(Term::var).collect::<Vec<_>>());
            let a2 = Atom::new(
                self.name,
                (0..n)
                    .map(|i| {
                        if key.contains(&i) {
                            Term::var(i as u32)
                        } else {
                            Term::var((n + i) as u32)
                        }
                    })
                    .collect::<Vec<_>>(),
            );
            for i in 0..n {
                if key.contains(&i) {
                    continue;
                }
                out.push(Constraint::Egd(Egd::new(
                    format!("{}_key{}_col{}", self.name, k, i).as_str(),
                    vec![a1.clone(), a2.clone()],
                    (Term::var(i as u32), Term::var((n + i) as u32)),
                )));
            }
        }
        out
    }
}

impl fmt::Display for RelationDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")?;
        if let Some(a) = &self.access {
            write!(f, " [{a}]")?;
        }
        Ok(())
    }
}

/// A pivot schema: relation declarations plus model constraints.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    relations: HashMap<Symbol, RelationDecl>,
    /// Constraint set of the schema (model axioms + keys).
    pub constraints: Vec<Constraint>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Add a relation declaration; key EGDs are added automatically.
    pub fn add_relation(&mut self, decl: RelationDecl) {
        self.constraints.extend(decl.key_egds());
        self.relations.insert(decl.name, decl);
    }

    /// Add a model constraint.
    pub fn add_constraint(&mut self, c: impl Into<Constraint>) {
        self.constraints.push(c.into());
    }

    /// Look up a relation.
    pub fn relation(&self, name: Symbol) -> Option<&RelationDecl> {
        self.relations.get(&name)
    }

    /// All declared relations.
    pub fn relations(&self) -> impl Iterator<Item = &RelationDecl> {
        self.relations.values()
    }

    /// Merge another schema into this one.
    pub fn merge(&mut self, other: &Schema) {
        for r in other.relations.values() {
            self.relations.insert(r.name, r.clone());
        }
        self.constraints.extend(other.constraints.iter().cloned());
    }

    /// Derive the access map of all restricted relations.
    pub fn access_map(&self) -> AccessMap {
        let mut m = AccessMap::new();
        for r in self.relations.values() {
            if let Some(p) = &r.access {
                m.set(r.name, p.clone());
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_egds_are_generated_per_nonkey_column() {
        let d = RelationDecl::new("Users", &["uid", "name", "email"]).with_key(&["uid"]);
        let egds = d.key_egds();
        assert_eq!(egds.len(), 2); // name, email
        let s = format!("{}", egds[0]);
        assert!(s.contains("Users"));
    }

    #[test]
    fn schema_collects_key_constraints() {
        let mut s = Schema::new();
        s.add_relation(RelationDecl::new("R", &["a", "b"]).with_key(&["a"]));
        assert_eq!(s.constraints.len(), 1);
        assert!(s.relation(Symbol::intern("R")).is_some());
    }

    #[test]
    fn access_map_only_contains_restricted_relations() {
        let mut s = Schema::new();
        s.add_relation(RelationDecl::new("Free", &["a", "b"]));
        s.add_relation(
            RelationDecl::new("Kv", &["k", "v"]).with_access(AccessPattern::parse("io")),
        );
        let m = s.access_map();
        assert!(m.get(Symbol::intern("Free")).is_none());
        assert!(m.get(Symbol::intern("Kv")).is_some());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn access_pattern_arity_checked() {
        let _ = RelationDecl::new("R", &["a", "b"]).with_access(AccessPattern::parse("i"));
    }

    #[test]
    fn column_index_lookup() {
        let d = RelationDecl::new("R", &["a", "b"]);
        assert_eq!(d.column_index("b"), Some(1));
        assert_eq!(d.column_index("z"), None);
    }
}
