//! The dynamic value type shared by every component of the system.
//!
//! ESTOCADA moves data between stores with different data models, so a single
//! value representation must cover relational scalars, key-value payloads and
//! nested documents. [`Value`] is an ordered, hashable tree: scalars plus
//! arrays and string-keyed objects (both behind [`Arc`] so cloning a tuple is
//! cheap).

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed value: the atomic data currency of the whole system.
///
/// `Value` implements total ordering ([`Ord`]) and hashing even for doubles
/// (IEEE-754 total order via bit tricks) so it can be used directly as an
/// index or hash-join key.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent / SQL NULL / JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float, ordered by total order.
    Double(f64),
    /// Interned UTF-8 string.
    Str(Arc<str>),
    /// Opaque identifier (node ids, tuple ids). Kept distinct from `Int` so
    /// document-model node identity never collides with application data.
    Id(u64),
    /// Ordered collection (JSON array / nested relation column).
    Array(Arc<Vec<Value>>),
    /// String-keyed object (JSON object / document).
    Object(Arc<BTreeMap<Arc<str>, Value>>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for arrays.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Array(Arc::new(items.into_iter().collect()))
    }

    /// Convenience constructor for objects from `(key, value)` pairs.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Self {
        Value::Object(Arc::new(
            fields.into_iter().map(|(k, v)| (Arc::from(k), v)).collect(),
        ))
    }

    /// Build an object from owned string keys.
    pub fn object_owned(fields: impl IntoIterator<Item = (String, Value)>) -> Self {
        Value::Object(Arc::new(
            fields
                .into_iter()
                .map(|(k, v)| (Arc::from(k.as_str()), v))
                .collect(),
        ))
    }

    /// Numeric discriminant used for cross-variant ordering.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 3,
            Value::Str(_) => 4,
            Value::Id(_) => 5,
            Value::Array(_) => 6,
            Value::Object(_) => 7,
        }
    }

    /// Returns the value as an integer if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as a float, widening integers.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an identifier if it is one.
    pub fn as_id(&self) -> Option<u64> {
        match self {
            Value::Id(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the object map if the value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<Arc<str>, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the array items if the value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Field lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Follow a dotted path (`"user.address.city"`) through nested objects.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory footprint in bytes; used by the cost model and
    /// the latency simulator to charge per-byte transfer costs.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Double(_) | Value::Id(_) => 8,
            Value::Str(s) => s.len() + 8,
            Value::Array(a) => 8 + a.iter().map(Value::approx_size).sum::<usize>(),
            Value::Object(m) => {
                8 + m
                    .iter()
                    .map(|(k, v)| k.len() + v.approx_size())
                    .sum::<usize>()
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            // Mixed numerics compare by numeric value, falling back to the
            // variant rank when equal so that Int(1) != Double(1.0) as keys.
            (Int(a), Double(b)) => (*a as f64)
                .total_cmp(b)
                .then(self.rank().cmp(&other.rank())),
            (Double(a), Int(b)) => a
                .total_cmp(&(*b as f64))
                .then(self.rank().cmp(&other.rank())),
            (Str(a), Str(b)) => a.cmp(b),
            (Id(a), Id(b)) => a.cmp(b),
            (Array(a), Array(b)) => a.cmp(b),
            (Object(a), Object(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Double(d) => {
                3u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Id(i) => {
                5u8.hash(state);
                i.hash(state);
            }
            Value::Array(a) => {
                6u8.hash(state);
                for v in a.iter() {
                    v.hash(state);
                }
            }
            Value::Object(m) => {
                7u8.hash(state);
                for (k, v) in m.iter() {
                    k.hash(state);
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Id(i) => write!(f, "#{i}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ordering_is_total_across_variants() {
        let vs = vec![
            Value::Null,
            Value::Bool(false),
            Value::Int(3),
            Value::Double(2.5),
            Value::str("a"),
            Value::Id(7),
            Value::array([Value::Int(1)]),
            Value::object([("k", Value::Int(1))]),
        ];
        for a in &vs {
            for b in &vs {
                // antisymmetry sanity
                assert_eq!(a.cmp(b), b.cmp(a).reverse());
            }
        }
    }

    #[test]
    fn mixed_numeric_ordering_is_consistent() {
        assert!(Value::Int(1) < Value::Double(1.5));
        assert!(Value::Double(0.5) < Value::Int(1));
        // Equal numeric value: still a consistent total order, not equality.
        assert_ne!(Value::Int(1), Value::Double(1.0));
        assert_eq!(
            Value::Int(1).cmp(&Value::Double(1.0)),
            Value::Double(1.0).cmp(&Value::Int(1)).reverse()
        );
    }

    #[test]
    fn hash_agrees_with_eq() {
        let mut set = HashSet::new();
        set.insert(Value::str("x"));
        assert!(set.contains(&Value::str("x")));
        set.insert(Value::Double(1.0));
        assert!(set.contains(&Value::Double(1.0)));
        assert!(!set.contains(&Value::Double(-1.0)));
    }

    #[test]
    fn path_lookup_traverses_nested_objects() {
        let v = Value::object([(
            "user",
            Value::object([("address", Value::object([("city", Value::str("Paris"))]))]),
        )]);
        assert_eq!(v.get_path("user.address.city"), Some(&Value::str("Paris")));
        assert_eq!(v.get_path("user.missing"), None);
    }

    #[test]
    fn approx_size_counts_nested_content() {
        let v = Value::object([("a", Value::array([Value::str("xyz"), Value::Int(1)]))]);
        assert!(v.approx_size() > 11);
    }

    #[test]
    fn display_is_json_like() {
        let v = Value::object([("a", Value::array([Value::Int(1), Value::str("s")]))]);
        assert_eq!(format!("{v}"), "{a: [1, \"s\"]}");
    }
}
