//! Relational atoms: a predicate applied to terms.

use crate::symbol::Symbol;
use crate::term::{Term, Var};
use crate::value::Value;
use std::fmt;

/// A relational atom `P(t1, ..., tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Predicate (relation) name.
    pub pred: Symbol,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Construct an atom from a predicate name and terms.
    pub fn new(pred: impl Into<Symbol>, args: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterate over the variables occurring in the atom (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(Term::as_var)
    }

    /// Apply a variable substitution, leaving unmapped variables intact.
    pub fn substitute(&self, map: &dyn Fn(Var) -> Option<Term>) -> Atom {
        Atom {
            pred: self.pred,
            args: self
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => map(*v).unwrap_or_else(|| t.clone()),
                    Term::Const(_) => t.clone(),
                })
                .collect(),
        }
    }

    /// Replace every variable through `f` (total renaming).
    pub fn rename(&self, f: &dyn Fn(Var) -> Var) -> Atom {
        Atom {
            pred: self.pred,
            args: self
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(f(*v)),
                    Term::Const(c) => Term::Const(c.clone()),
                })
                .collect(),
        }
    }

    /// The constants occurring in the atom.
    pub fn constants(&self) -> impl Iterator<Item = &Value> {
        self.args.iter().filter_map(Term::as_const)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_replaces_only_mapped_vars() {
        let a = Atom::new("R", vec![Term::var(0), Term::var(1), Term::constant(5i64)]);
        let s = a.substitute(&|v| {
            if v == Var(0) {
                Some(Term::constant("x"))
            } else {
                None
            }
        });
        assert_eq!(s.args[0], Term::constant("x"));
        assert_eq!(s.args[1], Term::var(1));
        assert_eq!(s.args[2], Term::constant(5i64));
    }

    #[test]
    fn vars_iterates_variables_only() {
        let a = Atom::new("R", vec![Term::var(2), Term::constant(1i64), Term::var(2)]);
        let vs: Vec<_> = a.vars().collect();
        assert_eq!(vs, vec![Var(2), Var(2)]);
    }
}
