//! Process-wide string interning.
//!
//! Predicate names, relation names and variable names are interned to a
//! `u32`-sized [`Symbol`] so that the chase engine compares and hashes them
//! in O(1). The interner is global (names live for the process lifetime,
//! which is fine for a mediator whose schema vocabulary is small).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An interned string. Copyable, `O(1)` equality and hashing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<Arc<str>>,
    lookup: HashMap<Arc<str>, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            lookup: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Intern `name`, returning its unique symbol.
    pub fn intern(name: &str) -> Symbol {
        {
            let guard = interner().read();
            if let Some(&id) = guard.lookup.get(name) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.lookup.get(name) {
            return Symbol(id);
        }
        let id = guard.names.len() as u32;
        let arc: Arc<str> = Arc::from(name);
        guard.names.push(arc.clone());
        guard.lookup.insert(arc, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(&self) -> Arc<str> {
        interner().read().names[self.0 as usize].clone()
    }

    /// Raw id; stable for the process lifetime.
    pub fn id(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("Child");
        let b = Symbol::intern("Child");
        assert_eq!(a, b);
        assert_eq!(&*a.as_str(), "Child");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        assert_ne!(Symbol::intern("Node"), Symbol::intern("Descendant"));
    }

    #[test]
    fn interner_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let s = Symbol::intern(&format!("pred{}", i % 3));
                    (i % 3, s)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, s) in &results {
            assert_eq!(*s, Symbol::intern(&format!("pred{i}")));
        }
    }
}
