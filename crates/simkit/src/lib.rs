//! # estocada-simkit
//!
//! Shared simulation utilities for the DMS stand-ins: a configurable
//! per-operation / per-byte latency model (replacing the network round-trips
//! and protocol overheads of the real external systems the paper deploys)
//! and per-store operation metrics (backing the demo's "performance
//! statistics split across the underlying DMS and ESTOCADA's runtime").
//!
//! Latency is simulated with a monotonic spin-wait so that wall-clock
//! benchmarks reflect it; setting a cost to zero disables it entirely (the
//! default for unit tests). The constants used by the benchmark harness are
//! documented in `EXPERIMENTS.md`.
//!
//! The [`fault`] module adds deterministic fault injection on top: a seeded
//! [`FaultPlan`] scripts per-store/per-operation error schedules and latency
//! spikes, and a per-store [`FaultHook`] is consulted by the stores'
//! fallible entry points before each simulated request.

#![warn(missing_docs)]

pub mod fault;

pub use fault::{
    spin_for, FaultHook, FaultKind, FaultPlan, FaultRule, Injection, StoreError, StoreErrorKind,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A simulation clock: a monotonically increasing [`Duration`] since the
/// clock's origin. The default [`SimClock::wall`] flavor reads the host's
/// monotonic clock; [`SimClock::manual`] starts at zero and only moves
/// when [`SimClock::advance`]d, making time-based behavior (breaker open
/// windows, fault schedules) fully deterministic in tests. Cloning shares
/// the underlying clock.
#[derive(Clone)]
pub struct SimClock(Arc<ClockInner>);

enum ClockInner {
    Wall(Instant),
    Manual(AtomicU64),
}

impl Default for SimClock {
    fn default() -> SimClock {
        SimClock::wall()
    }
}

impl std::fmt::Debug for SimClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &*self.0 {
            ClockInner::Wall(_) => write!(f, "SimClock::wall({:?})", self.now()),
            ClockInner::Manual(_) => write!(f, "SimClock::manual({:?})", self.now()),
        }
    }
}

impl SimClock {
    /// A clock backed by the host's monotonic clock, originated now.
    pub fn wall() -> SimClock {
        SimClock(Arc::new(ClockInner::Wall(Instant::now())))
    }

    /// A manually driven clock starting at zero; time passes only through
    /// [`SimClock::advance`].
    pub fn manual() -> SimClock {
        SimClock(Arc::new(ClockInner::Manual(AtomicU64::new(0))))
    }

    /// Elapsed time since the clock's origin.
    pub fn now(&self) -> Duration {
        match &*self.0 {
            ClockInner::Wall(origin) => origin.elapsed(),
            ClockInner::Manual(nanos) => Duration::from_nanos(nanos.load(Ordering::Relaxed)),
        }
    }

    /// Advance a manual clock by `d`. Panics on a wall clock — advancing
    /// real time is a test-harness bug, not a runtime feature.
    pub fn advance(&self, d: Duration) {
        match &*self.0 {
            ClockInner::Wall(_) => panic!("cannot advance a wall SimClock"),
            ClockInner::Manual(nanos) => {
                nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
            }
        }
    }
}

/// Latency model of one simulated DMS.
///
/// Each store operation is charged a fixed per-request cost (round-trip +
/// parsing), a per-result-tuple cost, and a per-byte transfer cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyModel {
    /// Fixed cost charged once per request, in nanoseconds.
    pub per_request_ns: u64,
    /// Cost per result tuple/document, in nanoseconds.
    pub per_tuple_ns: u64,
    /// Cost per transferred byte, in nanoseconds.
    pub per_byte_ns: u64,
    /// Cost per tuple scanned internally (models the gap between indexed
    /// access and full scans inside the store).
    pub per_scan_ns: u64,
}

impl LatencyModel {
    /// The zero model: no simulated latency (default in unit tests).
    pub const ZERO: LatencyModel = LatencyModel {
        per_request_ns: 0,
        per_tuple_ns: 0,
        per_byte_ns: 0,
        per_scan_ns: 0,
    };

    /// Total simulated cost of a request returning `tuples` tuples and
    /// `bytes` bytes after scanning `scanned` tuples internally.
    pub fn request_cost(&self, tuples: u64, bytes: u64, scanned: u64) -> Duration {
        Duration::from_nanos(
            self.per_request_ns
                + self.per_tuple_ns * tuples
                + self.per_byte_ns * bytes
                + self.per_scan_ns * scanned,
        )
    }

    /// Busy-wait for the simulated cost of a request (no-op for the zero
    /// model). Spinning (rather than sleeping) keeps microsecond-scale
    /// charges accurate under benchmark harnesses.
    pub fn charge(&self, tuples: u64, bytes: u64, scanned: u64) {
        let d = self.request_cost(tuples, bytes, scanned);
        if d.is_zero() {
            return;
        }
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }
}

/// Operation counters of one simulated DMS. All counters are atomic: stores
/// are shared behind `Arc` and the parallel store updates from worker
/// threads.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// Requests served (queries, lookups, searches).
    pub requests: AtomicU64,
    /// Tuples/documents returned.
    pub tuples_out: AtomicU64,
    /// Tuples/documents/rows scanned internally.
    pub tuples_scanned: AtomicU64,
    /// Bytes returned (approximate, see `Value::approx_size`).
    pub bytes_out: AtomicU64,
    /// Total busy time in nanoseconds (incl. simulated latency).
    pub busy_ns: AtomicU64,
}

impl StoreMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> StoreMetrics {
        StoreMetrics::default()
    }

    /// Record one served request.
    pub fn record_request(&self, tuples_out: u64, bytes_out: u64, scanned: u64, busy: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.tuples_out.fetch_add(tuples_out, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        self.tuples_scanned.fetch_add(scanned, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            tuples_out: self.tuples_out.load(Ordering::Relaxed),
            tuples_scanned: self.tuples_scanned.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.tuples_out.store(0, Ordering::Relaxed);
        self.tuples_scanned.store(0, Ordering::Relaxed);
        self.bytes_out.store(0, Ordering::Relaxed);
        self.busy_ns.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`StoreMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Requests served.
    pub requests: u64,
    /// Tuples returned.
    pub tuples_out: u64,
    /// Tuples scanned.
    pub tuples_scanned: u64,
    /// Bytes returned.
    pub bytes_out: u64,
    /// Busy time.
    pub busy: Duration,
}

impl MetricsSnapshot {
    /// Difference since an earlier snapshot (for per-query reporting).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests - earlier.requests,
            tuples_out: self.tuples_out - earlier.tuples_out,
            tuples_scanned: self.tuples_scanned - earlier.tuples_scanned,
            bytes_out: self.bytes_out - earlier.bytes_out,
            busy: self.busy.saturating_sub(earlier.busy),
        }
    }
}

/// A scope timer that records a request into [`StoreMetrics`] on drop,
/// charging the latency model first.
pub struct RequestTimer<'a> {
    metrics: &'a StoreMetrics,
    latency: LatencyModel,
    start: Instant,
    tuples_out: u64,
    bytes_out: u64,
    scanned: u64,
}

impl<'a> RequestTimer<'a> {
    /// Start timing a request.
    pub fn start(metrics: &'a StoreMetrics, latency: LatencyModel) -> RequestTimer<'a> {
        RequestTimer {
            metrics,
            latency,
            start: Instant::now(),
            tuples_out: 0,
            bytes_out: 0,
            scanned: 0,
        }
    }

    /// Set the result sizes before finishing.
    pub fn set_output(&mut self, tuples: u64, bytes: u64) {
        self.tuples_out = tuples;
        self.bytes_out = bytes;
    }

    /// Add to the scanned-tuple counter.
    pub fn add_scanned(&mut self, n: u64) {
        self.scanned += n;
    }
}

impl Drop for RequestTimer<'_> {
    fn drop(&mut self) {
        self.latency
            .charge(self.tuples_out, self.bytes_out, self.scanned);
        self.metrics.record_request(
            self.tuples_out,
            self.bytes_out,
            self.scanned,
            self.start.elapsed(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_only_when_told() {
        let c = SimClock::manual();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(7));
        assert_eq!(c.now(), Duration::from_millis(7));
        let shared = c.clone();
        shared.advance(Duration::from_millis(3));
        // Clones share the underlying clock.
        assert_eq!(c.now(), Duration::from_millis(10));
    }

    #[test]
    fn wall_clock_moves_on_its_own() {
        let c = SimClock::wall();
        let a = c.now();
        spin_for(Duration::from_micros(10));
        assert!(c.now() > a);
    }

    #[test]
    fn zero_model_has_zero_cost() {
        assert_eq!(
            LatencyModel::ZERO.request_cost(1000, 1000, 1000),
            Duration::ZERO
        );
        LatencyModel::ZERO.charge(1000, 1000, 1000); // must not spin
    }

    #[test]
    fn request_cost_is_linear() {
        let m = LatencyModel {
            per_request_ns: 100,
            per_tuple_ns: 10,
            per_byte_ns: 1,
            per_scan_ns: 2,
        };
        assert_eq!(
            m.request_cost(5, 20, 30),
            Duration::from_nanos(100 + 50 + 20 + 60)
        );
    }

    #[test]
    fn charge_spins_for_at_least_the_cost() {
        let m = LatencyModel {
            per_request_ns: 200_000, // 0.2 ms
            per_tuple_ns: 0,
            per_byte_ns: 0,
            per_scan_ns: 0,
        };
        let t = Instant::now();
        m.charge(0, 0, 0);
        assert!(t.elapsed() >= Duration::from_nanos(200_000));
    }

    #[test]
    fn metrics_accumulate_and_snapshot() {
        let m = StoreMetrics::new();
        m.record_request(3, 100, 50, Duration::from_micros(5));
        m.record_request(2, 30, 10, Duration::from_micros(2));
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.tuples_out, 5);
        assert_eq!(s.bytes_out, 130);
        assert_eq!(s.tuples_scanned, 60);
        assert_eq!(s.busy, Duration::from_micros(7));
    }

    #[test]
    fn snapshot_difference() {
        let m = StoreMetrics::new();
        m.record_request(1, 10, 5, Duration::from_micros(1));
        let a = m.snapshot();
        m.record_request(2, 20, 6, Duration::from_micros(2));
        let d = m.snapshot().since(&a);
        assert_eq!(d.requests, 1);
        assert_eq!(d.tuples_out, 2);
    }

    #[test]
    fn timer_records_on_drop() {
        let m = StoreMetrics::new();
        {
            let mut t = RequestTimer::start(&m, LatencyModel::ZERO);
            t.add_scanned(7);
            t.set_output(2, 40);
        }
        let s = m.snapshot();
        assert_eq!(s.requests, 1);
        assert_eq!(s.tuples_out, 2);
        assert_eq!(s.tuples_scanned, 7);
    }

    #[test]
    fn reset_zeroes_counters() {
        let m = StoreMetrics::new();
        m.record_request(1, 1, 1, Duration::from_nanos(1));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }
}
