//! Deterministic fault injection for the simulated DMSs.
//!
//! A [`FaultPlan`] is a seeded, scriptable schedule of injected store
//! failures and latency spikes: each rule names a store (by the mediator's
//! system name — `"relational"`, `"key-value"`, `"document"`, `"text"`,
//! `"parallel"`), optionally one operation kind (`"mget"`, `"query"`, …),
//! an inclusive 1-based window over that counter, a probability, and the
//! injection ([`Injection::Error`] or [`Injection::Latency`]).
//!
//! The plan is **fully reproducible**: probabilistic rules decide by
//! hashing `(seed, rule, store, op, op-index)` — not by a shared RNG
//! stream — so the decision for the *n*-th operation of a store is a pure
//! function of the plan, independent of interleaving with other stores.
//! Scripted windows ("fail the 3rd–5th kv MGETs", "relational down for 10
//! operations, then recovered") use probability 1.0 and are exactly
//! reproducible by construction.
//!
//! Each store holds an optional [`FaultHook`] — a per-store cursor over
//! the shared plan. The hook is consulted **before** the simulated request
//! runs: an injected error aborts the operation without any partial
//! result (a `PartialResponse` fault models a store that *detected* a
//! truncated response and reported it — the caller never sees a silently
//! short row set), and a latency injection spin-waits like the regular
//! [`crate::LatencyModel`] charge. Stores consult the hook only on their
//! **fallible** (`try_*`) query entry points; the infallible legacy
//! methods bypass it, which is what keeps admin/materialization paths and
//! pre-existing tests fault-free by construction.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreErrorKind {
    /// The store (or the network path to it) is down.
    Unavailable,
    /// The operation did not complete within the store's time budget.
    Timeout,
    /// The store detected an incomplete/truncated response and aborted
    /// rather than returning a short result.
    PartialResponse,
    /// The mediator's circuit breaker rejected the call without issuing
    /// it (fail-fast while the backend's circuit is open).
    CircuitOpen,
    /// A native store-side failure (bad query, unknown table, …).
    Internal(String),
}

impl StoreErrorKind {
    /// Short display tag.
    pub fn tag(&self) -> &str {
        match self {
            StoreErrorKind::Unavailable => "unavailable",
            StoreErrorKind::Timeout => "timeout",
            StoreErrorKind::PartialResponse => "partial-response",
            StoreErrorKind::CircuitOpen => "circuit-open",
            StoreErrorKind::Internal(_) => "internal",
        }
    }
}

/// A failed store operation: which store, which operation, the operation's
/// 1-based sequence number on that store, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// Store system name (`"relational"`, `"key-value"`, …).
    pub store: String,
    /// Operation kind (`"query"`, `"get"`, `"mget"`, `"scan"`, …).
    pub op: String,
    /// 1-based index of the operation on this store (0 when synthesized
    /// outside a store, e.g. by the circuit breaker).
    pub op_index: u64,
    /// Failure cause.
    pub kind: StoreErrorKind,
}

impl StoreError {
    /// A native (non-injected) store failure.
    pub fn internal(store: &str, op: &str, message: impl Into<String>) -> StoreError {
        StoreError {
            store: store.to_string(),
            op: op.to_string(),
            op_index: 0,
            kind: StoreErrorKind::Internal(message.into()),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            StoreErrorKind::Internal(m) => {
                write!(f, "{} store {} failed: {m}", self.store, self.op)
            }
            k => write!(
                f,
                "{} store {} #{} failed: {}",
                self.store,
                self.op,
                self.op_index,
                k.tag()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// The kinds of fault a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Store unreachable.
    Unavailable,
    /// Operation times out.
    Timeout,
    /// Truncated response detected by the store.
    PartialResponse,
}

impl FaultKind {
    /// The error kind this fault surfaces as.
    pub fn to_error_kind(self) -> StoreErrorKind {
        match self {
            FaultKind::Unavailable => StoreErrorKind::Unavailable,
            FaultKind::Timeout => StoreErrorKind::Timeout,
            FaultKind::PartialResponse => StoreErrorKind::PartialResponse,
        }
    }
}

/// What a matching rule injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injection {
    /// Fail the operation with the given fault.
    Error(FaultKind),
    /// Let the operation proceed after an extra latency spike.
    Latency(Duration),
}

/// One schedule entry of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Store system name this rule applies to (`None` = every store).
    pub store: Option<String>,
    /// Operation kind this rule applies to (`None` = every operation).
    /// When set, the rule's window counts only operations of this kind.
    pub op: Option<String>,
    /// Inclusive 1-based start of the window over the matching counter.
    pub from: u64,
    /// Inclusive end of the window (`u64::MAX` = forever).
    pub to: u64,
    /// Probability of injecting within the window (1.0 = deterministic).
    pub probability: f64,
    /// What to inject.
    pub inject: Injection,
}

/// A seeded, scriptable, reproducible schedule of store faults.
///
/// Rules are evaluated in insertion order; the first matching
/// [`Injection::Error`] fails the operation, while every matching
/// [`Injection::Latency`] before it is charged.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Hash seed of probabilistic rules.
    pub seed: u64,
    /// The schedule.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Script: fail operations `from..=to` (1-based, counted per `op` kind)
    /// of `store` with `kind` — "fail the 3rd–5th kv MGETs".
    pub fn fail_ops(mut self, store: &str, op: &str, from: u64, to: u64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            store: Some(store.to_string()),
            op: Some(op.to_string()),
            from,
            to,
            probability: 1.0,
            inject: Injection::Error(kind),
        });
        self
    }

    /// Script: `store` is down for `ops` consecutive operations starting at
    /// the `from`-th (any kind), then recovers — "relational down for 10
    /// ops, then recovers".
    pub fn outage(mut self, store: &str, from: u64, ops: u64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            store: Some(store.to_string()),
            op: None,
            from,
            to: from.saturating_add(ops.saturating_sub(1)),
            probability: 1.0,
            inject: Injection::Error(kind),
        });
        self
    }

    /// Script: `store` is down from its `from`-th operation onwards.
    pub fn down_from(mut self, store: &str, from: u64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            store: Some(store.to_string()),
            op: None,
            from,
            to: u64::MAX,
            probability: 1.0,
            inject: Injection::Error(kind),
        });
        self
    }

    /// Script: every operation of `store` fails with `kind`.
    pub fn down(self, store: &str, kind: FaultKind) -> Self {
        self.down_from(store, 1, kind)
    }

    /// Probabilistic: each operation of `store` fails with `probability`
    /// (decided by hashing the seed with the operation index — fully
    /// reproducible, independent of cross-store interleaving).
    pub fn random_errors(mut self, store: &str, probability: f64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            store: Some(store.to_string()),
            op: None,
            from: 1,
            to: u64::MAX,
            probability,
            inject: Injection::Error(kind),
        });
        self
    }

    /// Script: operations `from..=to` of `store` (counted per `op` kind
    /// when given) pay an extra latency `spike` before proceeding.
    pub fn latency_spike(
        mut self,
        store: &str,
        op: Option<&str>,
        from: u64,
        to: u64,
        spike: Duration,
    ) -> Self {
        self.rules.push(FaultRule {
            store: Some(store.to_string()),
            op: op.map(str::to_string),
            from,
            to,
            probability: 1.0,
            inject: Injection::Latency(spike),
        });
        self
    }

    /// `true` when the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Deterministic per-operation decision for probabilistic rules.
    fn decide(&self, rule_idx: usize, store: &str, op: &str, idx: u64, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let mut h = self.seed ^ splitmix64(rule_idx as u64 + 1);
        h ^= splitmix64(hash_str(store));
        h ^= splitmix64(hash_str(op).wrapping_add(idx));
        let h = splitmix64(h);
        // Map the hash onto [0, 1) and compare.
        (h >> 11) as f64 / (1u64 << 53) as f64 > (1.0 - p)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Busy-wait for `d` (monotonic spin, like [`crate::LatencyModel::charge`]).
pub fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// One store's cursor over a shared [`FaultPlan`]: counts the store's
/// operations (globally and per operation kind) and answers "does this
/// operation fault?". Installed into a store with its `set_fault_hook`;
/// consulted by the store's fallible `try_*` entry points only.
#[derive(Debug)]
pub struct FaultHook {
    plan: Arc<FaultPlan>,
    store: String,
    /// Indices into `plan.rules` that can match this store, precomputed so
    /// the per-operation check touches nothing else.
    relevant: Vec<usize>,
    /// Whether any relevant rule keys its window on a per-op-kind counter
    /// (only then does `check` pay for the counter map).
    needs_per_op: bool,
    total: AtomicU64,
    injected: AtomicU64,
    per_op: Mutex<HashMap<String, u64>>,
}

impl FaultHook {
    /// A cursor of `store` over `plan`.
    pub fn new(plan: Arc<FaultPlan>, store: &str) -> FaultHook {
        let relevant: Vec<usize> = plan
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.store.as_deref().is_none_or(|s| s == store))
            .map(|(i, _)| i)
            .collect();
        let needs_per_op = relevant.iter().any(|&i| plan.rules[i].op.is_some());
        FaultHook {
            plan,
            store: store.to_string(),
            relevant,
            needs_per_op,
            total: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            per_op: Mutex::new(HashMap::new()),
        }
    }

    /// The store name this hook cursors for.
    pub fn store(&self) -> &str {
        &self.store
    }

    /// Operations checked so far.
    pub fn ops(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consult the plan for the next `op` operation: charges any matching
    /// latency spikes, and fails with the first matching error rule.
    pub fn check(&self, op: &str) -> Result<(), StoreError> {
        let total = self.total.fetch_add(1, Ordering::Relaxed) + 1;
        if self.relevant.is_empty() {
            return Ok(());
        }
        let op_idx = if self.needs_per_op {
            let mut guard = self.per_op.lock().expect("fault hook poisoned");
            match guard.get_mut(op) {
                Some(e) => {
                    *e += 1;
                    *e
                }
                None => {
                    guard.insert(op.to_string(), 1);
                    1
                }
            }
        } else {
            0
        };
        for &i in &self.relevant {
            let rule = &self.plan.rules[i];
            let idx = match &rule.op {
                Some(o) => {
                    if o != op {
                        continue;
                    }
                    op_idx
                }
                None => total,
            };
            if idx < rule.from || idx > rule.to {
                continue;
            }
            if !self.plan.decide(i, &self.store, op, idx, rule.probability) {
                continue;
            }
            match rule.inject {
                Injection::Latency(d) => spin_for(d),
                Injection::Error(kind) => {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    return Err(StoreError {
                        store: self.store.clone(),
                        op: op.to_string(),
                        op_index: total,
                        kind: kind.to_error_kind(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hook(plan: FaultPlan, store: &str) -> FaultHook {
        FaultHook::new(Arc::new(plan), store)
    }

    #[test]
    fn empty_plan_never_faults() {
        let h = hook(FaultPlan::new(7), "key-value");
        for _ in 0..100 {
            assert!(h.check("get").is_ok());
        }
        assert_eq!(h.ops(), 100);
        assert_eq!(h.injected(), 0);
    }

    #[test]
    fn scripted_window_counts_per_op_kind() {
        // "Fail the 3rd–5th kv MGETs" — interleaved gets don't count.
        let h = hook(
            FaultPlan::new(0).fail_ops("key-value", "mget", 3, 5, FaultKind::Unavailable),
            "key-value",
        );
        let mut failures = Vec::new();
        for i in 0..8 {
            let _ = h.check("get"); // never faults
            if let Err(e) = h.check("mget") {
                failures.push((i + 1, e.kind.clone()));
            }
        }
        assert_eq!(
            failures,
            vec![
                (3, StoreErrorKind::Unavailable),
                (4, StoreErrorKind::Unavailable),
                (5, StoreErrorKind::Unavailable),
            ]
        );
        assert_eq!(h.injected(), 3);
    }

    #[test]
    fn outage_window_then_recovery() {
        let h = hook(
            FaultPlan::new(0).outage("relational", 2, 3, FaultKind::Timeout),
            "relational",
        );
        let outcomes: Vec<bool> = (0..7).map(|_| h.check("query").is_ok()).collect();
        assert_eq!(outcomes, vec![true, false, false, false, true, true, true]);
    }

    #[test]
    fn rules_do_not_cross_stores() {
        let plan = Arc::new(FaultPlan::new(0).down("document", FaultKind::Unavailable));
        let doc = FaultHook::new(plan.clone(), "document");
        let kv = FaultHook::new(plan, "key-value");
        assert!(doc.check("find").is_err());
        assert!(kv.check("get").is_ok());
    }

    #[test]
    fn probabilistic_rules_are_reproducible_and_seed_sensitive() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let h = hook(
                FaultPlan::new(seed).random_errors("text", 0.5, FaultKind::Unavailable),
                "text",
            );
            (0..64).map(|_| h.check("term_lookup").is_ok()).collect()
        };
        let a = outcomes(1);
        assert_eq!(a, outcomes(1), "same seed must replay identically");
        assert_ne!(a, outcomes(2), "different seeds must differ");
        let fails = a.iter().filter(|ok| !**ok).count();
        assert!((10..=54).contains(&fails), "p=0.5 fails ~half: {fails}");
    }

    #[test]
    fn probability_extremes() {
        let always = hook(
            FaultPlan::new(3).random_errors("text", 1.0, FaultKind::Timeout),
            "text",
        );
        let never = hook(
            FaultPlan::new(3).random_errors("text", 0.0, FaultKind::Timeout),
            "text",
        );
        for _ in 0..10 {
            assert!(always.check("search").is_err());
            assert!(never.check("search").is_ok());
        }
    }

    #[test]
    fn latency_spike_delays_but_succeeds() {
        let h = hook(
            FaultPlan::new(0).latency_spike(
                "parallel",
                Some("scan"),
                1,
                1,
                Duration::from_micros(200),
            ),
            "parallel",
        );
        let t = std::time::Instant::now();
        assert!(h.check("scan").is_ok());
        assert!(t.elapsed() >= Duration::from_micros(200));
        // Second scan is outside the window: no spike.
        let t = std::time::Instant::now();
        assert!(h.check("scan").is_ok());
        assert!(t.elapsed() < Duration::from_micros(200));
    }

    #[test]
    fn error_display_names_store_op_and_index() {
        let h = hook(
            FaultPlan::new(0).down("relational", FaultKind::Unavailable),
            "relational",
        );
        let e = h.check("query").unwrap_err();
        let s = format!("{e}");
        assert!(s.contains("relational"), "{s}");
        assert!(s.contains("query"), "{s}");
        assert!(s.contains("unavailable"), "{s}");
        assert_eq!(e.op_index, 1);
    }
}
