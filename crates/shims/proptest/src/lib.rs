//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use:
//! [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, a character-class string strategy
//! (`"[a-z]{0,8}"`-style patterns), `collection::vec`, `Just`, `any`,
//! `prop_oneof!` unions, and the `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest: generation is plain pseudo-random (no
//! size ramping) and failures are **not shrunk** — the failing case index
//! and seed are reported instead, so a failure reproduces deterministically
//! by re-running the test.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded constructor (SplitMix64 state expansion).
    pub fn seed(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `usize` below `n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Config, errors, runner
// ---------------------------------------------------------------------------

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert*` inside a test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure with message.
    Fail(String),
    /// Case rejected (skipped, not a failure).
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property test: `cases` deterministic cases, panicking with the
/// case index and seed on the first failure. Used by the `proptest!` macro.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(&s)),
        Err(_) => 0x5EED_0000_0000_0000 ^ fnv1a(name),
    };
    for i in 0..config.cases {
        let seed = base.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed(seed);
        match case(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest `{name}` failed at case {i}/{} (base seed {base:#x}):\n{msg}",
                config.cases
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase (reference-counted, cheap to clone).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive structures: `recurse` receives the strategy built so far
    /// and wraps it one level deeper, up to `depth` levels; every level also
    /// keeps the leaf as an alternative so generation terminates.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles spanning a wide magnitude range.
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(0x20 + (rng.next_u64() % 0x5F) as u32).unwrap_or('?')
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

// ---------------------------------------------------------------------------
// String (character-class regex) strategies
// ---------------------------------------------------------------------------

/// `&'static str` patterns of the form `[class]{m,n}` (e.g. `"[a-z]{0,8}"`,
/// `"[ -~]{0,80}"`) act as `String` strategies. Only a single repeated
/// character class is supported — the subset the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let n = lo + rng.below(hi - lo + 1);
        (0..n).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, lo, hi))
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec()`]: an exact count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from the range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Either boolean, uniformly.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests; see crate docs for the supported syntax subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($config:expr)) => {};
    (@cfg($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl! { @cfg($config) $($rest)* }
    };
}

/// Assert inside a property test (returns an `Err` instead of panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: {:?}",
            l
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::seed(1);
        for _ in 0..1000 {
            let (a, b) = (0..3usize, -5i64..5).generate(&mut rng);
            assert!(a < 3 && (-5..5).contains(&b));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_len() {
        let mut rng = crate::TestRng::seed(2);
        for _ in 0..500 {
            let s = "[a-z]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_hits_all_branches() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::TestRng::seed(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let strat = (0..10i64)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 3, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::seed(4);
        for _ in 0..200 {
            let _ = strat.generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires args, early returns, and assertions.
        #[test]
        fn macro_smoke(x in 0..100u32, v in crate::collection::vec(0..5usize, 1..4)) {
            if x > 90 {
                return Ok(());
            }
            prop_assert!(x <= 90, "x={}", x);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
