//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel::unbounded` fan-in pattern is used by this workspace
//! (scoped worker threads sending one message per partition), which
//! `std::sync::mpsc` covers directly.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender};

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_in_from_threads() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        std::thread::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
            drop(tx);
        });
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
