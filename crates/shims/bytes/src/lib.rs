//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the key-value codec uses: an immutable,
//! cheaply-cloneable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]) with little-endian `put_*` methods, and a [`Buf`] reader
//! over `&[u8]` with little-endian `get_*` methods.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v.into())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0.into())
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Writer trait (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Reader trait (little-endian subset). Implemented for `&[u8]`, which is
/// advanced in place as values are read.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy `n` bytes out (panics when not enough remain).
    fn copy_front(&mut self, dst: &mut [u8]);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_front(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_front(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_front(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_front(&mut b);
        i64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_front(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_front(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        dst.copy_from_slice(&self[..n]);
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(1000);
        b.put_i64_le(-5);
        b.put_f64_le(2.5);
        b.put_slice(b"hi");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 1000);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r, b"hi");
        r.advance(2);
        assert!(!r.has_remaining());
    }
}
