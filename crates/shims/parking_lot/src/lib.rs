//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds without network access, so the small API subset it
//! uses (non-poisoning `RwLock` / `Mutex` with `read()` / `write()` /
//! `lock()` returning guards directly) is provided here on top of
//! `std::sync`. Poisoned locks are transparently recovered — matching
//! parking_lot's no-poisoning semantics.

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock around `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex around `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
