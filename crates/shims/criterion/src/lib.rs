//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the benchmark suite uses: `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain calibrated wall-clock loop: one warm-up run
//! estimates the per-iteration cost, each sample then runs enough
//! iterations to fill its share of the measurement window, and the median /
//! mean per-iteration times are reported. Every benchmark also emits a
//! machine-readable line
//! `BENCHJSON {"id":..., "median_ns":..., "mean_ns":..., "samples":...}`
//! that tooling (e.g. `BENCH_pr1.json` generation) can scrape.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.full(None), 20, Duration::from_secs(3), |b| f(b));
        self
    }
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// Identifier with a parameter component.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            param: Some(param.to_string()),
        }
    }

    /// Identifier from the parameter only.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            param: Some(param.to_string()),
        }
    }

    fn full(&self, group: Option<&str>) -> String {
        let mut s = String::new();
        if let Some(g) = group {
            s.push_str(g);
            s.push('/');
        }
        s.push_str(&self.name);
        if let Some(p) = &self.param {
            if !self.name.is_empty() {
                s.push('/');
            }
            s.push_str(p);
        }
        s
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
            param: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            name: s,
            param: None,
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &id.full(Some(&self.name)),
            self.sample_size,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    /// Benchmark a closure over a shared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &id.full(Some(&self.name)),
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// End the group (formatting no-op).
    pub fn finish(self) {}
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Per-iteration sample times, in nanoseconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, collecting per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration run.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let per_sample = self.measurement_time.as_nanos() as u64 / self.sample_size as u64;
        let iters = (per_sample / once.as_nanos().max(1) as u64).clamp(1, 1_000_000);

        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let el = t.elapsed();
            self.samples.push(el.as_nanos() as f64 / iters as f64);
            // Never run more than ~2x the window, but keep >= 3 samples.
            if budget.elapsed() > self.measurement_time * 2 && self.samples.len() >= 3 {
                break;
            }
        }
    }

    /// Measure with caller-controlled timing: `f` runs `iters` iterations
    /// and returns the total elapsed time it measured itself.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Calibration run.
        let once = f(1).max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_nanos() as u64 / self.sample_size as u64;
        let iters = (per_sample / once.as_nanos().max(1) as u64).clamp(1, 1_000_000);

        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let total = f(iters);
            self.samples.push(total.as_nanos() as f64 / iters as f64);
            if budget.elapsed() > self.measurement_time * 2 && self.samples.len() >= 3 {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        measurement_time,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {id:<50} (no samples)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, x| a.partial_cmp(x).unwrap());
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "bench {id:<50} median {:>12}  mean {:>12}  ({} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        sorted.len()
    );
    println!(
        "BENCHJSON {{\"id\":\"{id}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{}}}",
        sorted.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(30));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
