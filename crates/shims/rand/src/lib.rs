//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Provides [`Rng`] with `random`, `random_bool` and `random_range`, the
//! [`SeedableRng`] trait, and [`rngs::StdRng`] backed by xoshiro256** seeded
//! through SplitMix64 — deterministic across runs for reproducible
//! workload generation.

/// Core random-number-generator trait (rand 0.9 method names).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: std::ops::RangeBounds<T>,
    {
        T::sample_range(self, &range)
    }
}

/// Types generable uniformly from raw bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn from_rng<R: Rng>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn from_rng<R: Rng>(rng: &mut R) -> i32 {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for usize {
    fn from_rng<R: Rng>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly sampleable from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `range`; panics on an empty range.
    fn sample_range<R: Rng, B: std::ops::RangeBounds<Self>>(rng: &mut R, range: &B) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng, B: std::ops::RangeBounds<Self>>(rng: &mut R, range: &B) -> Self {
                use std::ops::Bound;
                let lo: $t = match range.start_bound() {
                    Bound::Included(&x) => x,
                    Bound::Excluded(&x) => x + 1,
                    Bound::Unbounded => <$t>::MIN,
                };
                let hi: $t = match range.end_bound() {
                    Bound::Included(&x) => x,
                    Bound::Excluded(&x) => x.checked_sub(1).expect("empty range"),
                    Bound::Unbounded => <$t>::MAX,
                };
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                // Widening multiply maps 64 random bits onto the span with
                // negligible bias for the sub-2^64 spans used here.
                let r = rng.next_u64() as u128;
                let off = (r * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng, B: std::ops::RangeBounds<Self>>(rng: &mut R, range: &B) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&x) | Bound::Excluded(&x) => x,
            Bound::Unbounded => 0.0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) | Bound::Excluded(&x) => x,
            Bound::Unbounded => 1.0,
        };
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let neg = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "hits={hits}");
    }
}
