//! The standard (restricted) chase over instances with labelled nulls.
//!
//! # Semi-naive delta evaluation
//!
//! The classic chase loop re-enumerates *every* homomorphism of every
//! premise each round; at fixpoint the final round does a full search only
//! to discover nothing changed. This implementation is **semi-naive**: the
//! instance stamps every fact with the epoch at which it last changed
//! (insertion, EGD argument rewrite, provenance growth — see
//! [`crate::instance::Instance::delta_index`]), the loop advances the epoch
//! once per round, and from the second round on each constraint only
//! searches for triggers that involve at least one fact from the previous
//! round's delta ([`crate::hom::find_homs_delta`]).
//!
//! Deferred same-round discoveries (a trigger whose newest fact was created
//! by an *earlier* constraint in the same round) are picked up in the next
//! round — the delta lists are snapshot at round start — so the reached
//! fixpoint is identical to the naive loop's; only the number of rounds may
//! differ, never the result instance.

use crate::hom::{find_one_hom_in, find_trigger_homs_in, HomArena, HomConfig};
use crate::instance::{DeltaIndex, Elem, Inconsistent, Instance};
use estocada_pivot::{Constraint, Symbol, Term, Var};
use std::collections::HashMap;
use std::fmt;

/// Resource budget and knobs for a chase run.
#[derive(Debug, Clone, Copy)]
pub struct ChaseConfig {
    /// Maximum number of full rounds over the constraint set.
    pub max_rounds: usize,
    /// Maximum number of facts the instance may grow to.
    pub max_facts: usize,
    /// Homomorphism search configuration.
    pub hom: HomConfig,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_rounds: 10_000,
            max_facts: 500_000,
            hom: HomConfig::default(),
        }
    }
}

/// Why a chase run failed.
#[derive(Debug, Clone)]
pub enum ChaseError {
    /// Budget exhausted — the constraint set may be non-terminating (check
    /// [`crate::wa::weakly_acyclic`]).
    Budget {
        /// Rounds executed when the budget ran out.
        rounds: usize,
        /// Facts in the instance when the budget ran out.
        facts: usize,
    },
    /// An EGD forced two distinct constants equal.
    Inconsistent(Inconsistent),
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Budget { rounds, facts } => write!(
                f,
                "chase budget exhausted after {rounds} rounds / {facts} facts \
                 (constraint set may be non-terminating)"
            ),
            ChaseError::Inconsistent(i) => write!(f, "{i}"),
        }
    }
}

impl std::error::Error for ChaseError {}

/// Counters reported by a successful chase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Rounds until fixpoint.
    pub rounds: usize,
    /// TGD firings that added facts.
    pub tgd_fires: usize,
    /// EGD firings that merged elements.
    pub egd_merges: usize,
}

/// Run the restricted chase of `constraints` over `instance` to fixpoint.
///
/// TGD triggers fire only when the conclusion has no extension in the
/// current instance (restricted-chase applicability); EGDs merge elements
/// through the instance union-find. Deterministic: constraints fire in the
/// given order, round-robin, until a full round changes nothing. The first
/// round searches all triggers; later rounds search semi-naively (see
/// module docs).
pub fn chase(
    instance: &mut Instance,
    constraints: &[Constraint],
    cfg: &ChaseConfig,
) -> Result<ChaseStats, ChaseError> {
    chase_with(&mut HomArena::new(), instance, constraints, cfg)
}

/// [`chase`] with caller-provided homomorphism scratch: every trigger and
/// applicability search of the run reuses `arena`'s buffers. Callers that
/// chase many instances (backchase verification workers) keep one arena per
/// thread.
pub fn chase_with(
    arena: &mut HomArena,
    instance: &mut Instance,
    constraints: &[Constraint],
    cfg: &ChaseConfig,
) -> Result<ChaseStats, ChaseError> {
    let mut stats = ChaseStats::default();
    // Epoch threshold separating "old" facts from the previous round's
    // delta; `None` = first round, search everything.
    let mut threshold: Option<u64> = None;
    loop {
        if stats.rounds >= cfg.max_rounds {
            return Err(ChaseError::Budget {
                rounds: stats.rounds,
                facts: instance.len(),
            });
        }
        stats.rounds += 1;
        let round_epoch = instance.advance_epoch();
        let delta = threshold.map(|t| instance.delta_index(t));
        let mut changed = false;
        for c in constraints {
            changed |= apply_constraint(arena, instance, c, cfg, &mut stats, delta.as_ref())?;
            if instance.len() > cfg.max_facts {
                return Err(ChaseError::Budget {
                    rounds: stats.rounds,
                    facts: instance.len(),
                });
            }
        }
        if !changed {
            return Ok(stats);
        }
        threshold = Some(round_epoch);
    }
}

/// A conclusion/equality term with its constant pre-interned. Firing loops
/// evaluate many homomorphisms per round; compiling once per constraint
/// keeps the global constant-table lookup out of the per-hom path.
#[derive(Clone, Copy)]
pub(crate) enum CompiledTerm {
    /// A pre-interned constant.
    Const(Elem),
    /// A variable, looked up in the trigger assignment at fire time.
    Var(Var),
}

impl CompiledTerm {
    pub(crate) fn compile(t: &Term) -> CompiledTerm {
        match t {
            Term::Const(v) => CompiledTerm::Const(Elem::constant(v)),
            Term::Var(v) => CompiledTerm::Var(*v),
        }
    }
}

fn apply_constraint(
    arena: &mut HomArena,
    instance: &mut Instance,
    c: &Constraint,
    cfg: &ChaseConfig,
    stats: &mut ChaseStats,
    delta: Option<&DeltaIndex>,
) -> Result<bool, ChaseError> {
    let mut changed = false;
    match c {
        Constraint::Tgd(tgd) => {
            let homs = find_trigger_homs_in(arena, instance, &tgd.premise, cfg.hom, delta);
            // Intern the conclusion constants once per constraint, not once
            // per trigger.
            let compiled: Vec<(Symbol, Vec<CompiledTerm>)> = tgd
                .conclusion
                .iter()
                .map(|a| (a.pred, a.args.iter().map(CompiledTerm::compile).collect()))
                .collect();
            for h in homs {
                // Re-resolve the trigger (earlier firings in this batch may
                // have merged elements) and re-check applicability.
                let fixed: HashMap<Var, Elem> = h
                    .map
                    .iter()
                    .map(|(v, e)| (*v, instance.resolve(e)))
                    .collect();
                if find_one_hom_in(arena, instance, &tgd.conclusion, &fixed).is_some() {
                    continue;
                }
                // Fire: fresh nulls for existential variables.
                let mut assignment = fixed;
                for v in tgd.existentials() {
                    let n = instance.fresh_null();
                    assignment.insert(v, n);
                }
                for (pred, slots) in &compiled {
                    let args: Vec<Elem> = slots
                        .iter()
                        .map(|s| match s {
                            CompiledTerm::Const(e) => *e,
                            CompiledTerm::Var(v) => assignment
                                .get(v)
                                .copied()
                                .expect("conclusion variable neither frontier nor existential"),
                        })
                        .collect();
                    let (_, new) = instance.insert(*pred, args);
                    changed |= new;
                }
                stats.tgd_fires += 1;
            }
        }
        Constraint::Egd(egd) => {
            let homs = find_trigger_homs_in(arena, instance, &egd.premise, cfg.hom, delta);
            let equal = (
                CompiledTerm::compile(&egd.equal.0),
                CompiledTerm::compile(&egd.equal.1),
            );
            for h in homs {
                let resolve_term = |ct: &CompiledTerm, inst: &Instance| -> Elem {
                    match ct {
                        CompiledTerm::Const(e) => *e,
                        CompiledTerm::Var(v) => inst.resolve(
                            h.map
                                .get(v)
                                .expect("EGD equality variable must occur in premise"),
                        ),
                    }
                };
                let a = resolve_term(&equal.0, instance);
                let b = resolve_term(&equal.1, instance);
                match instance.merge(&a, &b) {
                    Ok(true) => {
                        stats.egd_merges += 1;
                        changed = true;
                    }
                    Ok(false) => {}
                    Err(e) => {
                        // Name the EGD and its trigger facts: a bare
                        // constant clash is undiagnosable in a large
                        // constraint set.
                        let trigger: Vec<String> = h
                            .fact_ids
                            .iter()
                            .map(|fid| instance.format_fact(*fid))
                            .collect();
                        return Err(ChaseError::Inconsistent(e.with_trigger(egd.name, trigger)));
                    }
                }
            }
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_pivot::{Atom, Egd, Symbol, Tgd};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn c(v: i64) -> Elem {
        Elem::of(v)
    }

    #[test]
    fn transitivity_chase_computes_closure() {
        // Edge(a,b) ∧ Path(b,c) → Path(a,c); Edge(a,b) → Path(a,b)
        let edge_to_path = Tgd::new(
            "e2p",
            vec![Atom::new("Edge", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Path", vec![Term::var(0), Term::var(1)])],
        );
        let trans = Tgd::new(
            "trans",
            vec![
                Atom::new("Edge", vec![Term::var(0), Term::var(1)]),
                Atom::new("Path", vec![Term::var(1), Term::var(2)]),
            ],
            vec![Atom::new("Path", vec![Term::var(0), Term::var(2)])],
        );
        let mut i = Instance::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            i.insert(sym("Edge"), vec![c(a), c(b)]);
        }
        let stats = chase(
            &mut i,
            &[edge_to_path.into(), trans.into()],
            &ChaseConfig::default(),
        )
        .unwrap();
        assert!(stats.rounds >= 2);
        // Paths: 12,23,34,13,24,14 = 6
        assert_eq!(i.facts_of(sym("Path")).count(), 6);
    }

    #[test]
    fn tgd_with_existential_invents_null_once() {
        // Person(x) → HasParent(x, y)
        let t = Tgd::new(
            "parent",
            vec![Atom::new("Person", vec![Term::var(0)])],
            vec![Atom::new("HasParent", vec![Term::var(0), Term::var(1)])],
        );
        let mut i = Instance::new();
        i.insert(sym("Person"), vec![c(1)]);
        chase(&mut i, &[t.clone().into()], &ChaseConfig::default()).unwrap();
        assert_eq!(i.facts_of(sym("HasParent")).count(), 1);
        // Restricted chase: re-chasing adds nothing.
        let stats = chase(&mut i, &[t.into()], &ChaseConfig::default()).unwrap();
        assert_eq!(stats.tgd_fires, 0);
        assert_eq!(i.facts_of(sym("HasParent")).count(), 1);
    }

    #[test]
    fn egd_merges_nulls_into_constants() {
        // R(x, y1) ∧ R(x, y2) → y1 = y2  (functional)
        let e = Egd::new(
            "fd",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        );
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("R"), vec![c(1), n]);
        i.insert(sym("R"), vec![c(1), c(9)]);
        let stats = chase(&mut i, &[e.into()], &ChaseConfig::default()).unwrap();
        assert!(stats.egd_merges >= 1);
        assert_eq!(i.resolve(&n), c(9));
        assert_eq!(i.len(), 1); // the two facts collapsed
    }

    #[test]
    fn egd_constant_clash_errors() {
        let e = Egd::new(
            "fd",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        );
        let mut i = Instance::new();
        i.insert(sym("R"), vec![c(1), c(8)]);
        i.insert(sym("R"), vec![c(1), c(9)]);
        match chase(&mut i, &[e.into()], &ChaseConfig::default()) {
            Err(ChaseError::Inconsistent(inc)) => {
                // The error names the EGD that fired and its trigger facts.
                assert_eq!(inc.egd, Some(sym("fd")));
                assert_eq!(inc.trigger_facts.len(), 2);
                let msg = inc.to_string();
                assert!(msg.contains("[fd]"), "missing EGD name: {msg}");
                assert!(msg.contains("R(1, "), "missing trigger facts: {msg}");
            }
            other => panic!("expected inconsistency, got {other:?}"),
        }
    }

    #[test]
    fn non_terminating_set_hits_budget() {
        // R(x) → S(x, y); S(x, y) → R(y)  — classic infinite chase.
        let t1 = Tgd::new(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = Tgd::new(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        let mut i = Instance::new();
        i.insert(sym("R"), vec![c(1)]);
        let cfg = ChaseConfig {
            max_rounds: 50,
            max_facts: 100,
            ..ChaseConfig::default()
        };
        assert!(matches!(
            chase(&mut i, &[t1.into(), t2.into()], &cfg),
            Err(ChaseError::Budget { .. })
        ));
    }

    #[test]
    fn chase_is_idempotent_at_fixpoint() {
        let t = Tgd::new(
            "copy",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("B", vec![Term::var(0)])],
        );
        let mut i = Instance::new();
        i.insert(sym("A"), vec![c(1)]);
        chase(&mut i, &[t.clone().into()], &ChaseConfig::default()).unwrap();
        let before = i.len();
        let stats = chase(&mut i, &[t.into()], &ChaseConfig::default()).unwrap();
        assert_eq!(i.len(), before);
        assert_eq!(stats.tgd_fires, 0);
    }

    #[test]
    fn seminaive_matches_naive_on_deep_closure() {
        // A 12-node chain: transitive closure needs many delta rounds; the
        // result must be the full closure (n*(n+1)/2 paths over 12 edges).
        let edge_to_path = Tgd::new(
            "e2p",
            vec![Atom::new("Edge", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Path", vec![Term::var(0), Term::var(1)])],
        );
        let trans = Tgd::new(
            "trans",
            vec![
                Atom::new("Path", vec![Term::var(0), Term::var(1)]),
                Atom::new("Path", vec![Term::var(1), Term::var(2)]),
            ],
            vec![Atom::new("Path", vec![Term::var(0), Term::var(2)])],
        );
        let mut i = Instance::new();
        for k in 0..12 {
            i.insert(sym("Edge"), vec![c(k), c(k + 1)]);
        }
        chase(
            &mut i,
            &[edge_to_path.into(), trans.into()],
            &ChaseConfig::default(),
        )
        .unwrap();
        assert_eq!(i.facts_of(sym("Path")).count(), 12 * 13 / 2);
    }

    #[test]
    fn seminaive_handles_egd_rewrites_across_rounds() {
        // TGD produces R-pairs; an FD then merges their second columns;
        // the merged fact must re-trigger the downstream TGD.
        let t1 = Tgd::new(
            "t1",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
        );
        let fd = Egd::new(
            "fd",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        );
        let t2 = Tgd::new(
            "t2",
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("S", vec![Term::var(1)])],
        );
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("A"), vec![c(1)]);
        i.insert(sym("R"), vec![c(1), n]);
        i.insert(sym("R"), vec![c(1), c(9)]);
        chase(
            &mut i,
            &[t1.into(), fd.into(), t2.into()],
            &ChaseConfig::default(),
        )
        .unwrap();
        // FD merges n with 9 (and the TGD's fresh null too); S(9) derived.
        assert_eq!(i.resolve(&n), c(9));
        assert_eq!(i.facts_of(sym("S")).count(), 1);
    }
}
