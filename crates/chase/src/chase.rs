//! The standard (restricted) chase over instances with labelled nulls.
//!
//! # Semi-naive delta evaluation
//!
//! The classic chase loop re-enumerates *every* homomorphism of every
//! premise each round; at fixpoint the final round does a full search only
//! to discover nothing changed. This implementation is **semi-naive**: the
//! instance stamps every fact with the epoch at which it last changed
//! (insertion, EGD argument rewrite, provenance growth — see
//! [`crate::instance::Instance::delta_index`]), the loop advances the epoch
//! once per round, and from the second round on each constraint only
//! searches for triggers that involve at least one fact from the previous
//! round's delta ([`crate::hom::find_homs_delta`]).
//!
//! # The search/apply phase split
//!
//! Each round is an explicit two-phase loop:
//!
//! 1. **Search phase (read-only, parallelizable).** Every constraint's
//!    trigger search runs against the *same frozen* instance — nothing
//!    mutates between searches — so the per-constraint
//!    [`find_trigger_homs_in`] calls are independent pure functions of
//!    `(instance, delta, premise)` and fan out over the shared
//!    [`estocada_parexec`] executor when [`ChaseConfig::search_workers`]
//!    `> 1`. Each worker holds a private [`HomArena`]; results come back
//!    in constraint order, so the apply phase sees the identical trigger
//!    lists at any worker count and the whole run — firing order, invented
//!    nulls, stats, and `Inconsistent` errors — is bit-identical to the
//!    one-worker run.
//! 2. **Apply phase (serial).** Triggers fire in constraint order, then
//!    trigger order. Every trigger is re-resolved through the union-find
//!    at fire time (earlier firings in the same round may have merged
//!    elements) and TGD applicability is re-probed against the *live*
//!    instance, so the restricted-chase semantics are unchanged by the
//!    split: a trigger another constraint satisfied moments earlier still
//!    does not fire.
//!
//! Deferred same-round discoveries (a trigger whose newest fact was created
//! by an *earlier* constraint in the same round) are picked up in the next
//! round — trigger searches see the round-start snapshot, and facts created
//! during the apply phase carry the current round's epoch, putting them in
//! the next round's delta — so the reached fixpoint is identical to the
//! interleaved loop's; only the number of rounds may differ, never the
//! result instance.
//!
//! # The applicability memo
//!
//! The restricted chase probes, per TGD trigger, whether the conclusion
//! already has an image under the trigger's frontier binding
//! ([`find_one_hom_in`]). Distinct triggers frequently share a frontier
//! image (transitive closure derives the same `(x, z)` pair through every
//! midpoint `y`), and delta rounds re-discover triggers whose probe already
//! succeeded. With [`ChaseConfig::memo`] on (the default), a per-run memo
//! records `(constraint index, resolved frontier images)` pairs proven
//! satisfied — by a successful probe or by the firing itself — and skips
//! the probe for every later trigger with the same key.
//!
//! **Invalidation rule:** satisfaction is monotone as the instance grows
//! (facts only die by deduplication against an identical survivor, and
//! argument rewriting maps any witness image to its resolved form), so an
//! entry can only be disturbed by an EGD merge *retiring one of its keyed
//! elements*. The apply phase therefore drops, after each merge, exactly
//! the entries whose key mentions the retired null
//! ([`crate::instance::Instance::merge_retired`]) — the same occurrence-
//! list pattern the instance uses for incremental normalization. Retired
//! ids are never re-issued, so stale keys cannot be misread; memoization
//! changes which probes run, never what fires ([`ChaseStats::core`] is
//! identical with the memo on or off).

use crate::hom::{
    find_homs_delta_anchor_in, find_one_hom_in, find_trigger_homs_in, Hom, HomArena, HomConfig,
};
use crate::instance::{DeltaIndex, Elem, Inconsistent, Instance};
use crate::wa::TerminationCertificate;
use estocada_parexec::Pool;
use estocada_pivot::{Atom, Constraint, Egd, Symbol, Term, Tgd, Var};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Resource budget and knobs for a chase run.
#[derive(Debug, Clone, Copy)]
pub struct ChaseConfig {
    /// Maximum number of full rounds over the constraint set.
    pub max_rounds: usize,
    /// Maximum number of facts the instance may grow to.
    pub max_facts: usize,
    /// Homomorphism search configuration.
    pub hom: HomConfig,
    /// Worker threads for the read-only trigger-search phase (`<= 1` =
    /// search serially on the caller's arena). Any value produces a
    /// bit-identical chase — see the module docs' phase-split contract.
    pub search_workers: usize,
    /// Minimum alive-fact count before the search phase actually fans out
    /// (defaults to [`SEARCH_PARALLEL_MIN_FACTS`]): below it a round's
    /// whole search costs less than spawning and joining the scoped pool,
    /// so small chases — the mediator's per-query universal-plan and
    /// candidate-verification chases are typically tens of facts — search
    /// inline even at `search_workers > 1`. Set to 0 to force fan-out
    /// (the differential suites do, so the parallel branch is genuinely
    /// exercised). Identical outcome either way; only latency changes.
    pub search_min_facts: usize,
    /// Memoize applicability probes across triggers and rounds (see the
    /// module docs). Elides redundant probes only; never changes the
    /// result instance or [`ChaseStats::core`].
    pub memo: bool,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_rounds: 10_000,
            max_facts: 500_000,
            hom: HomConfig::default(),
            search_workers: 1,
            search_min_facts: SEARCH_PARALLEL_MIN_FACTS,
            memo: true,
        }
    }
}

/// Why a chase run failed.
#[derive(Debug, Clone)]
pub enum ChaseError {
    /// Budget exhausted — the constraint set may be non-terminating (run
    /// [`crate::wa::certify`] for a [`crate::wa::TerminationCertificate`]
    /// with a concrete witness cycle).
    Budget {
        /// Rounds executed when the budget ran out.
        rounds: usize,
        /// Facts in the instance when the budget ran out.
        facts: usize,
    },
    /// An EGD forced two distinct constants equal.
    Inconsistent(Inconsistent),
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Budget { rounds, facts } => write!(
                f,
                "chase budget exhausted after {rounds} rounds / {facts} facts \
                 (constraint set may be non-terminating: run wa::certify for \
                 a termination certificate with a witness cycle)"
            ),
            ChaseError::Inconsistent(i) => write!(f, "{i}"),
        }
    }
}

impl std::error::Error for ChaseError {}

/// Counters reported by a successful chase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Rounds until fixpoint.
    pub rounds: usize,
    /// TGD firings that added facts.
    pub tgd_fires: usize,
    /// EGD firings that merged elements.
    pub egd_merges: usize,
    /// Applicability probes skipped because the memo had already proven the
    /// (constraint, frontier image) pair satisfied. 0 when the memo is off.
    pub memo_hits: usize,
    /// Applicability probes actually run under the memo. 0 when the memo
    /// is off (probes still run; they just aren't counted against a memo).
    pub memo_misses: usize,
}

impl ChaseStats {
    /// The memo-independent counters `(rounds, tgd_fires, egd_merges)`.
    ///
    /// Identical for memo-on and memo-off runs of the same chase — the
    /// memo elides redundant applicability probes, never changes what
    /// fires — while the memo hit/miss counters themselves are diagnostic
    /// and differ by construction. Differential suites compare this.
    pub fn core(&self) -> (usize, usize, usize) {
        (self.rounds, self.tgd_fires, self.egd_merges)
    }
}

/// Run the restricted chase of `constraints` over `instance` to fixpoint.
///
/// TGD triggers fire only when the conclusion has no extension in the
/// current instance (restricted-chase applicability); EGDs merge elements
/// through the instance union-find. Deterministic: constraints fire in the
/// given order, round-robin, until a full round changes nothing. The first
/// round searches all triggers; later rounds search semi-naively (see
/// module docs).
pub fn chase(
    instance: &mut Instance,
    constraints: &[Constraint],
    cfg: &ChaseConfig,
) -> Result<ChaseStats, ChaseError> {
    chase_with(&mut HomArena::new(), instance, constraints, cfg)
}

/// [`chase`] with caller-provided homomorphism scratch: every trigger and
/// applicability search of the run reuses `arena`'s buffers. Callers that
/// chase many instances (backchase verification workers) keep one arena per
/// thread.
pub fn chase_with(
    arena: &mut HomArena,
    instance: &mut Instance,
    constraints: &[Constraint],
    cfg: &ChaseConfig,
) -> Result<ChaseStats, ChaseError> {
    let mut stats = ChaseStats::default();
    let mut memo = cfg.memo.then(ApplicabilityMemo::default);
    // One search pool for the whole run: spawned lazily on the first round
    // that actually fans out, then reused by every later round (a chase is
    // a loop of searches — paying a thread spawn/join per round is pure
    // overhead, most visible on few-core hosts).
    let mut pool = LazySearchPool::new(cfg.search_workers, search_item_bound(constraints));
    // Epoch threshold separating "old" facts from the previous round's
    // delta; `None` = first round, search everything.
    let mut threshold: Option<u64> = None;
    loop {
        if stats.rounds >= cfg.max_rounds {
            return Err(ChaseError::Budget {
                rounds: stats.rounds,
                facts: instance.len(),
            });
        }
        stats.rounds += 1;
        let round_epoch = instance.advance_epoch();
        let delta = threshold.map(|t| instance.delta_index(t));
        // Phase 1: read-only trigger search against the frozen round-start
        // instance, fanned out over the search workers.
        let triggers = search_triggers(
            arena,
            instance,
            constraints,
            cfg.hom,
            &mut pool,
            cfg.search_min_facts,
            delta.as_ref(),
        );
        // Phase 2: serial apply in constraint order.
        let mut changed = false;
        for (cidx, (c, homs)) in constraints.iter().zip(triggers).enumerate() {
            changed |= apply_constraint(arena, instance, cidx, c, homs, &mut stats, memo.as_mut())?;
            if instance.len() > cfg.max_facts {
                return Err(ChaseError::Budget {
                    rounds: stats.rounds,
                    facts: instance.len(),
                });
            }
        }
        if !changed {
            return Ok(stats);
        }
        threshold = Some(round_epoch);
    }
}

/// Run the chase stratum-by-stratum under a termination certificate.
///
/// A [`TerminationCertificate::Stratified`] verdict partitions
/// `constraints` — which must be the exact slice the certificate was
/// computed over, in the same order — into strata; each stratum is chased
/// to fixpoint in turn, with the budgets lifted according to the stratum's
/// *own* certificate ([`ChaseConfig::with_certificate`] consumes the
/// per-stratum verdict). Later strata never write into relations earlier
/// strata read (that is what stratification certifies), so earlier
/// fixpoints survive and the final instance satisfies the whole set.
///
/// Any other verdict — including one whose stratum indices do not fit
/// `constraints` — falls back to a single [`chase_with`] run under
/// `cfg.with_certificate(cert)`. Stats accumulate across strata.
pub fn chase_stratified(
    instance: &mut Instance,
    constraints: &[Constraint],
    cfg: &ChaseConfig,
    cert: &TerminationCertificate,
) -> Result<ChaseStats, ChaseError> {
    chase_stratified_with(&mut HomArena::new(), instance, constraints, cfg, cert)
}

/// [`chase_stratified`] with caller-provided homomorphism scratch, shared
/// across every stratum's run.
pub fn chase_stratified_with(
    arena: &mut HomArena,
    instance: &mut Instance,
    constraints: &[Constraint],
    cfg: &ChaseConfig,
    cert: &TerminationCertificate,
) -> Result<ChaseStats, ChaseError> {
    let strata = match cert {
        TerminationCertificate::Stratified { strata }
            if strata
                .iter()
                .flat_map(|s| s.members.iter())
                .all(|&i| i < constraints.len()) =>
        {
            strata
        }
        _ => return chase_with(arena, instance, constraints, &cfg.with_certificate(cert)),
    };
    let mut total = ChaseStats::default();
    for stratum in strata {
        let subset: Vec<Constraint> = stratum
            .members
            .iter()
            .map(|&i| constraints[i].clone())
            .collect();
        let sub_cfg = cfg.with_certificate(&stratum.certificate);
        let stats = chase_with(arena, instance, &subset, &sub_cfg)?;
        total.rounds += stats.rounds;
        total.tgd_fires += stats.tgd_fires;
        total.egd_merges += stats.egd_merges;
        total.memo_hits += stats.memo_hits;
        total.memo_misses += stats.memo_misses;
    }
    Ok(total)
}

/// Default of [`ChaseConfig::search_min_facts`] /
/// [`crate::pchase::ProvChaseConfig::search_min_facts`] — mirrors pacb's
/// `PARALLEL_CANDIDATE_THRESHOLD` rationale at the chase-round level.
pub const SEARCH_PARALLEL_MIN_FACTS: usize = 512;

/// The premise whose homomorphisms trigger a constraint.
pub(crate) fn constraint_premise(c: &Constraint) -> &[Atom] {
    match c {
        Constraint::Tgd(t) => &t.premise,
        Constraint::Egd(e) => &e.premise,
    }
}

/// The per-chase trigger-search pool, spawned lazily: a chase whose every
/// round searches inline (serial config, single constraint, or an instance
/// that never reaches `search_min_facts`) creates no threads at all, while
/// the first round that fans out spawns the pool once and every later
/// round reuses it. Both chase loops hold one of these for the duration of
/// a run.
pub(crate) struct LazySearchPool {
    workers: usize,
    pool: Option<Pool>,
}

impl LazySearchPool {
    /// A pool of up to `workers` threads, capped by `max_items` — the most
    /// work items one search batch can hold. Delta rounds fan out one item
    /// per (constraint, premise anchor), so the bound is the total anchor
    /// count, not the constraint count.
    pub(crate) fn new(workers: usize, max_items: usize) -> LazySearchPool {
        LazySearchPool {
            workers: workers.max(1).min(max_items.max(1)),
            pool: None,
        }
    }

    fn get(&mut self) -> &Pool {
        let workers = self.workers;
        self.pool.get_or_insert_with(|| Pool::new(workers))
    }
}

/// The most work items one trigger-search batch over `constraints` can
/// hold: a delta round fans out one item per (constraint, premise anchor).
/// Sizes the run's [`LazySearchPool`].
pub(crate) fn search_item_bound(constraints: &[Constraint]) -> usize {
    constraints
        .iter()
        .map(|c| constraint_premise(c).len().max(1))
        .sum()
}

/// The read-only search phase shared by both chase loops: enumerate every
/// constraint's triggers against the frozen instance, in constraint order.
///
/// With `workers <= 1`, a single constraint, or an instance below
/// `min_facts` (see [`ChaseConfig::search_min_facts`]) the searches run
/// inline on the caller's warmed arena — the serial fast path pays
/// nothing for the phase machinery. Otherwise the per-constraint searches
/// fan out over the run's [`LazySearchPool`] (an [`estocada_parexec::Pool`]
/// spawned once per chase and reused every round), each worker holding a
/// private [`HomArena`]; the executor reassembles results in item
/// (= constraint) order, so the returned trigger lists are bit-identical
/// at any worker count — each search is a pure function of
/// `(instance, delta, premise)` and nothing mutates the instance while
/// the phase runs.
pub(crate) fn search_triggers(
    arena: &mut HomArena,
    instance: &Instance,
    constraints: &[Constraint],
    hom: HomConfig,
    pool: &mut LazySearchPool,
    min_facts: usize,
    delta: Option<&DeltaIndex>,
) -> Vec<Vec<Hom>> {
    if pool.workers <= 1 || constraints.len() <= 1 || instance.len() < min_facts {
        return constraints
            .iter()
            .map(|c| find_trigger_homs_in(arena, instance, constraint_premise(c), hom, delta))
            .collect();
    }
    let Some(d) = delta else {
        // First round: one full search per constraint.
        return pool
            .get()
            .map_init(constraints, HomArena::new, |worker_arena, _, c| {
                find_trigger_homs_in(worker_arena, instance, constraint_premise(c), hom, None)
            });
    };
    // Delta rounds fan out one work item per (constraint, premise anchor)
    // with delta facts, not one per constraint: each anchored pass of the
    // semi-naive search is an independent pure function, so a skewed round
    // (one constraint whose every trigger sits behind a single hot
    // predicate) no longer serializes behind one worker. Anchors with no
    // delta facts are skipped up front — same as the serial loop.
    let mut items: Vec<(usize, usize)> = Vec::new();
    for (cidx, c) in constraints.iter().enumerate() {
        let premise = constraint_premise(c);
        for (anchor, atom) in premise.iter().enumerate() {
            if !d.facts_of(atom.pred).is_empty() {
                items.push((cidx, anchor));
            }
        }
    }
    let fixed = HashMap::new();
    let per_item =
        pool.get()
            .map_init(&items, HomArena::new, |worker_arena, _, &(cidx, anchor)| {
                find_homs_delta_anchor_in(
                    worker_arena,
                    instance,
                    constraint_premise(&constraints[cidx]),
                    &fixed,
                    hom,
                    d,
                    anchor,
                )
            });
    // Reassemble per constraint in anchor order, truncated to the hom
    // limit — the same homs, in the same order, as the serial
    // early-stopping anchor loop.
    let mut out: Vec<Vec<Hom>> = vec![Vec::new(); constraints.len()];
    for (&(cidx, _), homs) in items.iter().zip(per_item) {
        let dst = &mut out[cidx];
        for h in homs {
            if dst.len() >= hom.limit {
                break;
            }
            dst.push(h);
        }
    }
    out
}

/// Per-run memo of applicability probes already proven satisfied, keyed by
/// `(constraint index, resolved images of the conclusion-relevant frontier
/// variables)` — see the module docs for the soundness argument and the
/// invalidation rule.
#[derive(Default)]
pub(crate) struct ApplicabilityMemo {
    /// constraint index → set of satisfied frontier-image keys (lookups
    /// borrow the candidate key as a slice — no allocation on a hit).
    satisfied: HashMap<usize, HashSet<Vec<Elem>>>,
    /// null id → keys mentioning it, mirroring the instance's `null →
    /// fact ids` occurrence index: a merge retiring null `n` invalidates
    /// exactly `occ[n]`.
    occ: HashMap<u32, Vec<(usize, Vec<Elem>)>>,
}

/// A cache keyed (in part) on null ids that must drop entries when an EGD
/// merge retires a null. Implemented by the applicability memo here and by
/// the provenance chase's Skolem table
/// ([`crate::pchase::ProvChaseConfig::memo`]) — both mirror the instance's
/// null-occurrence index, so invalidation is exact, not a flush.
pub(crate) trait NullInvalidate {
    /// Drop every cached entry whose key mentions the retired null.
    fn invalidate_null(&mut self, retired: u32);
}

impl NullInvalidate for ApplicabilityMemo {
    fn invalidate_null(&mut self, retired: u32) {
        ApplicabilityMemo::invalidate_null(self, retired);
    }
}

impl ApplicabilityMemo {
    /// Whether `(cidx, key)` is known satisfied.
    fn contains(&self, cidx: usize, key: &[Elem]) -> bool {
        self.satisfied.get(&cidx).is_some_and(|s| s.contains(key))
    }

    /// Record `(cidx, key)` as satisfied and index its nulls for
    /// invalidation.
    fn insert(&mut self, cidx: usize, key: Vec<Elem>) {
        for e in &key {
            if let Elem::Null(n) = e {
                self.occ.entry(*n).or_default().push((cidx, key.clone()));
            }
        }
        self.satisfied.entry(cidx).or_default().insert(key);
    }

    /// Drop every entry whose key mentions the retired null (no-op when
    /// none does — constants and surviving nulls never invalidate).
    fn invalidate_null(&mut self, retired: u32) {
        let Some(keys) = self.occ.remove(&retired) else {
            return;
        };
        for (cidx, key) in keys {
            if let Some(s) = self.satisfied.get_mut(&cidx) {
                s.remove(key.as_slice());
            }
        }
    }
}

/// The frontier variables that occur in a TGD's conclusion, sorted — the
/// applicability-probe result depends on exactly these bindings (and the
/// provenance chase keys its Skolem memo on the same slots).
pub(crate) fn conclusion_frontier(tgd: &Tgd) -> Vec<Var> {
    let f = tgd.frontier();
    let mut used: Vec<Var> = tgd
        .conclusion
        .iter()
        .flat_map(|a| a.vars())
        .filter(|v| f.contains(v))
        .collect();
    used.sort();
    used.dedup();
    used
}

/// A conclusion/equality term with its constant pre-interned. Firing loops
/// evaluate many homomorphisms per round; compiling once per constraint
/// keeps the global constant-table lookup out of the per-hom path.
#[derive(Clone, Copy)]
pub(crate) enum CompiledTerm {
    /// A pre-interned constant.
    Const(Elem),
    /// A variable, looked up in the trigger assignment at fire time.
    Var(Var),
}

impl CompiledTerm {
    pub(crate) fn compile(t: &Term) -> CompiledTerm {
        match t {
            Term::Const(v) => CompiledTerm::Const(Elem::constant(v)),
            Term::Var(v) => CompiledTerm::Var(*v),
        }
    }
}

/// Fire the pre-searched triggers of one constraint (the serial apply
/// phase for a single constraint).
fn apply_constraint(
    arena: &mut HomArena,
    instance: &mut Instance,
    cidx: usize,
    c: &Constraint,
    homs: Vec<Hom>,
    stats: &mut ChaseStats,
    mut memo: Option<&mut ApplicabilityMemo>,
) -> Result<bool, ChaseError> {
    let mut changed = false;
    match c {
        Constraint::Tgd(tgd) => {
            // Intern the conclusion constants once per constraint, not once
            // per trigger.
            let compiled: Vec<(Symbol, Vec<CompiledTerm>)> = tgd
                .conclusion
                .iter()
                .map(|a| (a.pred, a.args.iter().map(CompiledTerm::compile).collect()))
                .collect();
            // Only the conclusion-relevant bindings matter from here on:
            // the applicability probe constrains exactly the frontier
            // variables that occur in the conclusion, and firing reads
            // those plus the (fresh-null) existentials — premise-only
            // variables never escape the trigger.
            let key_vars: Vec<Var> = conclusion_frontier(tgd);
            let existentials: Vec<Var> = tgd.existentials().into_iter().collect();
            let mut key_buf: Vec<Elem> = Vec::with_capacity(key_vars.len());
            for h in homs {
                // Re-resolve the trigger under the live union-find
                // (earlier firings this round may have merged elements).
                key_buf.clear();
                key_buf.extend(key_vars.iter().map(|v| instance.resolve(&h.map[v])));
                if let Some(m) = memo.as_deref_mut() {
                    // A hit skips the probe *and* the per-trigger
                    // assignment build — the whole remaining cost.
                    if m.contains(cidx, &key_buf) {
                        stats.memo_hits += 1;
                        continue;
                    }
                    stats.memo_misses += 1;
                }
                let fixed: HashMap<Var, Elem> = key_vars
                    .iter()
                    .copied()
                    .zip(key_buf.iter().copied())
                    .collect();
                if find_one_hom_in(arena, instance, &tgd.conclusion, &fixed).is_some() {
                    if let Some(m) = memo.as_deref_mut() {
                        m.insert(cidx, key_buf.clone());
                    }
                    continue;
                }
                // Fire: fresh nulls for existential variables.
                let mut assignment = fixed;
                for v in &existentials {
                    let n = instance.fresh_null();
                    assignment.insert(*v, n);
                }
                for (pred, slots) in &compiled {
                    let args: Vec<Elem> = slots
                        .iter()
                        .map(|s| match s {
                            CompiledTerm::Const(e) => *e,
                            CompiledTerm::Var(v) => assignment
                                .get(v)
                                .copied()
                                .expect("conclusion variable neither frontier nor existential"),
                        })
                        .collect();
                    let (_, new) = instance.insert(*pred, args);
                    changed |= new;
                }
                // The firing itself satisfies the conclusion under this
                // frontier image: memoize it so later triggers sharing the
                // key skip their probe entirely.
                if let Some(m) = memo.as_deref_mut() {
                    m.insert(cidx, key_buf.clone());
                }
                stats.tgd_fires += 1;
            }
        }
        Constraint::Egd(egd) => {
            apply_egd_homs(
                instance,
                egd,
                &homs,
                |_, _| true,
                stats,
                &mut changed,
                memo.map(|m| m as &mut dyn NullInvalidate),
            )?;
        }
    }
    Ok(changed)
}

/// The EGD apply loop shared verbatim by both chase loops: resolve each
/// trigger's equality under the live union-find, merge, and render any
/// constant clash with the firing EGD's name and trigger facts (the
/// `with_trigger` form). `fire` gates each trigger against the live
/// instance — the provenance chase passes its certain-provenance filter,
/// the plain chase fires everything. A merge that retires a null
/// invalidates the applicability memo's entries keyed on it.
pub(crate) fn apply_egd_homs(
    instance: &mut Instance,
    egd: &Egd,
    homs: &[Hom],
    fire: impl Fn(&Instance, &Hom) -> bool,
    stats: &mut ChaseStats,
    changed: &mut bool,
    mut memo: Option<&mut dyn NullInvalidate>,
) -> Result<(), ChaseError> {
    let equal = (
        CompiledTerm::compile(&egd.equal.0),
        CompiledTerm::compile(&egd.equal.1),
    );
    for h in homs {
        if !fire(instance, h) {
            continue;
        }
        let resolve_term = |ct: &CompiledTerm, inst: &Instance| -> Elem {
            match ct {
                CompiledTerm::Const(e) => *e,
                CompiledTerm::Var(v) => inst.resolve(
                    h.map
                        .get(v)
                        .expect("EGD equality variable must occur in premise"),
                ),
            }
        };
        let a = resolve_term(&equal.0, instance);
        let b = resolve_term(&equal.1, instance);
        match instance.merge_retired(&a, &b) {
            Ok(Some(retired)) => {
                if let Some(m) = memo.as_deref_mut() {
                    m.invalidate_null(retired);
                }
                stats.egd_merges += 1;
                *changed = true;
            }
            Ok(None) => {}
            Err(e) => {
                // Name the EGD and its trigger facts: a bare constant
                // clash is undiagnosable in a large constraint set.
                let trigger: Vec<String> = h
                    .fact_ids
                    .iter()
                    .map(|fid| instance.format_fact(*fid))
                    .collect();
                return Err(ChaseError::Inconsistent(e.with_trigger(egd.name, trigger)));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_pivot::{Atom, Egd, Symbol, Tgd};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn c(v: i64) -> Elem {
        Elem::of(v)
    }

    #[test]
    fn transitivity_chase_computes_closure() {
        // Edge(a,b) ∧ Path(b,c) → Path(a,c); Edge(a,b) → Path(a,b)
        let edge_to_path = Tgd::new(
            "e2p",
            vec![Atom::new("Edge", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Path", vec![Term::var(0), Term::var(1)])],
        );
        let trans = Tgd::new(
            "trans",
            vec![
                Atom::new("Edge", vec![Term::var(0), Term::var(1)]),
                Atom::new("Path", vec![Term::var(1), Term::var(2)]),
            ],
            vec![Atom::new("Path", vec![Term::var(0), Term::var(2)])],
        );
        let mut i = Instance::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            i.insert(sym("Edge"), vec![c(a), c(b)]);
        }
        let stats = chase(
            &mut i,
            &[edge_to_path.into(), trans.into()],
            &ChaseConfig::default(),
        )
        .unwrap();
        assert!(stats.rounds >= 2);
        // Paths: 12,23,34,13,24,14 = 6
        assert_eq!(i.facts_of(sym("Path")).count(), 6);
    }

    #[test]
    fn tgd_with_existential_invents_null_once() {
        // Person(x) → HasParent(x, y)
        let t = Tgd::new(
            "parent",
            vec![Atom::new("Person", vec![Term::var(0)])],
            vec![Atom::new("HasParent", vec![Term::var(0), Term::var(1)])],
        );
        let mut i = Instance::new();
        i.insert(sym("Person"), vec![c(1)]);
        chase(&mut i, &[t.clone().into()], &ChaseConfig::default()).unwrap();
        assert_eq!(i.facts_of(sym("HasParent")).count(), 1);
        // Restricted chase: re-chasing adds nothing.
        let stats = chase(&mut i, &[t.into()], &ChaseConfig::default()).unwrap();
        assert_eq!(stats.tgd_fires, 0);
        assert_eq!(i.facts_of(sym("HasParent")).count(), 1);
    }

    #[test]
    fn egd_merges_nulls_into_constants() {
        // R(x, y1) ∧ R(x, y2) → y1 = y2  (functional)
        let e = Egd::new(
            "fd",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        );
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("R"), vec![c(1), n]);
        i.insert(sym("R"), vec![c(1), c(9)]);
        let stats = chase(&mut i, &[e.into()], &ChaseConfig::default()).unwrap();
        assert!(stats.egd_merges >= 1);
        assert_eq!(i.resolve(&n), c(9));
        assert_eq!(i.len(), 1); // the two facts collapsed
    }

    #[test]
    fn egd_constant_clash_errors() {
        let e = Egd::new(
            "fd",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        );
        let mut i = Instance::new();
        i.insert(sym("R"), vec![c(1), c(8)]);
        i.insert(sym("R"), vec![c(1), c(9)]);
        match chase(&mut i, &[e.into()], &ChaseConfig::default()) {
            Err(ChaseError::Inconsistent(inc)) => {
                // The error names the EGD that fired and its trigger facts.
                assert_eq!(inc.egd, Some(sym("fd")));
                assert_eq!(inc.trigger_facts.len(), 2);
                let msg = inc.to_string();
                assert!(msg.contains("[fd]"), "missing EGD name: {msg}");
                assert!(msg.contains("R(1, "), "missing trigger facts: {msg}");
            }
            other => panic!("expected inconsistency, got {other:?}"),
        }
    }

    #[test]
    fn non_terminating_set_hits_budget() {
        // R(x) → S(x, y); S(x, y) → R(y)  — classic infinite chase.
        let t1 = Tgd::new(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = Tgd::new(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        let mut i = Instance::new();
        i.insert(sym("R"), vec![c(1)]);
        let cfg = ChaseConfig {
            max_rounds: 50,
            max_facts: 100,
            ..ChaseConfig::default()
        };
        assert!(matches!(
            chase(&mut i, &[t1.into(), t2.into()], &cfg),
            Err(ChaseError::Budget { .. })
        ));
    }

    #[test]
    fn chase_is_idempotent_at_fixpoint() {
        let t = Tgd::new(
            "copy",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("B", vec![Term::var(0)])],
        );
        let mut i = Instance::new();
        i.insert(sym("A"), vec![c(1)]);
        chase(&mut i, &[t.clone().into()], &ChaseConfig::default()).unwrap();
        let before = i.len();
        let stats = chase(&mut i, &[t.into()], &ChaseConfig::default()).unwrap();
        assert_eq!(i.len(), before);
        assert_eq!(stats.tgd_fires, 0);
    }

    #[test]
    fn seminaive_matches_naive_on_deep_closure() {
        // A 12-node chain: transitive closure needs many delta rounds; the
        // result must be the full closure (n*(n+1)/2 paths over 12 edges).
        let edge_to_path = Tgd::new(
            "e2p",
            vec![Atom::new("Edge", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Path", vec![Term::var(0), Term::var(1)])],
        );
        let trans = Tgd::new(
            "trans",
            vec![
                Atom::new("Path", vec![Term::var(0), Term::var(1)]),
                Atom::new("Path", vec![Term::var(1), Term::var(2)]),
            ],
            vec![Atom::new("Path", vec![Term::var(0), Term::var(2)])],
        );
        let mut i = Instance::new();
        for k in 0..12 {
            i.insert(sym("Edge"), vec![c(k), c(k + 1)]);
        }
        chase(
            &mut i,
            &[edge_to_path.into(), trans.into()],
            &ChaseConfig::default(),
        )
        .unwrap();
        assert_eq!(i.facts_of(sym("Path")).count(), 12 * 13 / 2);
    }

    /// Closure constraints over a chain — many triggers per frontier
    /// image. The shared testkit workload, so the unit tests, the
    /// differential suite and the e8 bench exercise the same shape.
    fn closure_set() -> (Instance, Vec<Constraint>) {
        crate::testkit::phase_split_workload(1, 8)
    }

    use crate::testkit::dump_state as dump;

    #[test]
    fn memo_on_and_off_reach_identical_fixpoints() {
        let (seed, constraints) = closure_set();
        let mut on = seed.clone();
        let mut off = seed.clone();
        let s_on = chase(&mut on, &constraints, &ChaseConfig::default()).unwrap();
        let s_off = chase(
            &mut off,
            &constraints,
            &ChaseConfig {
                memo: false,
                ..ChaseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(s_on.core(), s_off.core());
        assert_eq!(dump(&on), dump(&off));
        // The closure workload re-derives pairs through every midpoint:
        // the memo must actually absorb probes.
        assert!(s_on.memo_hits > 0, "no memo hits on closure: {s_on:?}");
        assert_eq!(s_off.memo_hits, 0);
        assert_eq!(s_off.memo_misses, 0);
    }

    #[test]
    fn search_workers_do_not_change_the_chase() {
        let (seed, constraints) = closure_set();
        let mut reference = seed.clone();
        let ref_stats = chase(&mut reference, &constraints, &ChaseConfig::default()).unwrap();
        for workers in [2usize, 4, 8] {
            let mut work = seed.clone();
            let stats = chase(
                &mut work,
                &constraints,
                &ChaseConfig {
                    search_workers: workers,
                    // Force fan-out even on this small instance so the
                    // parallel branch is genuinely exercised.
                    search_min_facts: 0,
                    ..ChaseConfig::default()
                },
            )
            .unwrap();
            // Full stats equality — memo counters included — plus the
            // complete instance state.
            assert_eq!(stats, ref_stats, "stats skew at {workers} search workers");
            assert_eq!(dump(&work), dump(&reference));
        }
    }

    #[test]
    fn memo_invalidation_survives_egd_merges() {
        // t1 invents a null R(x, n); the FD then merges n with the constant
        // 9 — retiring a null that appears in memoized frontier keys of t2
        // (R's second column feeds t2's frontier). The memo must not
        // suppress the downstream fire: S(9) is derivable only after the
        // merge.
        let t1 = Tgd::new(
            "t1",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
        );
        let fd = Egd::new(
            "fd",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        );
        let t2 = Tgd::new(
            "t2",
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("S", vec![Term::var(1)])],
        );
        let constraints: Vec<Constraint> = vec![t1.into(), fd.into(), t2.into()];
        let run = |memo: bool| {
            let mut i = Instance::new();
            let n = i.fresh_null();
            i.insert(sym("A"), vec![c(1)]);
            i.insert(sym("R"), vec![c(1), n]);
            i.insert(sym("R"), vec![c(1), c(9)]);
            let cfg = ChaseConfig {
                memo,
                ..ChaseConfig::default()
            };
            let stats = chase(&mut i, &constraints, &cfg).unwrap();
            (dump(&i), stats)
        };
        let (on, s_on) = run(true);
        let (off, s_off) = run(false);
        assert_eq!(on, off);
        assert_eq!(s_on.core(), s_off.core());
        let (inst, _) = run(true);
        assert!(
            inst.iter().any(|(_, f, _, _)| f == "S(9)"),
            "memo suppressed the post-merge derivation: {inst:?}"
        );
    }

    #[test]
    fn inconsistent_error_is_identical_across_memo_and_workers() {
        let e = Egd::new(
            "fd",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        );
        let pad = Tgd::new(
            "pad",
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("T", vec![Term::var(0)])],
        );
        let constraints: Vec<Constraint> = vec![pad.into(), e.into()];
        let run = |memo: bool, workers: usize| {
            let mut i = Instance::new();
            i.insert(sym("R"), vec![c(1), c(8)]);
            i.insert(sym("R"), vec![c(1), c(9)]);
            let cfg = ChaseConfig {
                memo,
                search_workers: workers,
                search_min_facts: 0,
                ..ChaseConfig::default()
            };
            chase(&mut i, &constraints, &cfg).unwrap_err().to_string()
        };
        let reference = run(true, 1);
        assert!(reference.contains("[fd]"), "missing EGD name: {reference}");
        for (memo, workers) in [(false, 1), (true, 4), (false, 4), (true, 8)] {
            assert_eq!(
                run(memo, workers),
                reference,
                "error skew at memo={memo} workers={workers}"
            );
        }
    }

    #[test]
    fn seminaive_handles_egd_rewrites_across_rounds() {
        // TGD produces R-pairs; an FD then merges their second columns;
        // the merged fact must re-trigger the downstream TGD.
        let t1 = Tgd::new(
            "t1",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
        );
        let fd = Egd::new(
            "fd",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        );
        let t2 = Tgd::new(
            "t2",
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("S", vec![Term::var(1)])],
        );
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("A"), vec![c(1)]);
        i.insert(sym("R"), vec![c(1), n]);
        i.insert(sym("R"), vec![c(1), c(9)]);
        chase(
            &mut i,
            &[t1.into(), fd.into(), t2.into()],
            &ChaseConfig::default(),
        )
        .unwrap();
        // FD merges n with 9 (and the TGD's fresh null too); S(9) derived.
        assert_eq!(i.resolve(&n), c(9));
        assert_eq!(i.facts_of(sym("S")).count(), 1);
    }

    /// t: A(x) → ∃y B(x,y); e: B(x,y) ∧ A(x) → y = x — certifies
    /// `Stratified` ([t] before [e]), and the chase pins every invented
    /// null to its row key.
    fn stratified_set() -> Vec<Constraint> {
        let t = Tgd::new(
            "t",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("B", vec![Term::var(0), Term::var(1)])],
        );
        let e = Egd::new(
            "e",
            vec![
                Atom::new("B", vec![Term::var(0), Term::var(1)]),
                Atom::new("A", vec![Term::var(0)]),
            ],
            (Term::var(1), Term::var(0)),
        );
        vec![t.into(), e.into()]
    }

    #[test]
    fn stratified_chase_reaches_the_plain_fixpoint() {
        let constraints = stratified_set();
        let cert = crate::wa::certify(&constraints);
        assert!(matches!(cert, TerminationCertificate::Stratified { .. }));
        let seed = || {
            let mut i = Instance::new();
            i.insert(sym("A"), vec![c(1)]);
            i.insert(sym("A"), vec![c(2)]);
            i
        };
        let mut plain = seed();
        chase(&mut plain, &constraints, &ChaseConfig::default()).unwrap();
        let mut strat = seed();
        let stats =
            chase_stratified(&mut strat, &constraints, &ChaseConfig::default(), &cert).unwrap();
        assert!(stats.tgd_fires >= 2);
        assert!(stats.egd_merges >= 2);
        // Same facts; epochs are excluded because the stratified run's
        // round structure differs from the interleaved run by construction.
        let facts = |i: &Instance| {
            let mut v: Vec<(u32, String)> =
                dump(i).into_iter().map(|(id, f, _, _)| (id, f)).collect();
            v.sort();
            v
        };
        assert_eq!(facts(&plain), facts(&strat));
        // Both runs satisfy the EGD: every B row collapsed onto its key.
        for want in ["B(1, 1)", "B(2, 2)"] {
            assert!(
                facts(&strat).iter().any(|(_, f)| f == want),
                "missing {want}"
            );
        }
    }

    #[test]
    fn stratified_chase_budget_free_matches_per_stratum_guarded() {
        // The certificate lifts each stratum's budget; the guarded twin
        // chases the same strata under the default budgets. Identical
        // executor, identical round structure — the dumps must match
        // bit-for-bit, epochs included.
        let constraints = stratified_set();
        let cert = crate::wa::certify(&constraints);
        let TerminationCertificate::Stratified { strata } = &cert else {
            panic!("expected stratified certificate");
        };
        let seed = || {
            let mut i = Instance::new();
            i.insert(sym("A"), vec![c(7)]);
            i
        };
        let mut certified = seed();
        chase_stratified(&mut certified, &constraints, &ChaseConfig::default(), &cert).unwrap();
        let mut guarded = seed();
        for s in strata {
            let subset: Vec<Constraint> =
                s.members.iter().map(|&i| constraints[i].clone()).collect();
            chase(&mut guarded, &subset, &ChaseConfig::default()).unwrap();
        }
        assert_eq!(dump(&certified), dump(&guarded));
    }

    #[test]
    fn stratified_chase_falls_back_on_other_certificates() {
        // A weakly-acyclic certificate has no strata: the stratified entry
        // point must behave exactly like the certified plain chase.
        let t = Tgd::new(
            "copy",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("B", vec![Term::var(0)])],
        );
        let constraints: Vec<Constraint> = vec![t.into()];
        let cert = crate::wa::certify(&constraints);
        assert!(cert.guarantees_termination());
        let seed = || {
            let mut i = Instance::new();
            i.insert(sym("A"), vec![c(3)]);
            i
        };
        let mut via_stratified = seed();
        let s1 = chase_stratified(
            &mut via_stratified,
            &constraints,
            &ChaseConfig::default(),
            &cert,
        )
        .unwrap();
        let mut via_plain = seed();
        let s2 = chase(
            &mut via_plain,
            &constraints,
            &ChaseConfig::default().with_certificate(&cert),
        )
        .unwrap();
        assert_eq!(s1, s2);
        assert_eq!(dump(&via_stratified), dump(&via_plain));
    }
}
