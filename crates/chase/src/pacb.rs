//! PACB — the provenance-aware Chase & Backchase [Ileana et al., SIGMOD'14]
//! — computing minimal view-based rewritings of conjunctive queries under
//! constraints. This is the rewriting engine at the heart of ESTOCADA.
//!
//! Pipeline for a query `Q`, views `V1..Vk` and model constraints `Σ`:
//!
//! 1. **Chase** the canonical instance of `Q` with the *forward* view
//!    inclusions (`body(Vi) → Vi(x̄)`) and `Σ` — every view atom that shows
//!    up forms the **universal plan** `U`.
//! 2. **Backchase** `U` once: freeze it, give each view atom a provenance
//!    variable, and run the provenance-aware chase with the *backward*
//!    inclusions (`Vi(x̄) → body(Vi)`) and `Σ`. Every head-preserving image
//!    of `Q` in the result contributes the conjunction of its facts'
//!    provenance; the accumulated minimized DNF's clauses are exactly the
//!    **minimal sub-queries of `U` that derive `Q`** — the candidate
//!    rewritings. (The classical backchase instead chases *every* subset of
//!    `U` separately — see [`crate::naive`] for that baseline.)
//! 3. Each candidate is checked for safety, for **feasibility** under the
//!    access patterns of binding-restricted fragments, and (because our EGD
//!    provenance treatment is conservative, see `pchase`) re-verified by a
//!    chase-based containment test before being reported.
//!
//! # Parallel candidate verification and the deterministic fan-in contract
//!
//! Step 3 dominates rewriting time on multi-candidate problems, and every
//! candidate's check is independent of every other's: it reads only the
//! candidate, the problem, and the constraint set, and chases a **fresh**
//! canonical instance. [`pacb_rewrite`] therefore fans the checks out over
//! a scoped worker pool ([`estocada_parexec::scoped_map_init`]) of
//! [`RewriteConfig::parallelism`] threads, each holding a private
//! [`HomArena`] scratch arena (no shared mutable state, no locks on the
//! search path).
//!
//! **Fan-in contract:** `pacb_rewrite` at `parallelism = N` returns a
//! [`RewriteOutcome`] *identical* to `parallelism = 1` — same rewritings in
//! the same order with the same generated names, same `complete` flag, same
//! [`RewriteStats`] counters. This holds by construction:
//!
//! - candidates are enumerated from the minimized provenance DNF **before**
//!   fan-out, in clause order, on the coordinator (workers never touch the
//!   global symbol interner or any other process-wide state);
//! - each worker computes a pure `(accept?, `[`CandidateStats`]`)` verdict
//!   for its candidates; per-candidate counters live in the mergeable
//!   `CandidateStats`, not in shared counters, so they cannot race;
//! - the coordinator merges verdicts **in candidate order**: sequential
//!   accepted-rewriting naming (`Q_rw0, Q_rw1, …`), canonical-form
//!   deduplication and stats absorption all happen at fan-in, exactly as
//!   the serial loop interleaved them.
//!
//! Early exits keep the contract: truncation (`max_images`, the provenance
//! clause cap) happens before fan-out; a chase-budget failure inside one
//! worker's containment check rejects that candidate (as in the serial
//! run) without touching its siblings; a worker panic poisons the pool,
//! cancels the outstanding candidates and re-raises on the caller — the
//! scoped pool cannot deadlock or leak threads. Problems with fewer than
//! `PARALLEL_CANDIDATE_THRESHOLD` candidates (or with verification off)
//! skip the pool entirely: spawning threads there costs more than the
//! checks themselves, and the outcome is the same either way.
//!
//! Orthogonally, the *inner* chase loops (the forward chase and the
//! provenance backchase, both on the coordinator) parallelize their
//! per-round trigger-search phase through
//! [`ChaseConfig::search_workers`] / [`ProvChaseConfig::search_workers`]
//! (see the phase-split contract in [`mod@crate::chase`]); inside the
//! candidate-verification workers the search phase is forced serial —
//! the candidate fan-out already owns the cores. Neither knob affects the
//! outcome.
//!
//! # Cacheability
//!
//! The fan-in contract makes a [`RewriteOutcome`] a *pure, deterministic*
//! function of `(RewriteProblem, budgets)` — worker counts never leak into
//! it. That is what lets callers share one outcome across threads and
//! reuse it across queries: the mediator's rewrite-plan cache stores
//! outcomes as `Arc<RewriteOutcome>` keyed by `(canonical query, catalog
//! epoch)` and hands the same plan to every client that repeats a query
//! shape, with no risk that a cached plan differs from what a fresh
//! rewrite would produce. Two threads racing to fill a cold cache slot
//! compute bit-identical outcomes, so first-insert-wins is sound.

use crate::chase::{chase_with, ChaseConfig, ChaseError, ChaseStats};
use crate::containment::{canonical_instance, contained_in_with};
use crate::hom::{find_homs_in, HomArena, HomConfig};
use crate::instance::{Elem, Instance};
use crate::pchase::{prov_chase_with, ProvChaseConfig, ProvChaseStats};
use crate::prov::Dnf;
use estocada_parexec::scoped_map_init;
use estocada_pivot::{AccessMap, Atom, Constraint, Cq, Symbol, Term, Var, ViewDef};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A rewriting problem: query, views, and ambient constraints.
#[derive(Debug, Clone)]
pub struct RewriteProblem {
    /// The query to rewrite (over the source schema).
    pub query: Cq,
    /// Materialized-view definitions (fragments).
    pub views: Vec<ViewDef>,
    /// Constraints over the source schema (model axioms, keys).
    pub source_constraints: Vec<Constraint>,
    /// Constraints over the view (fragment) schema, if any.
    pub target_constraints: Vec<Constraint>,
    /// Access patterns of the view relations (key-value fragments etc.).
    pub access: AccessMap,
}

impl RewriteProblem {
    /// A problem with no ambient constraints and free access.
    pub fn new(query: Cq, views: Vec<ViewDef>) -> RewriteProblem {
        RewriteProblem {
            query,
            views,
            source_constraints: Vec::new(),
            target_constraints: Vec::new(),
            access: AccessMap::new(),
        }
    }

    /// The full constraint set (both view directions + source + target).
    pub fn all_constraints(&self) -> Vec<Constraint> {
        let mut out = Vec::new();
        for v in &self.views {
            out.extend(v.constraints());
        }
        out.extend(self.source_constraints.iter().cloned());
        out.extend(self.target_constraints.iter().cloned());
        out
    }

    fn view_names(&self) -> HashSet<Symbol> {
        self.views.iter().map(|v| v.name()).collect()
    }
}

/// Knobs for the rewriting algorithms.
#[derive(Debug, Clone, Copy)]
pub struct RewriteConfig {
    /// Budget of the (plain) chase phases.
    pub chase: ChaseConfig,
    /// Budget of the provenance chase (backchase).
    pub prov: ProvChaseConfig,
    /// Cap on the number of query images collected in the backchase.
    pub max_images: usize,
    /// Re-verify every candidate by a chase-based containment check.
    pub verify: bool,
    /// Worker threads for candidate verification (≤ 1 = serial). Any value
    /// produces the identical [`RewriteOutcome`] — see the module docs'
    /// fan-in contract.
    pub parallelism: usize,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            chase: ChaseConfig::default(),
            prov: ProvChaseConfig::default(),
            max_images: 10_000,
            verify: true,
            parallelism: 1,
        }
    }
}

impl RewriteConfig {
    /// This config with `parallelism` workers.
    pub fn with_parallelism(self, parallelism: usize) -> RewriteConfig {
        RewriteConfig {
            parallelism,
            ..self
        }
    }

    /// This config with `workers` trigger-search workers in both inner
    /// chase loops (the forward chase and the provenance backchase — see
    /// the phase-split contract in [`mod@crate::chase`]). Any value yields the
    /// identical [`RewriteOutcome`].
    pub fn with_chase_parallelism(self, workers: usize) -> RewriteConfig {
        RewriteConfig {
            chase: ChaseConfig {
                search_workers: workers,
                ..self.chase
            },
            prov: ProvChaseConfig {
                search_workers: workers,
                ..self.prov
            },
            ..self
        }
    }
}

/// Minimum verified-candidate count before the acceptance checks fan out
/// to worker threads: below it the scoped pool's spawn/join overhead
/// outweighs the verification work, so the checks run inline on the
/// coordinator (identical outcome — few-candidate hot-path rewrites never
/// pay for threads they can't use).
const PARALLEL_CANDIDATE_THRESHOLD: usize = 8;

/// Per-candidate acceptance counters — the mergeable fragment of
/// [`RewriteStats`].
///
/// Each verification worker fills a private `CandidateStats` per candidate;
/// the coordinator absorbs them in candidate order
/// ([`RewriteStats::absorb`]), so the counters are exact (never racy) no
/// matter how many workers ran, and identical to the serial run's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateStats {
    /// Candidate rejected as infeasible under access patterns.
    pub infeasible: usize,
    /// Candidate rejected (unsafe head, failed or errored verification).
    pub rejected: usize,
}

/// Counters describing one rewriting run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Forward-chase counters.
    pub forward: ChaseStats,
    /// Backchase counters.
    pub backward: ProvChaseStats,
    /// Universal-plan size (number of view atoms).
    pub universal_plan_atoms: usize,
    /// Query images found in the backchased instance.
    pub images: usize,
    /// Candidate subqueries extracted from provenance (or enumerated, for
    /// the naive algorithm).
    pub candidates: usize,
    /// Candidates that passed all checks.
    pub accepted: usize,
    /// Candidates rejected as infeasible under access patterns.
    pub infeasible: usize,
    /// Candidates rejected by verification.
    pub rejected: usize,
}

impl RewriteStats {
    /// Fold one candidate's counters into the run totals.
    pub fn absorb(&mut self, c: CandidateStats) {
        self.infeasible += c.infeasible;
        self.rejected += c.rejected;
    }
}

/// Result of a rewriting run.
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteOutcome {
    /// Minimal feasible rewritings, ascending by body size.
    pub rewritings: Vec<Cq>,
    /// The universal plan (empty body if no view atom was derivable).
    pub universal_plan: Cq,
    /// `false` when provenance truncation or image caps may have hidden
    /// additional rewritings.
    pub complete: bool,
    /// Run counters.
    pub stats: RewriteStats,
}

/// Rewriting failure.
#[derive(Debug, Clone)]
pub enum RewriteError {
    /// A chase phase failed (budget or inconsistency).
    Chase(ChaseError),
    /// The query is not a safe CQ.
    UnsafeQuery,
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Chase(e) => write!(f, "rewriting chase failed: {e}"),
            RewriteError::UnsafeQuery => write!(f, "query head uses variables absent from body"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<ChaseError> for RewriteError {
    fn from(e: ChaseError) -> Self {
        RewriteError::Chase(e)
    }
}

/// The universal plan: view atoms derivable from the query under the
/// forward constraints, plus the (possibly merged) head.
pub(crate) struct UniversalPlan {
    /// Head terms after forward-chase merges.
    pub head: Vec<Term>,
    /// View atoms (sorted, deduplicated).
    pub atoms: Vec<Atom>,
    /// Forward-chase stats.
    pub stats: ChaseStats,
}

/// Compute the universal plan of `problem.query`.
pub(crate) fn universal_plan(
    arena: &mut HomArena,
    problem: &RewriteProblem,
    cfg: &ChaseConfig,
) -> Result<UniversalPlan, RewriteError> {
    if !problem.query.is_safe() {
        return Err(RewriteError::UnsafeQuery);
    }
    let mut inst = canonical_instance(&problem.query);
    let mut constraints: Vec<Constraint> = problem
        .views
        .iter()
        .map(|v| Constraint::Tgd(v.forward_tgd()))
        .collect();
    constraints.extend(problem.source_constraints.iter().cloned());
    let stats = chase_with(arena, &mut inst, &constraints, cfg)?;

    let names = problem.view_names();
    let mut atoms: Vec<Atom> = Vec::new();
    for id in inst.fact_ids() {
        let f = inst.fact(id);
        if !names.contains(&f.pred) {
            continue;
        }
        let args: Vec<Term> = f.args.iter().map(elem_to_term).collect();
        atoms.push(Atom::new(f.pred, args));
    }
    atoms.sort();
    atoms.dedup();

    let head: Vec<Term> = problem
        .query
        .head
        .iter()
        .map(|t| match t {
            Term::Var(v) => elem_to_term(&inst.resolve(&Elem::Null(v.0))),
            Term::Const(c) => Term::Const(c.clone()),
        })
        .collect();
    Ok(UniversalPlan { head, atoms, stats })
}

fn elem_to_term(e: &Elem) -> Term {
    match e.as_value() {
        Some(v) => Term::Const(v),
        None => Term::Var(Var(e.as_null().expect("null element"))),
    }
}

fn term_to_elem(t: &Term) -> Elem {
    match t {
        Term::Var(v) => Elem::Null(v.0),
        Term::Const(c) => Elem::constant(c),
    }
}

/// Build a candidate rewriting from a subset of universal-plan atoms.
pub(crate) fn build_candidate(
    query: &Cq,
    plan_head: &[Term],
    atoms: &[Atom],
    selection: &BTreeSet<usize>,
    index: usize,
) -> Cq {
    let body: Vec<Atom> = selection.iter().map(|i| atoms[*i].clone()).collect();
    Cq::new(
        format!("{}_rw{}", query.name, index).as_str(),
        plan_head.to_vec(),
        body,
    )
}

/// Shared acceptance filter: safety, feasibility, optional verification.
///
/// Pure per-candidate check: reads only its arguments, writes only
/// `stats` (the candidate's private counters) and `arena` (the calling
/// worker's private scratch) — the reason candidates can verify in
/// parallel without skew.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accept_candidate(
    arena: &mut HomArena,
    candidate: &Cq,
    problem: &RewriteProblem,
    all_constraints: &[Constraint],
    cfg: &RewriteConfig,
    stats: &mut CandidateStats,
) -> bool {
    if !candidate.is_safe() {
        stats.rejected += 1;
        return false;
    }
    if !problem
        .access
        .is_feasible(&candidate.body, &BTreeSet::new())
    {
        stats.infeasible += 1;
        return false;
    }
    if cfg.verify {
        // Q ⊆ R holds for every subquery of the universal plan (chase
        // soundness); only R ⊆ Q needs checking.
        match contained_in_with(
            arena,
            candidate,
            &problem.query,
            all_constraints,
            &cfg.chase,
        ) {
            Ok(true) => {}
            Ok(false) => {
                stats.rejected += 1;
                return false;
            }
            Err(_) => {
                stats.rejected += 1;
                return false;
            }
        }
    }
    true
}

/// Rewrite `problem.query` over the views with the provenance-aware Chase &
/// Backchase. Returns all minimal feasible rewritings.
pub fn pacb_rewrite(
    problem: &RewriteProblem,
    cfg: &RewriteConfig,
) -> Result<RewriteOutcome, RewriteError> {
    // Coordinator-side scratch for the forward chase, the provenance chase
    // and the image search (workers get their own arenas at fan-out).
    let mut arena = HomArena::new();
    let up = universal_plan(&mut arena, problem, &cfg.chase)?;
    let mut stats = RewriteStats {
        forward: up.stats,
        universal_plan_atoms: up.atoms.len(),
        ..RewriteStats::default()
    };
    let universal_plan_cq = Cq::new(
        format!("{}_up", problem.query.name).as_str(),
        up.head.clone(),
        up.atoms.clone(),
    );
    if up.atoms.is_empty() {
        return Ok(RewriteOutcome {
            rewritings: Vec::new(),
            universal_plan: universal_plan_cq,
            complete: true,
            stats,
        });
    }

    // --- Backchase: freeze U, annotate, provenance-chase. ---
    let mut inst = Instance::new();
    let max_null = up
        .atoms
        .iter()
        .flat_map(|a| a.vars())
        .chain(up.head.iter().filter_map(Term::as_var))
        .map(|v| v.0 + 1)
        .max()
        .unwrap_or(0);
    inst.reserve_nulls(max_null);
    for (i, atom) in up.atoms.iter().enumerate() {
        let args: Vec<Elem> = atom.args.iter().map(term_to_elem).collect();
        inst.insert_with_prov(atom.pred, args, Dnf::var(i as u32));
    }
    let mut back_constraints: Vec<Constraint> = problem
        .views
        .iter()
        .map(|v| Constraint::Tgd(v.backward_tgd()))
        .collect();
    back_constraints.extend(problem.source_constraints.iter().cloned());
    back_constraints.extend(problem.target_constraints.iter().cloned());
    let pstats = prov_chase_with(&mut arena, &mut inst, &back_constraints, &cfg.prov)?;
    stats.backward = pstats;
    let mut complete = !pstats.truncated;

    // --- Collect head-preserving images of Q and their provenance. ---
    let targets: Vec<Elem> = up
        .head
        .iter()
        .map(|t| inst.resolve(&term_to_elem(t)))
        .collect();
    let fixed = match head_fixed_map(&problem.query, &targets) {
        Some(f) => f,
        None => {
            return Ok(RewriteOutcome {
                rewritings: Vec::new(),
                universal_plan: universal_plan_cq,
                complete,
                stats,
            })
        }
    };
    let homs = find_homs_in(
        &mut arena,
        &inst,
        &problem.query.body,
        &fixed,
        HomConfig {
            limit: cfg.max_images,
        },
    );
    stats.images = homs.len();
    if homs.len() >= cfg.max_images {
        complete = false;
    }

    let mut total = Dnf::fals();
    for h in &homs {
        let mut conj = Dnf::tru();
        let mut seen = HashSet::new();
        for fid in &h.fact_ids {
            if !seen.insert(*fid) {
                continue;
            }
            let (next, trunc) = conj.and(&inst.fact(*fid).prov, cfg.prov.clause_cap);
            conj = next;
            if trunc {
                complete = false;
            }
        }
        total.or_assign(&conj);
        if total.truncate(cfg.prov.clause_cap) {
            complete = false;
        }
    }

    // --- Clauses → candidate rewritings. ---
    //
    // Fan-out: candidates are built on the coordinator in clause order
    // (with provisional names — workers must not touch the interner), the
    // independent acceptance checks run on the worker pool, and the fan-in
    // below merges verdicts in candidate order so naming, dedup and stats
    // replay the serial loop exactly (see the module-level contract).
    let all_constraints = problem.all_constraints();
    let mut candidates: Vec<Cq> = Vec::new();
    for clause in total.clauses() {
        let selection: BTreeSet<usize> = clause.iter().map(|p| *p as usize).collect();
        candidates.push(build_candidate(
            &problem.query,
            &up.head,
            &up.atoms,
            &selection,
            candidates.len(),
        ));
    }
    stats.candidates = candidates.len();
    // Below the threshold (or with verification off, where a check is two
    // cheap predicate walks) the per-call thread spawn/join costs more than
    // it saves — run inline on the coordinator's already-warmed arena. The
    // outcome is identical either way.
    let workers = if cfg.verify && candidates.len() >= PARALLEL_CANDIDATE_THRESHOLD {
        cfg.parallelism
    } else {
        1
    };
    let check = |worker_arena: &mut HomArena, candidate: &Cq, check_cfg: &RewriteConfig| {
        let mut cs = CandidateStats::default();
        let ok = accept_candidate(
            worker_arena,
            candidate,
            problem,
            &all_constraints,
            check_cfg,
            &mut cs,
        );
        (cs, ok)
    };
    let verdicts: Vec<(CandidateStats, bool)> = if workers <= 1 {
        candidates
            .iter()
            .map(|c| check(&mut arena, c, cfg))
            .collect()
    } else {
        // Inside the candidate fan-out the verification chases search
        // serially: the candidate pool already owns the cores, and nesting
        // a per-round trigger-search pool in every worker would multiply
        // thread counts without adding parallel work. The outcome is
        // identical either way (search workers never affect results).
        let worker_cfg = RewriteConfig {
            chase: ChaseConfig {
                search_workers: 1,
                ..cfg.chase
            },
            ..*cfg
        };
        scoped_map_init(workers, &candidates, HomArena::new, |worker_arena, _, c| {
            check(worker_arena, c, &worker_cfg)
        })
    };

    // Deterministic fan-in, candidate order.
    let mut rewritings: Vec<Cq> = Vec::new();
    let mut seen_canonical: HashSet<String> = HashSet::new();
    for (mut candidate, (cs, ok)) in candidates.into_iter().zip(verdicts) {
        stats.absorb(cs);
        if !ok {
            continue;
        }
        // Accepted candidates are numbered by acceptance order (rejected
        // ones consume no index), matching the serial loop's naming.
        candidate.name = Symbol::intern(&format!("{}_rw{}", problem.query.name, rewritings.len()));
        // Dedup on the name-independent canonical form: the name is unique
        // per candidate by construction, so a key that included it (as the
        // canonicalized Display does) could never collide.
        let canonical = candidate.canonicalize();
        let key = format!("{:?}|{:?}", canonical.head, canonical.body);
        if seen_canonical.insert(key) {
            stats.accepted += 1;
            rewritings.push(candidate);
        }
    }
    rewritings.sort_by_key(|r| r.body.len());

    Ok(RewriteOutcome {
        rewritings,
        universal_plan: universal_plan_cq,
        complete,
        stats,
    })
}

/// Build the fixed-variable map forcing `q`'s head onto `targets`; `None`
/// when a head constant disagrees or a repeated head variable is forced onto
/// two different elements.
pub(crate) fn head_fixed_map(q: &Cq, targets: &[Elem]) -> Option<HashMap<Var, Elem>> {
    let mut fixed: HashMap<Var, Elem> = HashMap::new();
    for (t, target) in q.head.iter().zip(targets) {
        match t {
            Term::Const(c) => {
                if Elem::constant(c) != *target {
                    return None;
                }
            }
            Term::Var(v) => match fixed.get(v) {
                Some(prev) if prev != target => return None,
                Some(_) => {}
                None => {
                    fixed.insert(*v, *target);
                }
            },
        }
    }
    Some(fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_pivot::CqBuilder;

    fn rewrite(problem: &RewriteProblem) -> RewriteOutcome {
        pacb_rewrite(problem, &RewriteConfig::default()).unwrap()
    }

    #[test]
    fn single_view_covers_query() {
        // V(x,z) :- R(x,y), S(y,z);  Q(x,z) :- R(x,y), S(y,z)  ⇒  Q(x,z) :- V(x,z)
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "z"])
                .atom("R", |a| a.v("x").v("y"))
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "z"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("S", |a| a.v("y").v("z"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v]));
        assert_eq!(out.rewritings.len(), 1);
        assert_eq!(out.rewritings[0].body.len(), 1);
        assert_eq!(out.rewritings[0].body[0].pred, Symbol::intern("V"));
        assert!(out.complete);
    }

    #[test]
    fn join_of_two_views() {
        // V1(x,y) :- R(x,y); V2(y,z) :- S(y,z); Q = R ⋈ S ⇒ V1 ⋈ V2.
        let v1 = ViewDef::new(
            CqBuilder::new("V1")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let v2 = ViewDef::new(
            CqBuilder::new("V2")
                .head_vars(["y", "z"])
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "z"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("S", |a| a.v("y").v("z"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v1, v2]));
        assert_eq!(out.rewritings.len(), 1);
        assert_eq!(out.rewritings[0].body.len(), 2);
    }

    #[test]
    fn no_rewriting_when_views_miss_needed_column() {
        // V(x) :- R(x,y) projects y away; Q(x,y) :- R(x,y) unanswerable.
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v]));
        assert!(out.rewritings.is_empty());
    }

    #[test]
    fn redundant_view_not_included_in_minimal_rewriting() {
        // V1 answers Q alone; V2 is redundant. Minimal rewriting = {V1}.
        let v1 = ViewDef::new(
            CqBuilder::new("V1")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let v2 = ViewDef::new(
            CqBuilder::new("V2")
                .head_vars(["x"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v1, v2]));
        assert_eq!(out.rewritings.len(), 1);
        assert_eq!(out.rewritings[0].body.len(), 1);
        assert_eq!(out.rewritings[0].body[0].pred, Symbol::intern("V1"));
    }

    #[test]
    fn multiple_alternative_rewritings_found() {
        // Two copies of the same view content: both are minimal rewritings.
        let v1 = ViewDef::new(
            CqBuilder::new("Va")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let v2 = ViewDef::new(
            CqBuilder::new("Vb")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v1, v2]));
        assert_eq!(out.rewritings.len(), 2);
    }

    #[test]
    fn access_pattern_filters_infeasible_rewriting() {
        use estocada_pivot::AccessPattern;
        // KV(k, v) with pattern io; Q(k,v) :- Base(k,v). Only view = KV over
        // Base. Rewriting KV(k,v) with free k is infeasible.
        let v = ViewDef::new(
            CqBuilder::new("KV")
                .head_vars(["k", "v"])
                .atom("Base", |a| a.v("k").v("v"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["k", "v"])
            .atom("Base", |a| a.v("k").v("v"))
            .build();
        let mut problem = RewriteProblem::new(q, vec![v]);
        problem.access.set("KV", AccessPattern::parse("io"));
        let out = rewrite(&problem);
        assert!(out.rewritings.is_empty());
        assert_eq!(out.stats.infeasible, 1);

        // With the key bound by a constant in the query, it becomes feasible.
        let q2 = CqBuilder::new("Q2")
            .head_vars(["v"])
            .atom("Base", |a| a.c(7i64).v("v"))
            .build();
        let mut problem2 = RewriteProblem::new(
            q2,
            vec![ViewDef::new(
                CqBuilder::new("KV")
                    .head_vars(["k", "v"])
                    .atom("Base", |a| a.v("k").v("v"))
                    .build(),
            )],
        );
        problem2.access.set("KV", AccessPattern::parse("io"));
        let out2 = rewrite(&problem2);
        assert_eq!(out2.rewritings.len(), 1);
    }

    #[test]
    fn constraint_based_rewriting_through_model_axioms() {
        // Source axiom: Child ⊆ Desc. View stores Desc pairs; query asks
        // Child... unanswerable (Desc ⊄ Child). Conversely a Desc query is
        // answerable from a Child-derived view only via the axiom.
        let axiom: Constraint = estocada_pivot::Tgd::new(
            "c2d",
            vec![Atom::new("Child", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Desc", vec![Term::var(0), Term::var(1)])],
        )
        .into();
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "y"])
                .atom("Child", |a| a.v("x").v("y"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("Desc", |a| a.v("x").v("y"))
            .build();
        let mut p = RewriteProblem::new(q, vec![v]);
        p.source_constraints.push(axiom);
        let out = rewrite(&p);
        // V(x,y) ⊆ Q (every child pair is a desc pair) but V is NOT
        // equivalent to Q in general — must be rejected by verification.
        assert!(out.rewritings.is_empty());
        assert!(out.stats.rejected >= 1 || out.stats.candidates == 0);
    }

    // 2^k minimal rewritings — the candidate fan-out has real width.
    use crate::testkit::wide_chain_problem as multi_candidate_problem;

    #[test]
    fn parallel_outcome_identical_to_serial() {
        let problem = multi_candidate_problem(4); // 16 candidates
        let serial = pacb_rewrite(&problem, &RewriteConfig::default()).unwrap();
        assert_eq!(serial.rewritings.len(), 16);
        for par in [2, 3, 4, 8, 64] {
            let parallel =
                pacb_rewrite(&problem, &RewriteConfig::default().with_parallelism(par)).unwrap();
            assert_eq!(serial, parallel, "fan-in skew at parallelism {par}");
        }
    }

    #[test]
    fn parallel_stats_match_serial_exactly() {
        // Mix accepted, infeasible and rejected candidates so every
        // CandidateStats counter is exercised.
        use estocada_pivot::AccessPattern;
        let mut problem = multi_candidate_problem(3);
        problem.access.set("V0", AccessPattern::parse("io")); // V0-candidates infeasible
        let serial = pacb_rewrite(&problem, &RewriteConfig::default()).unwrap();
        let parallel =
            pacb_rewrite(&problem, &RewriteConfig::default().with_parallelism(4)).unwrap();
        assert_eq!(serial.stats, parallel.stats);
        assert!(serial.stats.infeasible > 0, "test must exercise infeasible");
        assert!(serial.stats.accepted > 0);
    }

    #[test]
    fn parallel_rewriting_names_match_serial() {
        let problem = multi_candidate_problem(2);
        let serial = pacb_rewrite(&problem, &RewriteConfig::default()).unwrap();
        let parallel =
            pacb_rewrite(&problem, &RewriteConfig::default().with_parallelism(4)).unwrap();
        let names = |o: &RewriteOutcome| -> Vec<String> {
            o.rewritings.iter().map(|r| r.name.to_string()).collect()
        };
        assert_eq!(names(&serial), names(&parallel));
        // Accepted candidates are numbered densely from 0.
        assert_eq!(names(&serial), vec!["Q_rw0", "Q_rw1", "Q_rw2", "Q_rw3"]);
    }

    #[test]
    fn alpha_equivalent_duplicate_candidates_are_deduplicated() {
        // Q(1) :- R(x), R(y): the universal plan holds one view atom per
        // canonical null (V(?0) and V(?1)); their singleton candidates are
        // alpha-equivalent rewritings and must collapse to one at fan-in —
        // identically at every worker count.
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["a"])
                .atom("R", |x| x.v("a"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_const(1i64)
            .atom("R", |a| a.v("x"))
            .atom("R", |a| a.v("y"))
            .build();
        let problem = RewriteProblem::new(q, vec![v]);
        let serial = pacb_rewrite(&problem, &RewriteConfig::default()).unwrap();
        assert_eq!(
            serial.rewritings.len(),
            1,
            "alpha-equivalent candidates must dedup: {:?}",
            serial.rewritings
        );
        assert_eq!(serial.stats.accepted, 1);
        let parallel =
            pacb_rewrite(&problem, &RewriteConfig::default().with_parallelism(4)).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_parallelism_behaves_like_serial() {
        let problem = multi_candidate_problem(2);
        let a = pacb_rewrite(&problem, &RewriteConfig::default()).unwrap();
        let b = pacb_rewrite(&problem, &RewriteConfig::default().with_parallelism(0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn query_with_constant_rewrites_to_view_with_constant() {
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["y"])
            .atom("R", |a| a.c("alice").v("y"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v]));
        assert_eq!(out.rewritings.len(), 1);
        let rw = &out.rewritings[0];
        assert_eq!(rw.body.len(), 1);
        assert!(rw.body[0]
            .args
            .iter()
            .any(|t| t.as_const().map(|c| c.as_str() == Some("alice")) == Some(true)));
    }
}
