//! PACB — the provenance-aware Chase & Backchase [Ileana et al., SIGMOD'14]
//! — computing minimal view-based rewritings of conjunctive queries under
//! constraints. This is the rewriting engine at the heart of ESTOCADA.
//!
//! Pipeline for a query `Q`, views `V1..Vk` and model constraints `Σ`:
//!
//! 1. **Chase** the canonical instance of `Q` with the *forward* view
//!    inclusions (`body(Vi) → Vi(x̄)`) and `Σ` — every view atom that shows
//!    up forms the **universal plan** `U`.
//! 2. **Backchase** `U` once: freeze it, give each view atom a provenance
//!    variable, and run the provenance-aware chase with the *backward*
//!    inclusions (`Vi(x̄) → body(Vi)`) and `Σ`. Every head-preserving image
//!    of `Q` in the result contributes the conjunction of its facts'
//!    provenance; the accumulated minimized DNF's clauses are exactly the
//!    **minimal sub-queries of `U` that derive `Q`** — the candidate
//!    rewritings. (The classical backchase instead chases *every* subset of
//!    `U` separately — see [`crate::naive`] for that baseline.)
//! 3. Each candidate is checked for safety, for **feasibility** under the
//!    access patterns of binding-restricted fragments, and (because our EGD
//!    provenance treatment is conservative, see `pchase`) re-verified by a
//!    chase-based containment test before being reported.

use crate::chase::{chase, ChaseConfig, ChaseError, ChaseStats};
use crate::containment::{canonical_instance, contained_in};
use crate::hom::{find_homs, HomConfig};
use crate::instance::{Elem, Instance};
use crate::pchase::{prov_chase, ProvChaseConfig, ProvChaseStats};
use crate::prov::Dnf;
use estocada_pivot::{AccessMap, Atom, Constraint, Cq, Symbol, Term, Var, ViewDef};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A rewriting problem: query, views, and ambient constraints.
#[derive(Debug, Clone)]
pub struct RewriteProblem {
    /// The query to rewrite (over the source schema).
    pub query: Cq,
    /// Materialized-view definitions (fragments).
    pub views: Vec<ViewDef>,
    /// Constraints over the source schema (model axioms, keys).
    pub source_constraints: Vec<Constraint>,
    /// Constraints over the view (fragment) schema, if any.
    pub target_constraints: Vec<Constraint>,
    /// Access patterns of the view relations (key-value fragments etc.).
    pub access: AccessMap,
}

impl RewriteProblem {
    /// A problem with no ambient constraints and free access.
    pub fn new(query: Cq, views: Vec<ViewDef>) -> RewriteProblem {
        RewriteProblem {
            query,
            views,
            source_constraints: Vec::new(),
            target_constraints: Vec::new(),
            access: AccessMap::new(),
        }
    }

    /// The full constraint set (both view directions + source + target).
    pub fn all_constraints(&self) -> Vec<Constraint> {
        let mut out = Vec::new();
        for v in &self.views {
            out.extend(v.constraints());
        }
        out.extend(self.source_constraints.iter().cloned());
        out.extend(self.target_constraints.iter().cloned());
        out
    }

    fn view_names(&self) -> HashSet<Symbol> {
        self.views.iter().map(|v| v.name()).collect()
    }
}

/// Knobs for the rewriting algorithms.
#[derive(Debug, Clone, Copy)]
pub struct RewriteConfig {
    /// Budget of the (plain) chase phases.
    pub chase: ChaseConfig,
    /// Budget of the provenance chase (backchase).
    pub prov: ProvChaseConfig,
    /// Cap on the number of query images collected in the backchase.
    pub max_images: usize,
    /// Re-verify every candidate by a chase-based containment check.
    pub verify: bool,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            chase: ChaseConfig::default(),
            prov: ProvChaseConfig::default(),
            max_images: 10_000,
            verify: true,
        }
    }
}

/// Counters describing one rewriting run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RewriteStats {
    /// Forward-chase counters.
    pub forward: ChaseStats,
    /// Backchase counters.
    pub backward: ProvChaseStats,
    /// Universal-plan size (number of view atoms).
    pub universal_plan_atoms: usize,
    /// Query images found in the backchased instance.
    pub images: usize,
    /// Candidate subqueries extracted from provenance (or enumerated, for
    /// the naive algorithm).
    pub candidates: usize,
    /// Candidates that passed all checks.
    pub accepted: usize,
    /// Candidates rejected as infeasible under access patterns.
    pub infeasible: usize,
    /// Candidates rejected by verification.
    pub rejected: usize,
}

/// Result of a rewriting run.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// Minimal feasible rewritings, ascending by body size.
    pub rewritings: Vec<Cq>,
    /// The universal plan (empty body if no view atom was derivable).
    pub universal_plan: Cq,
    /// `false` when provenance truncation or image caps may have hidden
    /// additional rewritings.
    pub complete: bool,
    /// Run counters.
    pub stats: RewriteStats,
}

/// Rewriting failure.
#[derive(Debug, Clone)]
pub enum RewriteError {
    /// A chase phase failed (budget or inconsistency).
    Chase(ChaseError),
    /// The query is not a safe CQ.
    UnsafeQuery,
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Chase(e) => write!(f, "rewriting chase failed: {e}"),
            RewriteError::UnsafeQuery => write!(f, "query head uses variables absent from body"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<ChaseError> for RewriteError {
    fn from(e: ChaseError) -> Self {
        RewriteError::Chase(e)
    }
}

/// The universal plan: view atoms derivable from the query under the
/// forward constraints, plus the (possibly merged) head.
pub(crate) struct UniversalPlan {
    /// Head terms after forward-chase merges.
    pub head: Vec<Term>,
    /// View atoms (sorted, deduplicated).
    pub atoms: Vec<Atom>,
    /// Forward-chase stats.
    pub stats: ChaseStats,
}

/// Compute the universal plan of `problem.query`.
pub(crate) fn universal_plan(
    problem: &RewriteProblem,
    cfg: &ChaseConfig,
) -> Result<UniversalPlan, RewriteError> {
    if !problem.query.is_safe() {
        return Err(RewriteError::UnsafeQuery);
    }
    let mut inst = canonical_instance(&problem.query);
    let mut constraints: Vec<Constraint> = problem
        .views
        .iter()
        .map(|v| Constraint::Tgd(v.forward_tgd()))
        .collect();
    constraints.extend(problem.source_constraints.iter().cloned());
    let stats = chase(&mut inst, &constraints, cfg)?;

    let names = problem.view_names();
    let mut atoms: Vec<Atom> = Vec::new();
    for id in inst.fact_ids() {
        let f = inst.fact(id);
        if !names.contains(&f.pred) {
            continue;
        }
        let args: Vec<Term> = f.args.iter().map(elem_to_term).collect();
        atoms.push(Atom::new(f.pred, args));
    }
    atoms.sort();
    atoms.dedup();

    let head: Vec<Term> = problem
        .query
        .head
        .iter()
        .map(|t| match t {
            Term::Var(v) => elem_to_term(&inst.resolve(&Elem::Null(v.0))),
            Term::Const(c) => Term::Const(c.clone()),
        })
        .collect();
    Ok(UniversalPlan { head, atoms, stats })
}

fn elem_to_term(e: &Elem) -> Term {
    match e {
        Elem::Null(n) => Term::Var(Var(*n)),
        Elem::Const(c) => Term::Const(c.clone()),
    }
}

fn term_to_elem(t: &Term) -> Elem {
    match t {
        Term::Var(v) => Elem::Null(v.0),
        Term::Const(c) => Elem::Const(c.clone()),
    }
}

/// Build a candidate rewriting from a subset of universal-plan atoms.
pub(crate) fn build_candidate(
    query: &Cq,
    plan_head: &[Term],
    atoms: &[Atom],
    selection: &BTreeSet<usize>,
    index: usize,
) -> Cq {
    let body: Vec<Atom> = selection.iter().map(|i| atoms[*i].clone()).collect();
    Cq::new(
        format!("{}_rw{}", query.name, index).as_str(),
        plan_head.to_vec(),
        body,
    )
}

/// Shared acceptance filter: safety, feasibility, optional verification.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accept_candidate(
    candidate: &Cq,
    problem: &RewriteProblem,
    all_constraints: &[Constraint],
    cfg: &RewriteConfig,
    stats: &mut RewriteStats,
) -> bool {
    if !candidate.is_safe() {
        stats.rejected += 1;
        return false;
    }
    if !problem
        .access
        .is_feasible(&candidate.body, &BTreeSet::new())
    {
        stats.infeasible += 1;
        return false;
    }
    if cfg.verify {
        // Q ⊆ R holds for every subquery of the universal plan (chase
        // soundness); only R ⊆ Q needs checking.
        match contained_in(candidate, &problem.query, all_constraints, &cfg.chase) {
            Ok(true) => {}
            Ok(false) => {
                stats.rejected += 1;
                return false;
            }
            Err(_) => {
                stats.rejected += 1;
                return false;
            }
        }
    }
    true
}

/// Rewrite `problem.query` over the views with the provenance-aware Chase &
/// Backchase. Returns all minimal feasible rewritings.
pub fn pacb_rewrite(
    problem: &RewriteProblem,
    cfg: &RewriteConfig,
) -> Result<RewriteOutcome, RewriteError> {
    let up = universal_plan(problem, &cfg.chase)?;
    let mut stats = RewriteStats {
        forward: up.stats,
        universal_plan_atoms: up.atoms.len(),
        ..RewriteStats::default()
    };
    let universal_plan_cq = Cq::new(
        format!("{}_up", problem.query.name).as_str(),
        up.head.clone(),
        up.atoms.clone(),
    );
    if up.atoms.is_empty() {
        return Ok(RewriteOutcome {
            rewritings: Vec::new(),
            universal_plan: universal_plan_cq,
            complete: true,
            stats,
        });
    }

    // --- Backchase: freeze U, annotate, provenance-chase. ---
    let mut inst = Instance::new();
    let max_null = up
        .atoms
        .iter()
        .flat_map(|a| a.vars())
        .chain(up.head.iter().filter_map(Term::as_var))
        .map(|v| v.0 + 1)
        .max()
        .unwrap_or(0);
    inst.reserve_nulls(max_null);
    for (i, atom) in up.atoms.iter().enumerate() {
        let args: Vec<Elem> = atom.args.iter().map(term_to_elem).collect();
        inst.insert_with_prov(atom.pred, args, Dnf::var(i as u32));
    }
    let mut back_constraints: Vec<Constraint> = problem
        .views
        .iter()
        .map(|v| Constraint::Tgd(v.backward_tgd()))
        .collect();
    back_constraints.extend(problem.source_constraints.iter().cloned());
    back_constraints.extend(problem.target_constraints.iter().cloned());
    let pstats = prov_chase(&mut inst, &back_constraints, &cfg.prov)?;
    stats.backward = pstats;
    let mut complete = !pstats.truncated;

    // --- Collect head-preserving images of Q and their provenance. ---
    let targets: Vec<Elem> = up
        .head
        .iter()
        .map(|t| inst.resolve(&term_to_elem(t)))
        .collect();
    let fixed = match head_fixed_map(&problem.query, &targets) {
        Some(f) => f,
        None => {
            return Ok(RewriteOutcome {
                rewritings: Vec::new(),
                universal_plan: universal_plan_cq,
                complete,
                stats,
            })
        }
    };
    let homs = find_homs(
        &inst,
        &problem.query.body,
        &fixed,
        HomConfig {
            limit: cfg.max_images,
        },
    );
    stats.images = homs.len();
    if homs.len() >= cfg.max_images {
        complete = false;
    }

    let mut total = Dnf::fals();
    for h in &homs {
        let mut conj = Dnf::tru();
        let mut seen = HashSet::new();
        for fid in &h.fact_ids {
            if !seen.insert(*fid) {
                continue;
            }
            let (next, trunc) = conj.and(&inst.fact(*fid).prov, cfg.prov.clause_cap);
            conj = next;
            if trunc {
                complete = false;
            }
        }
        total.or_assign(&conj);
        if total.truncate(cfg.prov.clause_cap) {
            complete = false;
        }
    }

    // --- Clauses → candidate rewritings. ---
    let all_constraints = problem.all_constraints();
    let mut rewritings: Vec<Cq> = Vec::new();
    let mut seen_canonical: HashSet<String> = HashSet::new();
    for clause in total.clauses() {
        stats.candidates += 1;
        let selection: BTreeSet<usize> = clause.iter().map(|p| *p as usize).collect();
        let candidate = build_candidate(
            &problem.query,
            &up.head,
            &up.atoms,
            &selection,
            rewritings.len(),
        );
        if !accept_candidate(&candidate, problem, &all_constraints, cfg, &mut stats) {
            continue;
        }
        let key = format!("{}", candidate.canonicalize());
        if seen_canonical.insert(key) {
            stats.accepted += 1;
            rewritings.push(candidate);
        }
    }
    rewritings.sort_by_key(|r| r.body.len());

    Ok(RewriteOutcome {
        rewritings,
        universal_plan: universal_plan_cq,
        complete,
        stats,
    })
}

/// Build the fixed-variable map forcing `q`'s head onto `targets`; `None`
/// when a head constant disagrees or a repeated head variable is forced onto
/// two different elements.
pub(crate) fn head_fixed_map(q: &Cq, targets: &[Elem]) -> Option<HashMap<Var, Elem>> {
    let mut fixed: HashMap<Var, Elem> = HashMap::new();
    for (t, target) in q.head.iter().zip(targets) {
        match t {
            Term::Const(c) => {
                if Elem::Const(c.clone()) != *target {
                    return None;
                }
            }
            Term::Var(v) => match fixed.get(v) {
                Some(prev) if prev != target => return None,
                Some(_) => {}
                None => {
                    fixed.insert(*v, target.clone());
                }
            },
        }
    }
    Some(fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_pivot::CqBuilder;

    fn rewrite(problem: &RewriteProblem) -> RewriteOutcome {
        pacb_rewrite(problem, &RewriteConfig::default()).unwrap()
    }

    #[test]
    fn single_view_covers_query() {
        // V(x,z) :- R(x,y), S(y,z);  Q(x,z) :- R(x,y), S(y,z)  ⇒  Q(x,z) :- V(x,z)
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "z"])
                .atom("R", |a| a.v("x").v("y"))
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "z"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("S", |a| a.v("y").v("z"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v]));
        assert_eq!(out.rewritings.len(), 1);
        assert_eq!(out.rewritings[0].body.len(), 1);
        assert_eq!(out.rewritings[0].body[0].pred, Symbol::intern("V"));
        assert!(out.complete);
    }

    #[test]
    fn join_of_two_views() {
        // V1(x,y) :- R(x,y); V2(y,z) :- S(y,z); Q = R ⋈ S ⇒ V1 ⋈ V2.
        let v1 = ViewDef::new(
            CqBuilder::new("V1")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let v2 = ViewDef::new(
            CqBuilder::new("V2")
                .head_vars(["y", "z"])
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "z"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("S", |a| a.v("y").v("z"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v1, v2]));
        assert_eq!(out.rewritings.len(), 1);
        assert_eq!(out.rewritings[0].body.len(), 2);
    }

    #[test]
    fn no_rewriting_when_views_miss_needed_column() {
        // V(x) :- R(x,y) projects y away; Q(x,y) :- R(x,y) unanswerable.
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v]));
        assert!(out.rewritings.is_empty());
    }

    #[test]
    fn redundant_view_not_included_in_minimal_rewriting() {
        // V1 answers Q alone; V2 is redundant. Minimal rewriting = {V1}.
        let v1 = ViewDef::new(
            CqBuilder::new("V1")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let v2 = ViewDef::new(
            CqBuilder::new("V2")
                .head_vars(["x"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v1, v2]));
        assert_eq!(out.rewritings.len(), 1);
        assert_eq!(out.rewritings[0].body.len(), 1);
        assert_eq!(out.rewritings[0].body[0].pred, Symbol::intern("V1"));
    }

    #[test]
    fn multiple_alternative_rewritings_found() {
        // Two copies of the same view content: both are minimal rewritings.
        let v1 = ViewDef::new(
            CqBuilder::new("Va")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let v2 = ViewDef::new(
            CqBuilder::new("Vb")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v1, v2]));
        assert_eq!(out.rewritings.len(), 2);
    }

    #[test]
    fn access_pattern_filters_infeasible_rewriting() {
        use estocada_pivot::AccessPattern;
        // KV(k, v) with pattern io; Q(k,v) :- Base(k,v). Only view = KV over
        // Base. Rewriting KV(k,v) with free k is infeasible.
        let v = ViewDef::new(
            CqBuilder::new("KV")
                .head_vars(["k", "v"])
                .atom("Base", |a| a.v("k").v("v"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["k", "v"])
            .atom("Base", |a| a.v("k").v("v"))
            .build();
        let mut problem = RewriteProblem::new(q, vec![v]);
        problem.access.set("KV", AccessPattern::parse("io"));
        let out = rewrite(&problem);
        assert!(out.rewritings.is_empty());
        assert_eq!(out.stats.infeasible, 1);

        // With the key bound by a constant in the query, it becomes feasible.
        let q2 = CqBuilder::new("Q2")
            .head_vars(["v"])
            .atom("Base", |a| a.c(7i64).v("v"))
            .build();
        let mut problem2 = RewriteProblem::new(
            q2,
            vec![ViewDef::new(
                CqBuilder::new("KV")
                    .head_vars(["k", "v"])
                    .atom("Base", |a| a.v("k").v("v"))
                    .build(),
            )],
        );
        problem2.access.set("KV", AccessPattern::parse("io"));
        let out2 = rewrite(&problem2);
        assert_eq!(out2.rewritings.len(), 1);
    }

    #[test]
    fn constraint_based_rewriting_through_model_axioms() {
        // Source axiom: Child ⊆ Desc. View stores Desc pairs; query asks
        // Child... unanswerable (Desc ⊄ Child). Conversely a Desc query is
        // answerable from a Child-derived view only via the axiom.
        let axiom: Constraint = estocada_pivot::Tgd::new(
            "c2d",
            vec![Atom::new("Child", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Desc", vec![Term::var(0), Term::var(1)])],
        )
        .into();
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "y"])
                .atom("Child", |a| a.v("x").v("y"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("Desc", |a| a.v("x").v("y"))
            .build();
        let mut p = RewriteProblem::new(q, vec![v]);
        p.source_constraints.push(axiom);
        let out = rewrite(&p);
        // V(x,y) ⊆ Q (every child pair is a desc pair) but V is NOT
        // equivalent to Q in general — must be rejected by verification.
        assert!(out.rewritings.is_empty());
        assert!(out.stats.rejected >= 1 || out.stats.candidates == 0);
    }

    #[test]
    fn query_with_constant_rewrites_to_view_with_constant() {
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["y"])
            .atom("R", |a| a.c("alice").v("y"))
            .build();
        let out = rewrite(&RewriteProblem::new(q, vec![v]));
        assert_eq!(out.rewritings.len(), 1);
        let rw = &out.rewritings[0];
        assert_eq!(rw.body.len(), 1);
        assert!(rw.body[0]
            .args
            .iter()
            .any(|t| t.as_const().map(|c| c.as_str() == Some("alice")) == Some(true)));
    }
}
