//! Chase termination analysis: weak acyclicity upgraded to a three-valued
//! [`TerminationCertificate`].
//!
//! The *position graph* has a node per (relation, position). For every TGD
//! and every frontier variable `x` at premise position `p`:
//!
//! - a **regular** edge `p → q` for every conclusion position `q` where `x`
//!   occurs, and
//! - a **special** edge `p ⇒ q` for every conclusion position `q` holding an
//!   existential variable.
//!
//! The TGD set is weakly acyclic iff no cycle passes through a special edge;
//! the chase then terminates on every instance. [`certify`] reports the
//! verdict with evidence:
//!
//! - [`TerminationCertificate::NonTerminating`] carries a concrete witness
//!   cycle through a special edge — a value can flow around the cycle and
//!   force a fresh null at each lap, so the restricted chase can run
//!   forever on some instance.
//! - [`TerminationCertificate::Unknown`] covers EGD-mixed sets with
//!   existential TGDs: EGDs do not appear in the position graph, and the
//!   certificate does not model merge-induced re-triggering of TGDs, so no
//!   termination guarantee is issued and the budget guard must stay on.
//! - [`TerminationCertificate::WeaklyAcyclic`] carries the position graph
//!   itself; the chase provably reaches a fixpoint, so
//!   [`ChaseConfig::with_certificate`] may drop the budget guard.
//!
//! The legacy [`weakly_acyclic`] bool is kept as a thin wrapper: it returns
//! `false` exactly when the certificate is `NonTerminating`, preserving its
//! historical behaviour on EGD-bearing sets.

use crate::chase::ChaseConfig;
use estocada_pivot::{Constraint, Symbol, Term};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A position-graph node: (relation, argument position).
pub type Pos = (Symbol, usize);

/// Deterministic ordering key for a position (symbol interning order is
/// session-dependent; the printed name is not).
fn pos_key(p: &Pos) -> (std::sync::Arc<str>, usize) {
    (p.0.as_str(), p.1)
}

/// Render a position as `Rel.i`.
fn pos_str(p: &Pos) -> String {
    format!("{}.{}", p.0.as_str(), p.1)
}

/// The position dependency graph of a TGD set, with edges sorted
/// deterministically (by relation name, then position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionGraph {
    /// All (relation, position) nodes mentioned by any TGD.
    pub nodes: Vec<Pos>,
    /// Regular edges: a frontier variable is copied from → to.
    pub regular: Vec<(Pos, Pos)>,
    /// Special edges: firing invents a fresh null at `to` while reading
    /// a value at `from`.
    pub special: Vec<(Pos, Pos)>,
}

/// Verdict of the static termination analysis over a constraint set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TerminationCertificate {
    /// The TGD set is weakly acyclic: the chase reaches a fixpoint on every
    /// instance, so the budget guard is provably unnecessary.
    WeaklyAcyclic {
        /// The position graph the proof is over.
        graph: PositionGraph,
    },
    /// A cycle through a special edge exists: the chase may generate fresh
    /// nulls forever. `cycle` is a concrete witness walk in the position
    /// graph, `cycle[0] == cycle[last]`, whose first step is the offending
    /// special edge.
    NonTerminating {
        /// Witness cycle (first == last; first edge is special).
        cycle: Vec<Pos>,
    },
    /// No guarantee either way: the set mixes EGDs with existential TGDs.
    /// EGDs are absent from the position graph and the analysis does not
    /// model merge-induced re-triggering, so the budget guard stays on.
    Unknown {
        /// Human-readable explanation of why no verdict was possible.
        reason: String,
    },
}

impl TerminationCertificate {
    /// `true` iff the chase is statically proven to terminate — only then
    /// may the budget guard be dropped.
    pub fn guarantees_termination(&self) -> bool {
        matches!(self, TerminationCertificate::WeaklyAcyclic { .. })
    }

    /// The witness cycle of a `NonTerminating` verdict, if any.
    pub fn cycle(&self) -> Option<&[Pos]> {
        match self {
            TerminationCertificate::NonTerminating { cycle } => Some(cycle),
            _ => None,
        }
    }
}

impl fmt::Display for TerminationCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationCertificate::WeaklyAcyclic { graph } => write!(
                f,
                "weakly acyclic ({} positions, {} regular / {} special edges)",
                graph.nodes.len(),
                graph.regular.len(),
                graph.special.len(),
            ),
            TerminationCertificate::NonTerminating { cycle } => {
                let walk: Vec<String> = cycle.iter().map(pos_str).collect();
                write!(
                    f,
                    "non-terminating: special-edge cycle {}",
                    walk.join(" → ")
                )
            }
            TerminationCertificate::Unknown { reason } => write!(f, "unknown: {reason}"),
        }
    }
}

/// Check weak acyclicity of the TGDs in `constraints`.
///
/// Compatibility wrapper over [`certify`]: `false` exactly when the
/// certificate is [`TerminationCertificate::NonTerminating`]. EGD-mixed
/// sets still return `true` here (as they always did) even though the
/// certificate downgrades them to `Unknown`.
pub fn weakly_acyclic(constraints: &[Constraint]) -> bool {
    !matches!(
        certify(constraints),
        TerminationCertificate::NonTerminating { .. }
    )
}

/// Statically analyse `constraints` for chase termination.
///
/// The non-termination check runs first: a special-edge cycle among the
/// TGDs is decisive regardless of any EGDs in the set (in practice every
/// schema carries key EGDs, and they must not mask a genuinely divergent
/// TGD pair). Only cycle-free sets are then downgraded to `Unknown` when
/// EGDs coexist with existential TGDs.
pub fn certify(constraints: &[Constraint]) -> TerminationCertificate {
    let mut regular: HashMap<Pos, HashSet<Pos>> = HashMap::new();
    let mut special: HashMap<Pos, HashSet<Pos>> = HashMap::new();
    let mut nodes: HashSet<Pos> = HashSet::new();
    let mut has_egds = false;
    let mut has_existential_tgds = false;

    for c in constraints {
        let tgd = match c {
            Constraint::Tgd(t) => t,
            Constraint::Egd(_) => {
                has_egds = true;
                continue;
            }
        };
        let existentials = tgd.existentials();
        if !existentials.is_empty() {
            has_existential_tgds = true;
        }
        // Conclusion positions per variable.
        let mut conc_positions: HashMap<estocada_pivot::Var, Vec<Pos>> = HashMap::new();
        let mut exist_positions: Vec<Pos> = Vec::new();
        for a in &tgd.conclusion {
            for (i, t) in a.args.iter().enumerate() {
                nodes.insert((a.pred, i));
                if let Term::Var(v) = t {
                    if existentials.contains(v) {
                        exist_positions.push((a.pred, i));
                    } else {
                        conc_positions.entry(*v).or_default().push((a.pred, i));
                    }
                }
            }
        }
        for a in &tgd.premise {
            for (i, t) in a.args.iter().enumerate() {
                nodes.insert((a.pred, i));
                if let Term::Var(v) = t {
                    let from = (a.pred, i);
                    if let Some(tos) = conc_positions.get(v) {
                        for q in tos {
                            regular.entry(from).or_default().insert(*q);
                        }
                    }
                    // Special edges originate from every premise position of
                    // every variable: firing copies a value from `from` while
                    // inventing a null at each existential position.
                    for q in &exist_positions {
                        special.entry(from).or_default().insert(*q);
                    }
                }
            }
        }
    }

    // Non-terminating iff some strongly connected component contains a
    // special edge (both endpoints in the same SCC).
    let scc = tarjan_scc(&nodes, &regular, &special);
    let mut offending: Vec<(Pos, Pos)> = Vec::new();
    for (from, tos) in &special {
        for to in tos {
            if scc.get(from) == scc.get(to) && scc.contains_key(from) {
                offending.push((*from, *to));
            }
        }
    }
    if !offending.is_empty() {
        // Deterministic witness: the lexicographically smallest offending
        // special edge, closed into a cycle by the shortest path back
        // through its SCC.
        offending.sort_by_key(|(a, b)| (pos_key(a), pos_key(b)));
        let (from, to) = offending[0];
        let cycle = witness_cycle(from, to, &scc, &regular, &special);
        return TerminationCertificate::NonTerminating { cycle };
    }

    if has_egds && has_existential_tgds {
        return TerminationCertificate::Unknown {
            reason: "constraint set mixes EGDs with existential TGDs; the position graph \
                     does not model merge-induced re-triggering, so no termination \
                     guarantee is issued (budget guard retained)"
                .into(),
        };
    }

    let mut node_vec: Vec<Pos> = nodes.into_iter().collect();
    node_vec.sort_by_key(pos_key);
    let flatten = |m: &HashMap<Pos, HashSet<Pos>>| {
        let mut edges: Vec<(Pos, Pos)> = m
            .iter()
            .flat_map(|(f, tos)| tos.iter().map(move |t| (*f, *t)))
            .collect();
        edges.sort_by_key(|(a, b)| (pos_key(a), pos_key(b)));
        edges
    };
    TerminationCertificate::WeaklyAcyclic {
        graph: PositionGraph {
            nodes: node_vec,
            regular: flatten(&regular),
            special: flatten(&special),
        },
    }
}

/// Close the offending special edge `from ⇒ to` into a concrete cycle:
/// BFS (with deterministically ordered neighbour expansion) from `to` back
/// to `from`, restricted to their shared SCC. Returns
/// `[from, to, …, from]`; for a self-loop, `[from, from]`.
fn witness_cycle(
    from: Pos,
    to: Pos,
    scc: &HashMap<Pos, usize>,
    regular: &HashMap<Pos, HashSet<Pos>>,
    special: &HashMap<Pos, HashSet<Pos>>,
) -> Vec<Pos> {
    if from == to {
        return vec![from, to];
    }
    let comp = scc[&from];
    let neighbors = |v: &Pos| -> Vec<Pos> {
        let mut out: Vec<Pos> = Vec::new();
        for m in [regular, special] {
            if let Some(e) = m.get(v) {
                out.extend(e.iter().copied());
            }
        }
        out.retain(|w| scc.get(w) == Some(&comp));
        out.sort_by_key(pos_key);
        out.dedup();
        out
    };
    let mut parent: HashMap<Pos, Pos> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(to);
    'bfs: while let Some(v) = queue.pop_front() {
        for w in neighbors(&v) {
            if w == to || parent.contains_key(&w) {
                continue;
            }
            parent.insert(w, v);
            if w == from {
                break 'bfs;
            }
            queue.push_back(w);
        }
    }
    // `from` and `to` share an SCC, so a to→from path must exist.
    let mut back = vec![from];
    let mut cur = from;
    while cur != to {
        cur = parent[&cur];
        back.push(cur);
    }
    back.push(from);
    // back = [from, …path reversed…, to, from]; reorder to start at `from`
    // with the special edge first: [from, to, …, from].
    back.reverse();
    // now back = [from, to, …, from] — reversed path is exactly the walk.
    back
}

impl ChaseConfig {
    /// Apply a termination certificate to this configuration: a
    /// [`TerminationCertificate::WeaklyAcyclic`] verdict lifts the
    /// round/fact budgets (the fixpoint is statically guaranteed, so the
    /// guard only costs comparisons); any other verdict leaves the budget
    /// guard untouched.
    pub fn with_certificate(self, cert: &TerminationCertificate) -> ChaseConfig {
        if cert.guarantees_termination() {
            ChaseConfig {
                max_rounds: usize::MAX,
                max_facts: usize::MAX,
                ..self
            }
        } else {
            self
        }
    }
}

/// Tarjan SCC over the union of regular and special edges; returns the
/// component index per node.
fn tarjan_scc(
    nodes: &HashSet<Pos>,
    regular: &HashMap<Pos, HashSet<Pos>>,
    special: &HashMap<Pos, HashSet<Pos>>,
) -> HashMap<Pos, usize> {
    struct State<'a> {
        index: usize,
        indices: HashMap<Pos, usize>,
        lowlink: HashMap<Pos, usize>,
        on_stack: HashSet<Pos>,
        stack: Vec<Pos>,
        comp: HashMap<Pos, usize>,
        comp_count: usize,
        regular: &'a HashMap<Pos, HashSet<Pos>>,
        special: &'a HashMap<Pos, HashSet<Pos>>,
    }

    fn neighbors(s: &State<'_>, v: &Pos) -> Vec<Pos> {
        let mut out = Vec::new();
        if let Some(e) = s.regular.get(v) {
            out.extend(e.iter().copied());
        }
        if let Some(e) = s.special.get(v) {
            out.extend(e.iter().copied());
        }
        out
    }

    // Iterative Tarjan (explicit stack) to avoid recursion limits.
    fn strongconnect(s: &mut State<'_>, root: Pos) {
        let mut call_stack: Vec<(Pos, Vec<Pos>, usize)> = Vec::new();
        call_stack.push((root, neighbors(s, &root), 0));
        s.indices.insert(root, s.index);
        s.lowlink.insert(root, s.index);
        s.index += 1;
        s.stack.push(root);
        s.on_stack.insert(root);

        while let Some((v, neigh, mut i)) = call_stack.pop() {
            let mut descended = false;
            while i < neigh.len() {
                let w = neigh[i];
                i += 1;
                if !s.indices.contains_key(&w) {
                    // Descend into w.
                    call_stack.push((v, neigh.clone(), i));
                    s.indices.insert(w, s.index);
                    s.lowlink.insert(w, s.index);
                    s.index += 1;
                    s.stack.push(w);
                    s.on_stack.insert(w);
                    call_stack.push((w, neighbors(s, &w), 0));
                    descended = true;
                    break;
                } else if s.on_stack.contains(&w) {
                    let lw = s.indices[&w];
                    let lv = s.lowlink[&v];
                    s.lowlink.insert(v, lv.min(lw));
                }
            }
            if descended {
                continue;
            }
            // v finished: pop SCC if root.
            if s.lowlink[&v] == s.indices[&v] {
                loop {
                    let w = s.stack.pop().unwrap();
                    s.on_stack.remove(&w);
                    s.comp.insert(w, s.comp_count);
                    if w == v {
                        break;
                    }
                }
                s.comp_count += 1;
            }
            // Propagate lowlink to parent.
            if let Some((p, _, _)) = call_stack.last() {
                let lv = s.lowlink[&v];
                let lp = s.lowlink[p];
                let p = *p;
                s.lowlink.insert(p, lp.min(lv));
            }
        }
    }

    let mut s = State {
        index: 0,
        indices: HashMap::new(),
        lowlink: HashMap::new(),
        on_stack: HashSet::new(),
        stack: Vec::new(),
        comp: HashMap::new(),
        comp_count: 0,
        regular,
        special,
    };
    for n in nodes {
        if !s.indices.contains_key(n) {
            strongconnect(&mut s, *n);
        }
    }
    s.comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_pivot::{Atom, Egd, Tgd};

    fn tgd(name: &str, premise: Vec<Atom>, conclusion: Vec<Atom>) -> Constraint {
        Tgd::new(name, premise, conclusion).into()
    }

    fn key_egd() -> Constraint {
        // T(k, v) ∧ T(k, v') → v = v'
        Egd::new(
            "t_key",
            vec![
                Atom::new("T", vec![Term::var(0), Term::var(1)]),
                Atom::new("T", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        )
        .into()
    }

    #[test]
    fn full_tgds_are_weakly_acyclic() {
        let t = tgd(
            "t",
            vec![Atom::new("Child", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Desc", vec![Term::var(0), Term::var(1)])],
        );
        assert!(weakly_acyclic(&[t]));
    }

    #[test]
    fn classic_infinite_pair_is_rejected() {
        // R(x) → ∃y S(x,y); S(x,y) → R(y)
        let t1 = tgd(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = tgd(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        assert!(!weakly_acyclic(&[t1, t2]));
    }

    #[test]
    fn acyclic_existentials_are_fine() {
        // Person(x) → ∃y HasParent(x, y) with nothing flowing back.
        let t = tgd(
            "t",
            vec![Atom::new("Person", vec![Term::var(0)])],
            vec![Atom::new("HasParent", vec![Term::var(0), Term::var(1)])],
        );
        assert!(weakly_acyclic(&[t]));
    }

    #[test]
    fn self_loop_with_existential_rejected() {
        // S(x,y) → ∃z S(y,z)
        let t = tgd(
            "t",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("S", vec![Term::var(1), Term::var(2)])],
        );
        assert!(!weakly_acyclic(&[t]));
    }

    #[test]
    fn view_constraint_pairs_are_weakly_acyclic() {
        use estocada_pivot::{CqBuilder, ViewDef};
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "z"])
                .atom("R", |a| a.v("x").v("y"))
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let cs: Vec<Constraint> = v.constraints().into();
        assert!(weakly_acyclic(&cs));
    }

    #[test]
    fn certificate_carries_witness_cycle() {
        let t1 = tgd(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = tgd(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        let cert = certify(&[t1, t2]);
        let cycle = cert.cycle().expect("non-terminating");
        assert!(cycle.len() >= 2);
        assert_eq!(cycle.first(), cycle.last());
        // First step is the offending special edge: R.0 ⇒ S.1.
        assert_eq!(pos_str(&cycle[0]), "R.0");
        assert_eq!(pos_str(&cycle[1]), "S.1");
        assert!(!cert.guarantees_termination());
    }

    #[test]
    fn certify_is_deterministic() {
        let build = || {
            vec![
                tgd(
                    "t1",
                    vec![Atom::new("R", vec![Term::var(0)])],
                    vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
                ),
                tgd(
                    "t2",
                    vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
                    vec![Atom::new("R", vec![Term::var(1)])],
                ),
                tgd(
                    "t3",
                    vec![Atom::new("R", vec![Term::var(0)])],
                    vec![Atom::new("U", vec![Term::var(0), Term::var(1)])],
                ),
            ]
        };
        assert_eq!(certify(&build()), certify(&build()));
        assert_eq!(
            format!("{}", certify(&build())),
            format!("{}", certify(&build()))
        );
    }

    // Satellite: the doc-noted EGD gap. Mixing EGDs with existential TGDs
    // must NOT silently certify — the set is downgraded to Unknown and the
    // budget guard survives `with_certificate`.
    #[test]
    fn egd_with_existential_tgds_is_unknown() {
        let t = tgd(
            "t",
            vec![Atom::new("Person", vec![Term::var(0)])],
            vec![Atom::new("HasParent", vec![Term::var(0), Term::var(1)])],
        );
        let cert = certify(&[t, key_egd()]);
        assert!(matches!(cert, TerminationCertificate::Unknown { .. }));
        assert!(!cert.guarantees_termination());
        // The legacy bool stays `true` for compatibility.
        let t = tgd(
            "t",
            vec![Atom::new("Person", vec![Term::var(0)])],
            vec![Atom::new("HasParent", vec![Term::var(0), Term::var(1)])],
        );
        assert!(weakly_acyclic(&[t, key_egd()]));
        // And the budget guard is kept.
        let cfg = ChaseConfig::default().with_certificate(&cert);
        assert_eq!(cfg.max_rounds, ChaseConfig::default().max_rounds);
        assert_eq!(cfg.max_facts, ChaseConfig::default().max_facts);
    }

    #[test]
    fn egd_with_full_tgds_is_weakly_acyclic() {
        // No existentials anywhere: EGD merges can only shrink the active
        // domain, so the verdict stays WeaklyAcyclic.
        let t = tgd(
            "t",
            vec![Atom::new("Child", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Desc", vec![Term::var(0), Term::var(1)])],
        );
        let cert = certify(&[t, key_egd()]);
        assert!(cert.guarantees_termination());
    }

    #[test]
    fn egds_do_not_mask_a_divergent_tgd_cycle() {
        // Key EGDs are everywhere in real schemas; the non-termination
        // check must fire first so the witness is still produced.
        let t1 = tgd(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = tgd(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        let cert = certify(&[t1, t2, key_egd()]);
        assert!(cert.cycle().is_some());
    }

    #[test]
    fn certificate_lifts_budget_only_when_terminating() {
        let full = tgd(
            "t",
            vec![Atom::new("Child", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Desc", vec![Term::var(0), Term::var(1)])],
        );
        let cert = certify(std::slice::from_ref(&full));
        let cfg = ChaseConfig::default().with_certificate(&cert);
        assert_eq!(cfg.max_rounds, usize::MAX);
        assert_eq!(cfg.max_facts, usize::MAX);

        let t1 = tgd(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = tgd(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        let cert = certify(&[t1, t2]);
        let cfg = ChaseConfig::default().with_certificate(&cert);
        assert_eq!(cfg.max_rounds, ChaseConfig::default().max_rounds);
        assert_eq!(cfg.max_facts, ChaseConfig::default().max_facts);
    }
}
