//! Weak acyclicity: the standard sufficient condition for chase termination.
//!
//! The *position graph* has a node per (relation, position). For every TGD
//! and every frontier variable `x` at premise position `p`:
//!
//! - a **regular** edge `p → q` for every conclusion position `q` where `x`
//!   occurs, and
//! - a **special** edge `p ⇒ q` for every conclusion position `q` holding an
//!   existential variable.
//!
//! The TGD set is weakly acyclic iff no cycle passes through a special edge;
//! the chase then terminates on every instance. EGDs do not participate
//! (they can, in rare mixes, break termination — our chase keeps its budget
//! guard precisely for that).

use estocada_pivot::{Constraint, Symbol, Term};
use std::collections::{HashMap, HashSet};

/// A position-graph node.
type Pos = (Symbol, usize);

/// Check weak acyclicity of the TGDs in `constraints`.
pub fn weakly_acyclic(constraints: &[Constraint]) -> bool {
    let mut regular: HashMap<Pos, HashSet<Pos>> = HashMap::new();
    let mut special: HashMap<Pos, HashSet<Pos>> = HashMap::new();
    let mut nodes: HashSet<Pos> = HashSet::new();

    for c in constraints {
        let tgd = match c {
            Constraint::Tgd(t) => t,
            Constraint::Egd(_) => continue,
        };
        let existentials = tgd.existentials();
        // Conclusion positions per variable.
        let mut conc_positions: HashMap<estocada_pivot::Var, Vec<Pos>> = HashMap::new();
        let mut exist_positions: Vec<Pos> = Vec::new();
        for a in &tgd.conclusion {
            for (i, t) in a.args.iter().enumerate() {
                nodes.insert((a.pred, i));
                if let Term::Var(v) = t {
                    if existentials.contains(v) {
                        exist_positions.push((a.pred, i));
                    } else {
                        conc_positions.entry(*v).or_default().push((a.pred, i));
                    }
                }
            }
        }
        for a in &tgd.premise {
            for (i, t) in a.args.iter().enumerate() {
                nodes.insert((a.pred, i));
                if let Term::Var(v) = t {
                    let from = (a.pred, i);
                    if let Some(tos) = conc_positions.get(v) {
                        for q in tos {
                            regular.entry(from).or_default().insert(*q);
                        }
                    }
                    // Special edges only originate from variables that
                    // actually propagate into the conclusion? No — the
                    // standard definition adds them from every premise
                    // position of every frontier variable, because firing
                    // copies a value from `from` while inventing a null at
                    // each existential position.
                    for q in &exist_positions {
                        special.entry(from).or_default().insert(*q);
                    }
                }
            }
        }
    }

    // Weakly acyclic iff no strongly connected component contains a special
    // edge (i.e. no special edge has its endpoints in the same SCC).
    let scc = tarjan_scc(&nodes, &regular, &special);
    for (from, tos) in &special {
        for to in tos {
            if scc.get(from) == scc.get(to) && scc.contains_key(from) {
                return false;
            }
        }
    }
    true
}

/// Tarjan SCC over the union of regular and special edges; returns the
/// component index per node.
fn tarjan_scc(
    nodes: &HashSet<Pos>,
    regular: &HashMap<Pos, HashSet<Pos>>,
    special: &HashMap<Pos, HashSet<Pos>>,
) -> HashMap<Pos, usize> {
    struct State<'a> {
        index: usize,
        indices: HashMap<Pos, usize>,
        lowlink: HashMap<Pos, usize>,
        on_stack: HashSet<Pos>,
        stack: Vec<Pos>,
        comp: HashMap<Pos, usize>,
        comp_count: usize,
        regular: &'a HashMap<Pos, HashSet<Pos>>,
        special: &'a HashMap<Pos, HashSet<Pos>>,
    }

    fn neighbors<'a>(s: &State<'a>, v: &Pos) -> Vec<Pos> {
        let mut out = Vec::new();
        if let Some(e) = s.regular.get(v) {
            out.extend(e.iter().copied());
        }
        if let Some(e) = s.special.get(v) {
            out.extend(e.iter().copied());
        }
        out
    }

    // Iterative Tarjan (explicit stack) to avoid recursion limits.
    fn strongconnect(s: &mut State<'_>, root: Pos) {
        let mut call_stack: Vec<(Pos, Vec<Pos>, usize)> = Vec::new();
        call_stack.push((root, neighbors(s, &root), 0));
        s.indices.insert(root, s.index);
        s.lowlink.insert(root, s.index);
        s.index += 1;
        s.stack.push(root);
        s.on_stack.insert(root);

        while let Some((v, neigh, mut i)) = call_stack.pop() {
            let mut descended = false;
            while i < neigh.len() {
                let w = neigh[i];
                i += 1;
                if !s.indices.contains_key(&w) {
                    // Descend into w.
                    call_stack.push((v, neigh.clone(), i));
                    s.indices.insert(w, s.index);
                    s.lowlink.insert(w, s.index);
                    s.index += 1;
                    s.stack.push(w);
                    s.on_stack.insert(w);
                    call_stack.push((w, neighbors(s, &w), 0));
                    descended = true;
                    break;
                } else if s.on_stack.contains(&w) {
                    let lw = s.indices[&w];
                    let lv = s.lowlink[&v];
                    s.lowlink.insert(v, lv.min(lw));
                }
            }
            if descended {
                continue;
            }
            // v finished: pop SCC if root.
            if s.lowlink[&v] == s.indices[&v] {
                loop {
                    let w = s.stack.pop().unwrap();
                    s.on_stack.remove(&w);
                    s.comp.insert(w, s.comp_count);
                    if w == v {
                        break;
                    }
                }
                s.comp_count += 1;
            }
            // Propagate lowlink to parent.
            if let Some((p, _, _)) = call_stack.last() {
                let lv = s.lowlink[&v];
                let lp = s.lowlink[p];
                let p = *p;
                s.lowlink.insert(p, lp.min(lv));
            }
        }
    }

    let mut s = State {
        index: 0,
        indices: HashMap::new(),
        lowlink: HashMap::new(),
        on_stack: HashSet::new(),
        stack: Vec::new(),
        comp: HashMap::new(),
        comp_count: 0,
        regular,
        special,
    };
    for n in nodes {
        if !s.indices.contains_key(n) {
            strongconnect(&mut s, *n);
        }
    }
    s.comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_pivot::{Atom, Tgd};

    fn tgd(name: &str, premise: Vec<Atom>, conclusion: Vec<Atom>) -> Constraint {
        Tgd::new(name, premise, conclusion).into()
    }

    #[test]
    fn full_tgds_are_weakly_acyclic() {
        let t = tgd(
            "t",
            vec![Atom::new("Child", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Desc", vec![Term::var(0), Term::var(1)])],
        );
        assert!(weakly_acyclic(&[t]));
    }

    #[test]
    fn classic_infinite_pair_is_rejected() {
        // R(x) → ∃y S(x,y); S(x,y) → R(y)
        let t1 = tgd(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = tgd(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        assert!(!weakly_acyclic(&[t1, t2]));
    }

    #[test]
    fn acyclic_existentials_are_fine() {
        // Person(x) → ∃y HasParent(x, y) with nothing flowing back.
        let t = tgd(
            "t",
            vec![Atom::new("Person", vec![Term::var(0)])],
            vec![Atom::new("HasParent", vec![Term::var(0), Term::var(1)])],
        );
        assert!(weakly_acyclic(&[t]));
    }

    #[test]
    fn self_loop_with_existential_rejected() {
        // S(x,y) → ∃z S(y,z)
        let t = tgd(
            "t",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("S", vec![Term::var(1), Term::var(2)])],
        );
        assert!(!weakly_acyclic(&[t]));
    }

    #[test]
    fn view_constraint_pairs_are_weakly_acyclic() {
        use estocada_pivot::{CqBuilder, ViewDef};
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "z"])
                .atom("R", |a| a.v("x").v("y"))
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let cs: Vec<Constraint> = v.constraints().into();
        assert!(weakly_acyclic(&cs));
    }
}
