//! Chase termination analysis: a **certificate lattice** over constraint
//! sets, from plain weak acyclicity up through EGD-aware contraction,
//! super-weak acyclicity, and stratification.
//!
//! The *position graph* has a node per (relation, position). For every TGD
//! and every frontier variable `x` at premise position `p`:
//!
//! - a **regular** edge `p → q` for every conclusion position `q` where `x`
//!   occurs, and
//! - a **special** edge `p ⇒ q` for every conclusion position `q` holding an
//!   existential variable.
//!
//! The TGD set is weakly acyclic iff no cycle passes through a special edge;
//! the chase then terminates on every instance (and, by Fagin et al.'s
//! data-exchange theorem, stays terminating when arbitrary EGDs join the
//! set). [`certify`] climbs a lattice of increasingly precise checks and
//! reports the strongest verdict it can prove, with evidence:
//!
//! - [`TerminationCertificate::WeaklyAcyclic`] — the position graph is free
//!   of special-edge cycles. When EGDs coexist with existential TGDs, their
//!   merges are modelled conservatively as **position contractions** (the
//!   premise positions of the two equated variables are unioned into one
//!   node); key EGDs equate values at the *same* position, so the
//!   contraction is a no-op and keyed deployments certify here instead of
//!   degrading to `Unknown`. A contraction-free graph is acyclic only if
//!   the plain graph is, so this rung is strictly more conservative than
//!   the Fagin et al. criterion — hence sound.
//! - [`TerminationCertificate::SuperWeaklyAcyclic`] — a null-flow
//!   refinement for EGD-free sets the plain graph rejects: per existential
//!   variable, a *null class* tracks the positions its nulls can ever
//!   occupy (`occ`), and a TGD can re-fire on a class only if **every**
//!   premise position of some variable lies inside `occ`. If the induced
//!   null-creation graph is acyclic, only finitely many nulls exist in any
//!   chase sequence, so the chase terminates even though a special-edge
//!   cycle exists. The discharged plain-graph cycle edges are carried as
//!   evidence.
//! - [`TerminationCertificate::Stratified`] — the constraint set splits
//!   into strata along the firing/precedence graph (`c₁ → c₂` iff firing
//!   `c₁` can touch a relation `c₂` reads; an EGD's footprint is the set
//!   of relations where a null it can actually merge may occur, computed
//!   from the same null-flow analysis). Each stratum certifies on its own
//!   via a non-stratified rung, later strata can never re-enable earlier
//!   ones, so both the stratum-by-stratum chase and the interleaved plain
//!   chase terminate.
//! - [`TerminationCertificate::NonTerminating`] carries a concrete witness
//!   cycle through a special edge — a value can flow around the cycle and
//!   force a fresh null at each lap, so the restricted chase can run
//!   forever on some instance.
//! - [`TerminationCertificate::Unknown`] — every rung failed. The reason
//!   is **structured** ([`UnknownReason`]) and names the exact blocking
//!   constraint pair ([`TerminationCertificate::blocking_pair`]): the EGD
//!   whose merge closes the contracted cycle and the TGD owning the
//!   special edge the cycle runs through. The budget guard stays on.
//!
//! [`ChaseConfig::with_certificate`] lifts the round/fact budgets for every
//! rung that proves termination (`WeaklyAcyclic`, `SuperWeaklyAcyclic`,
//! `Stratified`) and leaves them in place otherwise.
//!
//! The legacy [`weakly_acyclic`] bool is kept as a thin wrapper: it returns
//! `false` exactly when the certificate is `NonTerminating`, preserving its
//! historical behaviour on EGD-bearing sets.

use crate::chase::ChaseConfig;
use estocada_pivot::{Atom, Constraint, Symbol, Term, Var};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A position-graph node: (relation, argument position).
pub type Pos = (Symbol, usize);

/// Deterministic ordering key for a position (symbol interning order is
/// session-dependent; the printed name is not).
fn pos_key(p: &Pos) -> (std::sync::Arc<str>, usize) {
    (p.0.as_str(), p.1)
}

/// Render a position as `Rel.i`.
fn pos_str(p: &Pos) -> String {
    format!("{}.{}", p.0.as_str(), p.1)
}

/// The position dependency graph of a TGD set, with edges sorted
/// deterministically (by relation name, then position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionGraph {
    /// All (relation, position) nodes mentioned by any TGD.
    pub nodes: Vec<Pos>,
    /// Regular edges: a frontier variable is copied from → to.
    pub regular: Vec<(Pos, Pos)>,
    /// Special edges: firing invents a fresh null at `to` while reading
    /// a value at `from`.
    pub special: Vec<(Pos, Pos)>,
}

/// One stratum of a [`TerminationCertificate::Stratified`] proof: a subset
/// of the constraint set chased to fixpoint before any later stratum fires.
/// Later strata never write into relations earlier strata read, so earlier
/// fixpoints survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratum {
    /// Indices into the certified constraint slice, ascending. Stratified
    /// execution must receive the constraints in the same order they were
    /// certified in.
    pub members: Vec<usize>,
    /// Constraint names, parallel to `members` (for diagnostics).
    pub names: Vec<Symbol>,
    /// The stratum's own certificate — always a non-stratified rung that
    /// guarantees termination (a stratified verdict is only issued when
    /// every stratum certifies).
    pub certificate: TerminationCertificate,
}

/// Structured explanation of an [`TerminationCertificate::Unknown`]
/// verdict, stable enough for tests to pin and precise enough to name the
/// first blocking constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnknownReason {
    /// EGD-induced position merges close a special-edge cycle that the
    /// plain position graph does not have, and stratification could not
    /// separate the participants.
    EgdContractionCycle {
        /// First schema-order EGD whose merge lies on the witness cycle.
        egd: Symbol,
        /// The TGD owning the special edge the witness cycle enters
        /// through.
        tgd: Symbol,
        /// Witness cycle in the *contracted* position graph (first ==
        /// last; first edge is special). Merged position classes are
        /// rendered by their smallest member.
        cycle: Vec<Pos>,
    },
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::EgdContractionCycle { egd, tgd, cycle } => {
                let walk: Vec<String> = cycle.iter().map(pos_str).collect();
                write!(
                    f,
                    "EGD {egd} merges positions into a special-edge cycle through TGD {tgd} \
                     ({}); budget guard retained",
                    walk.join(" → ")
                )
            }
        }
    }
}

/// Verdict of the static termination analysis over a constraint set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TerminationCertificate {
    /// The (possibly EGD-contracted) position graph has no special-edge
    /// cycle: the chase reaches a fixpoint on every instance, so the
    /// budget guard is provably unnecessary.
    WeaklyAcyclic {
        /// The position graph the proof is over (contracted when EGDs
        /// coexist with existential TGDs).
        graph: PositionGraph,
    },
    /// The plain position graph has special-edge cycles, but the null-flow
    /// refinement proves no null class can feed its own creation: only
    /// finitely many nulls arise in any chase sequence, so the chase
    /// terminates. Only issued for EGD-free sets.
    SuperWeaklyAcyclic {
        /// The plain position graph.
        graph: PositionGraph,
        /// The special-edge cycle edges the refinement discharged
        /// (deterministically sorted).
        discharged: Vec<(Pos, Pos)>,
    },
    /// The constraint set splits into ≥ 2 strata along the precedence
    /// graph, each certifying termination on its own; chasing stratum by
    /// stratum (or interleaved) terminates.
    Stratified {
        /// The strata in execution (topological) order.
        strata: Vec<Stratum>,
    },
    /// A cycle through a special edge exists and no refinement discharges
    /// it: the chase may generate fresh nulls forever. `cycle` is a
    /// concrete witness walk in the position graph, `cycle[0] ==
    /// cycle[last]`, whose first step is the offending special edge.
    NonTerminating {
        /// Witness cycle (first == last; first edge is special).
        cycle: Vec<Pos>,
    },
    /// No guarantee either way: every rung of the lattice failed, but the
    /// failure is not a non-termination witness (the contraction
    /// over-approximates EGD behaviour). The budget guard stays on.
    Unknown {
        /// Why no verdict was possible, naming the blocking constraints.
        reason: UnknownReason,
    },
}

impl TerminationCertificate {
    /// `true` iff the chase is statically proven to terminate — only then
    /// may the budget guard be dropped.
    pub fn guarantees_termination(&self) -> bool {
        matches!(
            self,
            TerminationCertificate::WeaklyAcyclic { .. }
                | TerminationCertificate::SuperWeaklyAcyclic { .. }
                | TerminationCertificate::Stratified { .. }
        )
    }

    /// The witness cycle of a `NonTerminating` verdict, if any.
    pub fn cycle(&self) -> Option<&[Pos]> {
        match self {
            TerminationCertificate::NonTerminating { cycle } => Some(cycle),
            _ => None,
        }
    }

    /// For an `Unknown` verdict, the exact (EGD, TGD) pair that blocks
    /// certification — the actionable "why is my deployment Unknown"
    /// answer.
    pub fn blocking_pair(&self) -> Option<(Symbol, Symbol)> {
        match self {
            TerminationCertificate::Unknown {
                reason: UnknownReason::EgdContractionCycle { egd, tgd, .. },
            } => Some((*egd, *tgd)),
            _ => None,
        }
    }

    /// Short lattice-rung name, stable for snapshots.
    pub fn rung(&self) -> &'static str {
        match self {
            TerminationCertificate::WeaklyAcyclic { .. } => "weakly acyclic",
            TerminationCertificate::SuperWeaklyAcyclic { .. } => "super-weakly acyclic",
            TerminationCertificate::Stratified { .. } => "stratified",
            TerminationCertificate::NonTerminating { .. } => "non-terminating",
            TerminationCertificate::Unknown { .. } => "unknown",
        }
    }
}

impl fmt::Display for TerminationCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationCertificate::WeaklyAcyclic { graph } => write!(
                f,
                "weakly acyclic ({} positions, {} regular / {} special edges)",
                graph.nodes.len(),
                graph.regular.len(),
                graph.special.len(),
            ),
            TerminationCertificate::SuperWeaklyAcyclic { graph, discharged } => {
                let first = discharged
                    .first()
                    .map(|(a, b)| format!("{} ⇒ {}", pos_str(a), pos_str(b)))
                    .unwrap_or_default();
                write!(
                    f,
                    "super-weakly acyclic ({} positions, {} regular / {} special edges; \
                     {} plain cycle edge(s) discharged, first {first})",
                    graph.nodes.len(),
                    graph.regular.len(),
                    graph.special.len(),
                    discharged.len(),
                )
            }
            TerminationCertificate::Stratified { strata } => {
                write!(f, "stratified ({} strata:", strata.len())?;
                for (i, s) in strata.iter().enumerate() {
                    let names: Vec<String> = s.names.iter().map(|n| n.to_string()).collect();
                    let sep = if i == 0 { " " } else { "; " };
                    write!(f, "{sep}{{{}}}: {}", names.join(", "), s.certificate.rung())?;
                }
                write!(f, ")")
            }
            TerminationCertificate::NonTerminating { cycle } => {
                let walk: Vec<String> = cycle.iter().map(pos_str).collect();
                write!(
                    f,
                    "non-terminating: special-edge cycle {}",
                    walk.join(" → ")
                )
            }
            TerminationCertificate::Unknown { reason } => write!(f, "unknown: {reason}"),
        }
    }
}

/// Check weak acyclicity of the TGDs in `constraints`.
///
/// Compatibility wrapper over [`certify`]: `false` exactly when the
/// certificate is [`TerminationCertificate::NonTerminating`].
pub fn weakly_acyclic(constraints: &[Constraint]) -> bool {
    !matches!(
        certify(constraints),
        TerminationCertificate::NonTerminating { .. }
    )
}

/// Per-variable position sets of one constraint side.
type VarPositions = HashMap<Var, Vec<Pos>>;

/// Positions of each variable across `atoms` (first-occurrence order,
/// deduplicated).
fn var_positions(atoms: &[Atom]) -> VarPositions {
    let mut m: HashMap<Var, Vec<Pos>> = HashMap::new();
    for a in atoms {
        for (i, t) in a.args.iter().enumerate() {
            if let Term::Var(v) = t {
                let e = m.entry(*v).or_default();
                if !e.contains(&(a.pred, i)) {
                    e.push((a.pred, i));
                }
            }
        }
    }
    m
}

/// Predicates mentioned by `atoms`.
fn atom_preds(atoms: &[Atom]) -> HashSet<Symbol> {
    atoms.iter().map(|a| a.pred).collect()
}

/// The plain position graph plus the bookkeeping the refinement rungs need.
struct Graph {
    nodes: HashSet<Pos>,
    regular: HashMap<Pos, HashSet<Pos>>,
    special: HashMap<Pos, HashSet<Pos>>,
    /// First schema-order TGD owning each special edge.
    special_owner: HashMap<(Pos, Pos), (usize, Symbol)>,
    has_egds: bool,
    has_existential_tgds: bool,
}

fn build_graph(constraints: &[Constraint]) -> Graph {
    let mut g = Graph {
        nodes: HashSet::new(),
        regular: HashMap::new(),
        special: HashMap::new(),
        special_owner: HashMap::new(),
        has_egds: false,
        has_existential_tgds: false,
    };
    for (ci, c) in constraints.iter().enumerate() {
        let tgd = match c {
            Constraint::Tgd(t) => t,
            Constraint::Egd(_) => {
                g.has_egds = true;
                continue;
            }
        };
        let existentials = tgd.existentials();
        if !existentials.is_empty() {
            g.has_existential_tgds = true;
        }
        // Conclusion positions per variable.
        let mut conc_positions: HashMap<Var, Vec<Pos>> = HashMap::new();
        let mut exist_positions: Vec<Pos> = Vec::new();
        for a in &tgd.conclusion {
            for (i, t) in a.args.iter().enumerate() {
                g.nodes.insert((a.pred, i));
                if let Term::Var(v) = t {
                    if existentials.contains(v) {
                        exist_positions.push((a.pred, i));
                    } else {
                        conc_positions.entry(*v).or_default().push((a.pred, i));
                    }
                }
            }
        }
        for a in &tgd.premise {
            for (i, t) in a.args.iter().enumerate() {
                g.nodes.insert((a.pred, i));
                if let Term::Var(v) = t {
                    let from = (a.pred, i);
                    if let Some(tos) = conc_positions.get(v) {
                        for q in tos {
                            g.regular.entry(from).or_default().insert(*q);
                        }
                    }
                    // Special edges originate from every premise position of
                    // every variable: firing copies a value from `from` while
                    // inventing a null at each existential position.
                    for q in &exist_positions {
                        g.special.entry(from).or_default().insert(*q);
                        g.special_owner.entry((from, *q)).or_insert((ci, tgd.name));
                    }
                }
            }
        }
    }
    g
}

/// Special edges whose endpoints share an SCC, deterministically sorted.
fn offending_edges(
    scc: &HashMap<Pos, usize>,
    special: &HashMap<Pos, HashSet<Pos>>,
) -> Vec<(Pos, Pos)> {
    let mut offending: Vec<(Pos, Pos)> = Vec::new();
    for (from, tos) in special {
        for to in tos {
            if scc.get(from) == scc.get(to) && scc.contains_key(from) {
                offending.push((*from, *to));
            }
        }
    }
    offending.sort_by_key(|(a, b)| (pos_key(a), pos_key(b)));
    offending
}

/// Flatten edge maps into the public, deterministically sorted graph form.
fn to_position_graph(
    nodes: &HashSet<Pos>,
    regular: &HashMap<Pos, HashSet<Pos>>,
    special: &HashMap<Pos, HashSet<Pos>>,
) -> PositionGraph {
    let mut node_vec: Vec<Pos> = nodes.iter().copied().collect();
    node_vec.sort_by_key(pos_key);
    let flatten = |m: &HashMap<Pos, HashSet<Pos>>| {
        let mut edges: Vec<(Pos, Pos)> = m
            .iter()
            .flat_map(|(f, tos)| tos.iter().map(move |t| (*f, *t)))
            .collect();
        edges.sort_by_key(|(a, b)| (pos_key(a), pos_key(b)));
        edges
    };
    PositionGraph {
        nodes: node_vec,
        regular: flatten(regular),
        special: flatten(special),
    }
}

/// Statically analyse `constraints` for chase termination, climbing the
/// certificate lattice described in the module docs.
pub fn certify(constraints: &[Constraint]) -> TerminationCertificate {
    certify_with(constraints, true)
}

/// `allow_stratified` is the recursion guard: per-stratum certification
/// must come from a non-stratified rung.
fn certify_with(constraints: &[Constraint], allow_stratified: bool) -> TerminationCertificate {
    let g = build_graph(constraints);
    let scc = tarjan_scc(&g.nodes, &g.regular, &g.special);
    let offending = offending_edges(&scc, &g.special);

    if let Some(&(from, to)) = offending.first() {
        // Plain weak acyclicity fails. Try the refinement rungs before
        // declaring non-termination.
        if !g.has_egds && super_weakly_acyclic(constraints) {
            return TerminationCertificate::SuperWeaklyAcyclic {
                graph: to_position_graph(&g.nodes, &g.regular, &g.special),
                discharged: offending,
            };
        }
        if allow_stratified {
            if let Some(strata) = certified_strata(constraints) {
                return TerminationCertificate::Stratified { strata };
            }
        }
        let cycle = witness_cycle(from, to, &scc, &g.regular, &g.special);
        return TerminationCertificate::NonTerminating { cycle };
    }

    if g.has_egds && g.has_existential_tgds {
        match contract(constraints, &g) {
            Ok(graph) => return TerminationCertificate::WeaklyAcyclic { graph },
            Err(reason) => {
                if allow_stratified {
                    if let Some(strata) = certified_strata(constraints) {
                        return TerminationCertificate::Stratified { strata };
                    }
                }
                return TerminationCertificate::Unknown { reason };
            }
        }
    }

    TerminationCertificate::WeaklyAcyclic {
        graph: to_position_graph(&g.nodes, &g.regular, &g.special),
    }
}

// ---------------------------------------------------------------------------
// EGD contraction
// ---------------------------------------------------------------------------

fn uf_find(parent: &mut HashMap<Pos, Pos>, p: Pos) -> Pos {
    let mut root = p;
    while let Some(&next) = parent.get(&root) {
        if next == root {
            break;
        }
        root = next;
    }
    // Path compression.
    let mut cur = p;
    while cur != root {
        let next = parent[&cur];
        parent.insert(cur, root);
        cur = next;
    }
    root
}

/// Union two positions; `true` iff they were previously distinct.
fn uf_union(parent: &mut HashMap<Pos, Pos>, a: Pos, b: Pos) -> bool {
    let ra = uf_find(parent, a);
    let rb = uf_find(parent, b);
    if ra == rb {
        return false;
    }
    // Deterministic representative: the smaller position key.
    let (keep, fold) = if pos_key(&ra) <= pos_key(&rb) {
        (ra, rb)
    } else {
        (rb, ra)
    };
    parent.insert(fold, keep);
    parent.entry(keep).or_insert(keep);
    true
}

/// Model EGD merges as position contractions: for each EGD equating two
/// variables, union every premise position either variable can occupy (the
/// merged value may afterwards sit at any of them). Key EGDs equate values
/// at the same position, so they contract nothing. Returns the contracted
/// graph when it stays free of special-edge cycles, else the structured
/// reason naming the blocking (EGD, TGD) pair.
fn contract(constraints: &[Constraint], g: &Graph) -> Result<PositionGraph, UnknownReason> {
    let mut parent: HashMap<Pos, Pos> = HashMap::new();
    // (constraint idx, egd name, merged position): schema-order record of
    // every non-trivial union, for blame assignment.
    let mut merges: Vec<(usize, Symbol, Pos)> = Vec::new();
    for (ci, c) in constraints.iter().enumerate() {
        let Constraint::Egd(e) = c else { continue };
        let (Term::Var(a), Term::Var(b)) = (&e.equal.0, &e.equal.1) else {
            continue;
        };
        let pvp = var_positions(&e.premise);
        let (Some(pa), Some(pb)) = (pvp.get(a), pvp.get(b)) else {
            continue;
        };
        let all: Vec<Pos> = pa.iter().chain(pb.iter()).copied().collect();
        for w in all.windows(2) {
            if uf_union(&mut parent, w[0], w[1]) {
                merges.push((ci, e.name, w[0]));
            }
        }
    }
    if merges.is_empty() {
        // Every EGD is key-shaped: the contracted graph IS the plain graph.
        return Ok(to_position_graph(&g.nodes, &g.regular, &g.special));
    }

    // Display representative per class: smallest member among graph nodes.
    let mut rep_of: HashMap<Pos, Pos> = HashMap::new();
    for n in &g.nodes {
        let root = uf_find(&mut parent, *n);
        match rep_of.get(&root) {
            Some(r) if pos_key(r) <= pos_key(n) => {}
            _ => {
                rep_of.insert(root, *n);
            }
        }
    }
    let mut rep = |p: Pos| -> Pos {
        let root = uf_find(&mut parent, p);
        *rep_of.get(&root).unwrap_or(&p)
    };

    let mut cnodes: HashSet<Pos> = HashSet::new();
    let mut cregular: HashMap<Pos, HashSet<Pos>> = HashMap::new();
    let mut cspecial: HashMap<Pos, HashSet<Pos>> = HashMap::new();
    let mut cowner: HashMap<(Pos, Pos), (usize, Symbol)> = HashMap::new();
    for n in &g.nodes {
        cnodes.insert(rep(*n));
    }
    for (f, tos) in &g.regular {
        for t in tos {
            cregular.entry(rep(*f)).or_default().insert(rep(*t));
        }
    }
    for (f, tos) in &g.special {
        for t in tos {
            let edge = (rep(*f), rep(*t));
            cspecial.entry(edge.0).or_default().insert(edge.1);
            let own = g.special_owner[&(*f, *t)];
            match cowner.get(&edge) {
                Some(prev) if prev.0 <= own.0 => {}
                _ => {
                    cowner.insert(edge, own);
                }
            }
        }
    }

    let scc = tarjan_scc(&cnodes, &cregular, &cspecial);
    let offending = offending_edges(&scc, &cspecial);
    let Some(&(from, to)) = offending.first() else {
        return Ok(to_position_graph(&cnodes, &cregular, &cspecial));
    };
    let cycle = witness_cycle(from, to, &scc, &cregular, &cspecial);
    let on_cycle: HashSet<Pos> = cycle.iter().copied().collect();
    // Blame the first schema-order EGD whose merge lies on the witness
    // cycle; fall back to the first merging EGD.
    let egd = merges
        .iter()
        .find(|(_, _, p)| on_cycle.contains(&rep(*p)))
        .map(|(_, name, _)| *name)
        .unwrap_or(merges[0].1);
    let tgd = cowner[&(from, to)].1;
    Err(UnknownReason::EgdContractionCycle { egd, tgd, cycle })
}

// ---------------------------------------------------------------------------
// Null-flow analysis (super-weak acyclicity + EGD footprints)
// ---------------------------------------------------------------------------

/// One *null class* per (TGD, existential variable): `occ` over-approximates
/// the set of positions where nulls of the class can ever occur, across any
/// chase sequence — seeded with the existential's conclusion positions,
/// closed under frontier copying (a class-N null can bind premise variable
/// `v` only when **every** premise position of `v` lies inside `occ(N)`)
/// and under EGD merges (two mergeable nulls can each end up wherever the
/// other occurs).
struct NullFlow {
    /// (constraint index of the owning TGD, existential variable).
    classes: Vec<(usize, Var)>,
    occ: Vec<HashSet<Pos>>,
}

impl NullFlow {
    /// Can a class-`k` null be the binding of a variable whose premise
    /// position set is `pv`? Requires a non-empty position set: a variable
    /// absent from the premise is never bound by matching.
    fn binds(&self, k: usize, pv: &[Pos]) -> bool {
        !pv.is_empty() && pv.iter().all(|p| self.occ[k].contains(p))
    }
}

fn null_flow(constraints: &[Constraint]) -> NullFlow {
    let mut flow = NullFlow {
        classes: Vec::new(),
        occ: Vec::new(),
    };
    // Pre-extracted shapes: (premise var positions, conclusion var positions)
    // per TGD; (premise var positions, equated vars) per EGD.
    let mut tgd_shapes: Vec<(VarPositions, VarPositions)> = Vec::new();
    let mut egd_shapes: Vec<(VarPositions, Vec<Var>)> = Vec::new();
    for (ci, c) in constraints.iter().enumerate() {
        match c {
            Constraint::Tgd(t) => {
                let cvp = var_positions(&t.conclusion);
                for e in t.existentials() {
                    let seed: HashSet<Pos> = cvp
                        .get(&e)
                        .map(|ps| ps.iter().copied().collect())
                        .unwrap_or_default();
                    flow.classes.push((ci, e));
                    flow.occ.push(seed);
                }
                tgd_shapes.push((var_positions(&t.premise), cvp));
            }
            Constraint::Egd(e) => {
                let mut eq = Vec::new();
                if let Term::Var(v) = &e.equal.0 {
                    eq.push(*v);
                }
                if let Term::Var(v) = &e.equal.1 {
                    eq.push(*v);
                }
                egd_shapes.push((var_positions(&e.premise), eq));
            }
        }
    }

    loop {
        let mut changed = false;
        for k in 0..flow.classes.len() {
            for (pvp, cvp) in &tgd_shapes {
                for (v, pv) in pvp {
                    if flow.binds(k, pv) {
                        if let Some(cs) = cvp.get(v) {
                            for q in cs {
                                changed |= flow.occ[k].insert(*q);
                            }
                        }
                    }
                }
            }
        }
        // EGD closure: when class k1 can bind one side of an equality and
        // class k2 the other, a merge can leave either null standing at any
        // position of the other.
        for (pvp, eq) in &egd_shapes {
            if eq.len() != 2 || eq[0] == eq[1] {
                continue;
            }
            let side = |v: &Var, flow: &NullFlow| -> Vec<usize> {
                let pv = pvp.get(v).cloned().unwrap_or_default();
                (0..flow.classes.len())
                    .filter(|&k| flow.binds(k, &pv))
                    .collect()
            };
            let left = side(&eq[0], &flow);
            let right = side(&eq[1], &flow);
            for &k1 in &left {
                for &k2 in &right {
                    if k1 == k2 {
                        continue;
                    }
                    let union: Vec<Pos> = flow.occ[k1].union(&flow.occ[k2]).copied().collect();
                    for p in union {
                        changed |= flow.occ[k1].insert(p);
                        changed |= flow.occ[k2].insert(p);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    flow
}

/// Super-weak acyclicity for EGD-free sets: build the null-creation graph
/// (class N → class N' iff N can bind some premise variable of N''s TGD)
/// and certify iff it is acyclic — then any chase sequence creates only
/// finitely many nulls, so it terminates.
fn super_weakly_acyclic(constraints: &[Constraint]) -> bool {
    let flow = null_flow(constraints);
    if flow.classes.is_empty() {
        return false;
    }
    // (constraint idx, premise var positions) per existential TGD.
    let creators: Vec<(usize, HashMap<Var, Vec<Pos>>)> = constraints
        .iter()
        .enumerate()
        .filter_map(|(ci, c)| match c {
            Constraint::Tgd(t) if !t.is_full() => Some((ci, var_positions(&t.premise))),
            _ => None,
        })
        .collect();
    let n = flow.classes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, out) in adj.iter_mut().enumerate() {
        for (ci, pvp) in &creators {
            if pvp.values().any(|pv| flow.binds(k, pv)) {
                for (k2, (ci2, _)) in flow.classes.iter().enumerate() {
                    if ci2 == ci {
                        out.push(k2);
                    }
                }
            }
        }
    }
    acyclic(&adj)
}

/// Three-colour DFS cycle check over an index adjacency list.
fn acyclic(adj: &[Vec<usize>]) -> bool {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; adj.len()];
    for s in 0..adj.len() {
        if color[s] != WHITE {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(s, 0)];
        color[s] = GRAY;
        while let Some(top) = stack.last_mut() {
            let v = top.0;
            if top.1 < adj[v].len() {
                let w = adj[v][top.1];
                top.1 += 1;
                match color[w] {
                    WHITE => {
                        color[w] = GRAY;
                        stack.push((w, 0));
                    }
                    GRAY => return false,
                    _ => {}
                }
            } else {
                color[v] = BLACK;
                stack.pop();
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Stratification
// ---------------------------------------------------------------------------

/// Partition `constraints` into strata along the firing/precedence graph:
/// `c₁ → c₂` iff a relation `c₁` can write or rewrite intersects the
/// relations `c₂` reads. A TGD's footprint is its conclusion predicates; an
/// EGD's footprint is the set of relations where a null it can actually
/// merge may occur (from the null-flow analysis — EGDs whose equality
/// positions no null can reach are inert). Returns the SCC condensation in
/// topological (execution) order; member indices ascending. A single
/// stratum means stratification makes no progress.
pub fn stratify(constraints: &[Constraint]) -> Vec<Vec<usize>> {
    let n = constraints.len();
    if n == 0 {
        return Vec::new();
    }
    let flow = null_flow(constraints);
    let mut reads: Vec<HashSet<Symbol>> = Vec::with_capacity(n);
    let mut affects: Vec<HashSet<Symbol>> = Vec::with_capacity(n);
    for c in constraints {
        match c {
            Constraint::Tgd(t) => {
                reads.push(atom_preds(&t.premise));
                affects.push(atom_preds(&t.conclusion));
            }
            Constraint::Egd(e) => {
                reads.push(atom_preds(&e.premise));
                let pvp = var_positions(&e.premise);
                let mut footprint: HashSet<Symbol> = HashSet::new();
                for term in [&e.equal.0, &e.equal.1] {
                    let Term::Var(v) = term else { continue };
                    let pv = pvp.get(v).cloned().unwrap_or_default();
                    for k in 0..flow.classes.len() {
                        if flow.binds(k, &pv) {
                            footprint.extend(flow.occ[k].iter().map(|p| p.0));
                        }
                    }
                }
                affects.push(footprint);
            }
        }
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for (j, r) in reads.iter().enumerate() {
            if i != j && affects[i].intersection(r).next().is_some() {
                adj[i].push(j);
            }
        }
    }
    let (comp, comp_count) = tarjan_scc_indices(&adj);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
    for (i, &cid) in comp.iter().enumerate() {
        members[cid].push(i);
    }
    // Kahn topological sort of the condensation, breaking ties by the
    // smallest constraint index in each component: independent strata run
    // in certified-constraint order, so the stratified chase reproduces
    // the whole-set chase's insertion order (pinned bit-identical by the
    // differential suite), not merely its fact set.
    let mut indegree = vec![0usize; comp_count];
    let mut cadj: Vec<HashSet<usize>> = vec![HashSet::new(); comp_count];
    for (i, out) in adj.iter().enumerate() {
        for &j in out {
            if comp[i] != comp[j] && cadj[comp[i]].insert(comp[j]) {
                indegree[comp[j]] += 1;
            }
        }
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> = (0..comp_count)
        .filter(|&c| indegree[c] == 0)
        .map(|c| std::cmp::Reverse((members[c][0], c)))
        .collect();
    let mut strata: Vec<Vec<usize>> = Vec::with_capacity(comp_count);
    while let Some(std::cmp::Reverse((_, c))) = heap.pop() {
        for &d in &cadj[c] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                heap.push(std::cmp::Reverse((members[d][0], d)));
            }
        }
        strata.push(std::mem::take(&mut members[c]));
    }
    strata
}

/// Stratify and certify each stratum via a non-stratified rung. `None`
/// when stratification makes no progress or some stratum fails.
fn certified_strata(constraints: &[Constraint]) -> Option<Vec<Stratum>> {
    let parts = stratify(constraints);
    if parts.len() < 2 {
        return None;
    }
    let mut strata = Vec::with_capacity(parts.len());
    for members in parts {
        let subset: Vec<Constraint> = members.iter().map(|&i| constraints[i].clone()).collect();
        let certificate = certify_with(&subset, false);
        if !certificate.guarantees_termination() {
            return None;
        }
        let names = members.iter().map(|&i| constraints[i].name()).collect();
        strata.push(Stratum {
            members,
            names,
            certificate,
        });
    }
    Some(strata)
}

/// Iterative Tarjan over an index adjacency list; returns (component id
/// per node, component count). Components are numbered in emission order,
/// which is reverse topological.
fn tarjan_scc_indices(adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNSET; n];
    let mut next = 0usize;
    let mut comp_count = 0usize;
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(top) = call.last_mut() {
            let v = top.0;
            if top.1 < adj[v].len() {
                let w = adj[v][top.1];
                top.1 += 1;
                if index[w] == UNSET {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp[w] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    (comp, comp_count)
}

/// Close the offending special edge `from ⇒ to` into a concrete cycle:
/// BFS (with deterministically ordered neighbour expansion) from `to` back
/// to `from`, restricted to their shared SCC. Returns
/// `[from, to, …, from]`; for a self-loop, `[from, from]`.
fn witness_cycle(
    from: Pos,
    to: Pos,
    scc: &HashMap<Pos, usize>,
    regular: &HashMap<Pos, HashSet<Pos>>,
    special: &HashMap<Pos, HashSet<Pos>>,
) -> Vec<Pos> {
    if from == to {
        return vec![from, to];
    }
    let comp = scc[&from];
    let neighbors = |v: &Pos| -> Vec<Pos> {
        let mut out: Vec<Pos> = Vec::new();
        for m in [regular, special] {
            if let Some(e) = m.get(v) {
                out.extend(e.iter().copied());
            }
        }
        out.retain(|w| scc.get(w) == Some(&comp));
        out.sort_by_key(pos_key);
        out.dedup();
        out
    };
    let mut parent: HashMap<Pos, Pos> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(to);
    'bfs: while let Some(v) = queue.pop_front() {
        for w in neighbors(&v) {
            if w == to || parent.contains_key(&w) {
                continue;
            }
            parent.insert(w, v);
            if w == from {
                break 'bfs;
            }
            queue.push_back(w);
        }
    }
    // `from` and `to` share an SCC, so a to→from path must exist.
    let mut back = vec![from];
    let mut cur = from;
    while cur != to {
        cur = parent[&cur];
        back.push(cur);
    }
    back.push(from);
    // back = [from, …path reversed…, to, from]; reorder to start at `from`
    // with the special edge first: [from, to, …, from].
    back.reverse();
    // now back = [from, to, …, from] — reversed path is exactly the walk.
    back
}

impl ChaseConfig {
    /// Apply a termination certificate to this configuration: any verdict
    /// that proves termination ([`TerminationCertificate::WeaklyAcyclic`],
    /// [`TerminationCertificate::SuperWeaklyAcyclic`],
    /// [`TerminationCertificate::Stratified`]) lifts the round/fact budgets
    /// (the fixpoint is statically guaranteed, so the guard only costs
    /// comparisons); any other verdict leaves the budget guard untouched.
    pub fn with_certificate(self, cert: &TerminationCertificate) -> ChaseConfig {
        if cert.guarantees_termination() {
            ChaseConfig {
                max_rounds: usize::MAX,
                max_facts: usize::MAX,
                ..self
            }
        } else {
            self
        }
    }
}

/// Tarjan SCC over the union of regular and special edges; returns the
/// component index per node.
fn tarjan_scc(
    nodes: &HashSet<Pos>,
    regular: &HashMap<Pos, HashSet<Pos>>,
    special: &HashMap<Pos, HashSet<Pos>>,
) -> HashMap<Pos, usize> {
    struct State<'a> {
        index: usize,
        indices: HashMap<Pos, usize>,
        lowlink: HashMap<Pos, usize>,
        on_stack: HashSet<Pos>,
        stack: Vec<Pos>,
        comp: HashMap<Pos, usize>,
        comp_count: usize,
        regular: &'a HashMap<Pos, HashSet<Pos>>,
        special: &'a HashMap<Pos, HashSet<Pos>>,
    }

    fn neighbors(s: &State<'_>, v: &Pos) -> Vec<Pos> {
        let mut out = Vec::new();
        if let Some(e) = s.regular.get(v) {
            out.extend(e.iter().copied());
        }
        if let Some(e) = s.special.get(v) {
            out.extend(e.iter().copied());
        }
        out
    }

    // Iterative Tarjan (explicit stack) to avoid recursion limits.
    fn strongconnect(s: &mut State<'_>, root: Pos) {
        let mut call_stack: Vec<(Pos, Vec<Pos>, usize)> = Vec::new();
        call_stack.push((root, neighbors(s, &root), 0));
        s.indices.insert(root, s.index);
        s.lowlink.insert(root, s.index);
        s.index += 1;
        s.stack.push(root);
        s.on_stack.insert(root);

        while let Some((v, neigh, mut i)) = call_stack.pop() {
            let mut descended = false;
            while i < neigh.len() {
                let w = neigh[i];
                i += 1;
                if !s.indices.contains_key(&w) {
                    // Descend into w.
                    call_stack.push((v, neigh.clone(), i));
                    s.indices.insert(w, s.index);
                    s.lowlink.insert(w, s.index);
                    s.index += 1;
                    s.stack.push(w);
                    s.on_stack.insert(w);
                    call_stack.push((w, neighbors(s, &w), 0));
                    descended = true;
                    break;
                } else if s.on_stack.contains(&w) {
                    let lw = s.indices[&w];
                    let lv = s.lowlink[&v];
                    s.lowlink.insert(v, lv.min(lw));
                }
            }
            if descended {
                continue;
            }
            // v finished: pop SCC if root.
            if s.lowlink[&v] == s.indices[&v] {
                loop {
                    let w = s.stack.pop().unwrap();
                    s.on_stack.remove(&w);
                    s.comp.insert(w, s.comp_count);
                    if w == v {
                        break;
                    }
                }
                s.comp_count += 1;
            }
            // Propagate lowlink to parent.
            if let Some((p, _, _)) = call_stack.last() {
                let lv = s.lowlink[&v];
                let lp = s.lowlink[p];
                let p = *p;
                s.lowlink.insert(p, lp.min(lv));
            }
        }
    }

    let mut s = State {
        index: 0,
        indices: HashMap::new(),
        lowlink: HashMap::new(),
        on_stack: HashSet::new(),
        stack: Vec::new(),
        comp: HashMap::new(),
        comp_count: 0,
        regular,
        special,
    };
    for n in nodes {
        if !s.indices.contains_key(n) {
            strongconnect(&mut s, *n);
        }
    }
    s.comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_pivot::{Atom, Egd, Tgd};

    fn tgd(name: &str, premise: Vec<Atom>, conclusion: Vec<Atom>) -> Constraint {
        Tgd::new(name, premise, conclusion).into()
    }

    fn key_egd() -> Constraint {
        // T(k, v) ∧ T(k, v') → v = v'
        Egd::new(
            "t_key",
            vec![
                Atom::new("T", vec![Term::var(0), Term::var(1)]),
                Atom::new("T", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        )
        .into()
    }

    /// A(x) → ∃y B(x, y)
    fn feeder() -> Constraint {
        tgd(
            "t",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("B", vec![Term::var(0), Term::var(1)])],
        )
    }

    #[test]
    fn full_tgds_are_weakly_acyclic() {
        let t = tgd(
            "t",
            vec![Atom::new("Child", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Desc", vec![Term::var(0), Term::var(1)])],
        );
        assert!(weakly_acyclic(&[t]));
    }

    #[test]
    fn classic_infinite_pair_is_rejected() {
        // R(x) → ∃y S(x,y); S(x,y) → R(y)
        let t1 = tgd(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = tgd(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        assert!(!weakly_acyclic(&[t1, t2]));
    }

    #[test]
    fn acyclic_existentials_are_fine() {
        // Person(x) → ∃y HasParent(x, y) with nothing flowing back.
        let t = tgd(
            "t",
            vec![Atom::new("Person", vec![Term::var(0)])],
            vec![Atom::new("HasParent", vec![Term::var(0), Term::var(1)])],
        );
        assert!(weakly_acyclic(&[t]));
    }

    #[test]
    fn self_loop_with_existential_rejected() {
        // S(x,y) → ∃z S(y,z): the null flows into S.1 and re-binds y, so
        // neither SWA nor stratification (single constraint) discharges it.
        let t = tgd(
            "t",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("S", vec![Term::var(1), Term::var(2)])],
        );
        assert!(!weakly_acyclic(&[t]));
    }

    #[test]
    fn view_constraint_pairs_are_weakly_acyclic() {
        use estocada_pivot::{CqBuilder, ViewDef};
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "z"])
                .atom("R", |a| a.v("x").v("y"))
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let cs: Vec<Constraint> = v.constraints().into();
        assert!(weakly_acyclic(&cs));
    }

    #[test]
    fn certificate_carries_witness_cycle() {
        let t1 = tgd(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = tgd(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        let cert = certify(&[t1, t2]);
        let cycle = cert.cycle().expect("non-terminating");
        assert!(cycle.len() >= 2);
        assert_eq!(cycle.first(), cycle.last());
        // First step is the offending special edge: R.0 ⇒ S.1.
        assert_eq!(pos_str(&cycle[0]), "R.0");
        assert_eq!(pos_str(&cycle[1]), "S.1");
        assert!(!cert.guarantees_termination());
    }

    #[test]
    fn certify_is_deterministic() {
        let build = || {
            vec![
                tgd(
                    "t1",
                    vec![Atom::new("R", vec![Term::var(0)])],
                    vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
                ),
                tgd(
                    "t2",
                    vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
                    vec![Atom::new("R", vec![Term::var(1)])],
                ),
                tgd(
                    "t3",
                    vec![Atom::new("R", vec![Term::var(0)])],
                    vec![Atom::new("U", vec![Term::var(0), Term::var(1)])],
                ),
            ]
        };
        assert_eq!(certify(&build()), certify(&build()));
        assert_eq!(
            format!("{}", certify(&build())),
            format!("{}", certify(&build()))
        );
    }

    // Satellite: key EGDs equate values at the same position, so the
    // contraction is a no-op and the EGD-mixed set certifies WeaklyAcyclic
    // instead of degrading to Unknown — the budget guard is lifted.
    #[test]
    fn key_egds_no_longer_degrade_existential_tgds() {
        let t = tgd(
            "t",
            vec![Atom::new("Person", vec![Term::var(0)])],
            vec![Atom::new("HasParent", vec![Term::var(0), Term::var(1)])],
        );
        let cert = certify(&[t.clone(), key_egd()]);
        assert!(
            matches!(cert, TerminationCertificate::WeaklyAcyclic { .. }),
            "got {cert}"
        );
        assert!(cert.guarantees_termination());
        assert!(weakly_acyclic(&[t, key_egd()]));
        let cfg = ChaseConfig::default().with_certificate(&cert);
        assert_eq!(cfg.max_rounds, usize::MAX);
        assert_eq!(cfg.max_facts, usize::MAX);
    }

    #[test]
    fn swa_certifies_what_plain_wa_rejects() {
        // R(x,x) → ∃y R(x,y): the plain graph has a special-edge cycle
        // (R.1 ⇒ R.1), but the invented null only ever occupies R.1 while
        // re-firing needs it at R.0 and R.1 simultaneously.
        let t = tgd(
            "t",
            vec![Atom::new("R", vec![Term::var(0), Term::var(0)])],
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
        );
        let cert = certify(std::slice::from_ref(&t));
        match &cert {
            TerminationCertificate::SuperWeaklyAcyclic { discharged, .. } => {
                assert!(!discharged.is_empty());
            }
            other => panic!("expected SuperWeaklyAcyclic, got {other}"),
        }
        assert!(cert.guarantees_termination());
        let cfg = ChaseConfig::default().with_certificate(&cert);
        assert_eq!(cfg.max_rounds, usize::MAX);
        assert!(format!("{cert}").contains("super-weakly acyclic"));
    }

    #[test]
    fn stratified_certifies_egd_feedback_across_strata() {
        // t: A(x) → ∃y B(x,y); e: B(x,y) ∧ A(x) → y = x. Contraction
        // merges {A.0, B.0, B.1} into a special self-loop, but the EGD
        // only rewrites B while t only reads A — the strata [t], [e] each
        // certify on their own.
        let e: Constraint = Egd::new(
            "e",
            vec![
                Atom::new("B", vec![Term::var(0), Term::var(1)]),
                Atom::new("A", vec![Term::var(0)]),
            ],
            (Term::var(1), Term::var(0)),
        )
        .into();
        let cs = vec![feeder(), e];
        let cert = certify(&cs);
        match &cert {
            TerminationCertificate::Stratified { strata } => {
                assert_eq!(strata.len(), 2);
                assert_eq!(strata[0].members, vec![0]);
                assert_eq!(strata[1].members, vec![1]);
                assert!(strata
                    .iter()
                    .all(|s| s.certificate.guarantees_termination()));
            }
            other => panic!("expected Stratified, got {other}"),
        }
        assert!(cert.guarantees_termination());
        let cfg = ChaseConfig::default().with_certificate(&cert);
        assert_eq!(cfg.max_rounds, usize::MAX);
        assert!(format!("{cert}").contains("stratified (2 strata"));
    }

    #[test]
    fn unmergeable_cycle_names_blocking_pair() {
        // t1: A(x) → ∃y B(x,y); t2: B(x,y) → A(x); e: B(x,y) → x = y.
        // The contraction merges B.0 ~ B.1, closing A.0 ⇒ B.0 → A.0, and
        // the EGD rewrites B which both TGDs touch — one stratum, Unknown.
        let t2 = tgd(
            "t2",
            vec![Atom::new("B", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("A", vec![Term::var(0)])],
        );
        let e: Constraint = Egd::new(
            "e",
            vec![Atom::new("B", vec![Term::var(0), Term::var(1)])],
            (Term::var(0), Term::var(1)),
        )
        .into();
        let cs = vec![feeder(), t2, e];
        let cert = certify(&cs);
        assert!(
            matches!(cert, TerminationCertificate::Unknown { .. }),
            "got {cert}"
        );
        let (egd, tgd_name) = cert.blocking_pair().expect("blocking pair");
        assert_eq!(egd.to_string(), "e");
        assert_eq!(tgd_name.to_string(), "t");
        let shown = format!("{cert}");
        assert!(shown.contains("EGD e"), "{shown}");
        assert!(shown.contains("TGD t"), "{shown}");
        // The budget guard survives.
        assert!(!cert.guarantees_termination());
        let cfg = ChaseConfig::default().with_certificate(&cert);
        assert_eq!(cfg.max_rounds, ChaseConfig::default().max_rounds);
        assert_eq!(cfg.max_facts, ChaseConfig::default().max_facts);
        // Determinism across rebuilds, value and rendering both.
        let rebuilt = certify(&[
            feeder(),
            tgd(
                "t2",
                vec![Atom::new("B", vec![Term::var(0), Term::var(1)])],
                vec![Atom::new("A", vec![Term::var(0)])],
            ),
            Egd::new(
                "e",
                vec![Atom::new("B", vec![Term::var(0), Term::var(1)])],
                (Term::var(0), Term::var(1)),
            )
            .into(),
        ]);
        assert_eq!(cert, rebuilt);
        assert_eq!(shown, format!("{rebuilt}"));
    }

    #[test]
    fn egd_with_full_tgds_is_weakly_acyclic() {
        // No existentials anywhere: EGD merges can only shrink the active
        // domain, so the verdict stays WeaklyAcyclic.
        let t = tgd(
            "t",
            vec![Atom::new("Child", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Desc", vec![Term::var(0), Term::var(1)])],
        );
        let cert = certify(&[t, key_egd()]);
        assert!(cert.guarantees_termination());
    }

    #[test]
    fn egds_do_not_mask_a_divergent_tgd_cycle() {
        // Key EGDs are everywhere in real schemas; a genuinely divergent
        // TGD pair must still produce its witness (the EGD lands in its
        // own stratum, but the divergent stratum fails certification).
        let t1 = tgd(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = tgd(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        let cert = certify(&[t1, t2, key_egd()]);
        assert!(cert.cycle().is_some());
    }

    #[test]
    fn stratify_orders_strata_topologically() {
        let e: Constraint = Egd::new(
            "e",
            vec![
                Atom::new("B", vec![Term::var(0), Term::var(1)]),
                Atom::new("A", vec![Term::var(0)]),
            ],
            (Term::var(1), Term::var(0)),
        )
        .into();
        let cs = vec![e, feeder()]; // EGD declared first
        let parts = stratify(&cs);
        // The TGD stratum must still execute before the EGD stratum.
        assert_eq!(parts, vec![vec![1], vec![0]]);
    }

    #[test]
    fn certificate_lifts_budget_only_when_terminating() {
        let full = tgd(
            "t",
            vec![Atom::new("Child", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Desc", vec![Term::var(0), Term::var(1)])],
        );
        let cert = certify(std::slice::from_ref(&full));
        let cfg = ChaseConfig::default().with_certificate(&cert);
        assert_eq!(cfg.max_rounds, usize::MAX);
        assert_eq!(cfg.max_facts, usize::MAX);

        let t1 = tgd(
            "t1",
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
        );
        let t2 = tgd(
            "t2",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("R", vec![Term::var(1)])],
        );
        let cert = certify(&[t1, t2]);
        let cfg = ChaseConfig::default().with_certificate(&cert);
        assert_eq!(cfg.max_rounds, ChaseConfig::default().max_rounds);
        assert_eq!(cfg.max_facts, ChaseConfig::default().max_facts);
    }
}
