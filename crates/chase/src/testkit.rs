//! Shared rewrite-problem generators for tests and benches.
//!
//! The parallel-backchase unit tests (`pacb`), the differential suite
//! (`tests/parallel_backchase_properties.rs`) and the scaling bench
//! (`e6_parallel_backchase`) must all exercise the *same* multi-candidate
//! workload; keeping the single definition here stops the three from
//! silently drifting apart.

use crate::instance::{Elem, Instance};
use crate::pacb::RewriteProblem;
use estocada_pivot::{Atom, Constraint, CqBuilder, Egd, Symbol, Term, Tgd, ViewDef};

/// Chain problem `Q(x0,xk) :- R0(x0,x1), …, R(k-1)(x(k-1),xk)` with **two
/// interchangeable views per edge** (`Vi`/`Wi`): 2^k minimal rewritings,
/// i.e. 2^k independent verification chases to fan out.
pub fn wide_chain_problem(k: usize) -> RewriteProblem {
    let mut qb = CqBuilder::new("Q").head_vars(["x0"]);
    let mut q = {
        for i in 0..k {
            let a = format!("x{i}");
            let b = format!("x{}", i + 1);
            qb = qb.atom(format!("R{i}").as_str(), move |ab| ab.v(&a).v(&b));
        }
        qb.build()
    };
    let last = q.body[k - 1].args[1].clone();
    q.head.push(last);
    let mut views = Vec::new();
    for i in 0..k {
        for prefix in ["V", "W"] {
            views.push(ViewDef::new(
                CqBuilder::new(format!("{prefix}{i}").as_str())
                    .head_vars(["a", "b"])
                    .atom(format!("R{i}").as_str(), |x| x.v("a").v("b"))
                    .build(),
            ));
        }
    }
    RewriteProblem::new(q, views)
}

/// EGD-heavy instance for the incremental-normalization benchmark
/// (`e7_egd_merge`) and the differential merge suite: `keys` key groups of
/// `dups` facts `R(k, N_{k,j})` whose second columns a functional
/// dependency merges pairwise (`keys × (dups − 1)` EGD merges), plus
/// `ballast` untouched facts `B(i, i)` that a full index rebuild must walk
/// on every merge but an incremental merge never sees.
pub fn egd_merge_instance(keys: usize, dups: usize, ballast: usize) -> (Instance, Egd) {
    let mut inst = Instance::new();
    for i in 0..ballast {
        inst.insert(
            estocada_pivot::Symbol::intern("B"),
            vec![Elem::of(i as i64), Elem::of(i as i64)],
        );
    }
    let r = estocada_pivot::Symbol::intern("R");
    for k in 0..keys {
        for _ in 0..dups {
            let n = inst.fresh_null();
            inst.insert(r, vec![Elem::of(k as i64), n]);
        }
    }
    let fd = Egd::new(
        "fd",
        vec![
            Atom::new("R", vec![Term::var(0), Term::var(1)]),
            Atom::new("R", vec![Term::var(0), Term::var(2)]),
        ],
        (Term::var(1), Term::var(2)),
    );
    (inst, fd)
}

/// Full observable state of an instance — fact ids, rendered facts,
/// provenance formulas, change epochs — the bit-identity yardstick the
/// phase-split unit tests, the differential suite
/// (`tests/phase_split_properties.rs`) and the `e8_phase_split` bench all
/// compare. One definition so the three cannot silently drift on what
/// counts as observable.
pub fn dump_state(i: &Instance) -> Vec<(u32, String, String, u64)> {
    i.fact_ids()
        .map(|id| {
            (
                id,
                i.format_fact(id),
                format!("{:?}", i.fact(id).prov),
                i.fact_epoch(id),
            )
        })
        .collect()
}

/// Probe-heavy multi-constraint chase workload for the phase-split bench
/// (`e8_phase_split`) and the differential suite
/// (`tests/phase_split_properties.rs`): `rels` independent edge relations
/// `E0..`, each with a copy TGD `Ei(x,y) → Pi(x,y)` and a transitivity TGD
/// `Pi(x,y) ∧ Pi(y,z) → Pi(x,z)`, seeded with a `chain`-node path per
/// relation. Closing the chain re-derives every pair `Pi(a,c)` through
/// each midpoint `b`, so trigger counts grow cubically while distinct
/// applicability keys stay quadratic — the memo-hit hot case — and the
/// `2 × rels` independent per-constraint searches give the parallel
/// search phase real fan-out width.
pub fn phase_split_workload(rels: usize, chain: usize) -> (Instance, Vec<Constraint>) {
    let mut inst = Instance::new();
    let mut constraints: Vec<Constraint> = Vec::new();
    for r in 0..rels {
        let e = Symbol::intern(&format!("E{r}"));
        for k in 0..chain {
            inst.insert(e, vec![Elem::of(k as i64), Elem::of((k + 1) as i64)]);
        }
        constraints.push(
            Tgd::new(
                format!("e2p{r}").as_str(),
                vec![Atom::new(
                    format!("E{r}").as_str(),
                    vec![Term::var(0), Term::var(1)],
                )],
                vec![Atom::new(
                    format!("P{r}").as_str(),
                    vec![Term::var(0), Term::var(1)],
                )],
            )
            .into(),
        );
        constraints.push(
            Tgd::new(
                format!("trans{r}").as_str(),
                vec![
                    Atom::new(format!("P{r}").as_str(), vec![Term::var(0), Term::var(1)]),
                    Atom::new(format!("P{r}").as_str(), vec![Term::var(1), Term::var(2)]),
                ],
                vec![Atom::new(
                    format!("P{r}").as_str(),
                    vec![Term::var(0), Term::var(2)],
                )],
            )
            .into(),
        );
    }
    (inst, constraints)
}

/// Star problem `Q(c) :- Hub(c), S0(c,y0), …` with two interchangeable
/// views per satellite (`VSi`/`WSi`): 2^k minimal rewritings.
pub fn wide_star_problem(k: usize) -> RewriteProblem {
    let mut qb = CqBuilder::new("Q").head_vars(["c"]);
    qb = qb.atom("Hub", |a| a.v("c"));
    for i in 0..k {
        let y = format!("y{i}");
        qb = qb.atom(format!("S{i}").as_str(), move |a| a.v("c").v(&y));
    }
    let q = qb.build();
    let mut views = vec![ViewDef::new(
        CqBuilder::new("VHub")
            .head_vars(["c"])
            .atom("Hub", |a| a.v("c"))
            .build(),
    )];
    for i in 0..k {
        for prefix in ["VS", "WS"] {
            views.push(ViewDef::new(
                CqBuilder::new(format!("{prefix}{i}").as_str())
                    .head_vars(["c", "y"])
                    .atom(format!("S{i}").as_str(), |a| a.v("c").v("y"))
                    .build(),
            ));
        }
    }
    RewriteProblem::new(q, views)
}
