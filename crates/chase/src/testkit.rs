//! Shared rewrite-problem generators for tests and benches.
//!
//! The parallel-backchase unit tests (`pacb`), the differential suite
//! (`tests/parallel_backchase_properties.rs`) and the scaling bench
//! (`e6_parallel_backchase`) must all exercise the *same* multi-candidate
//! workload; keeping the single definition here stops the three from
//! silently drifting apart.

use crate::instance::{Elem, Instance};
use crate::pacb::RewriteProblem;
use estocada_pivot::{Atom, CqBuilder, Egd, Term, ViewDef};

/// Chain problem `Q(x0,xk) :- R0(x0,x1), …, R(k-1)(x(k-1),xk)` with **two
/// interchangeable views per edge** (`Vi`/`Wi`): 2^k minimal rewritings,
/// i.e. 2^k independent verification chases to fan out.
pub fn wide_chain_problem(k: usize) -> RewriteProblem {
    let mut qb = CqBuilder::new("Q").head_vars(["x0"]);
    let mut q = {
        for i in 0..k {
            let a = format!("x{i}");
            let b = format!("x{}", i + 1);
            qb = qb.atom(format!("R{i}").as_str(), move |ab| ab.v(&a).v(&b));
        }
        qb.build()
    };
    let last = q.body[k - 1].args[1].clone();
    q.head.push(last);
    let mut views = Vec::new();
    for i in 0..k {
        for prefix in ["V", "W"] {
            views.push(ViewDef::new(
                CqBuilder::new(format!("{prefix}{i}").as_str())
                    .head_vars(["a", "b"])
                    .atom(format!("R{i}").as_str(), |x| x.v("a").v("b"))
                    .build(),
            ));
        }
    }
    RewriteProblem::new(q, views)
}

/// EGD-heavy instance for the incremental-normalization benchmark
/// (`e7_egd_merge`) and the differential merge suite: `keys` key groups of
/// `dups` facts `R(k, N_{k,j})` whose second columns a functional
/// dependency merges pairwise (`keys × (dups − 1)` EGD merges), plus
/// `ballast` untouched facts `B(i, i)` that a full index rebuild must walk
/// on every merge but an incremental merge never sees.
pub fn egd_merge_instance(keys: usize, dups: usize, ballast: usize) -> (Instance, Egd) {
    let mut inst = Instance::new();
    for i in 0..ballast {
        inst.insert(
            estocada_pivot::Symbol::intern("B"),
            vec![Elem::of(i as i64), Elem::of(i as i64)],
        );
    }
    let r = estocada_pivot::Symbol::intern("R");
    for k in 0..keys {
        for _ in 0..dups {
            let n = inst.fresh_null();
            inst.insert(r, vec![Elem::of(k as i64), n]);
        }
    }
    let fd = Egd::new(
        "fd",
        vec![
            Atom::new("R", vec![Term::var(0), Term::var(1)]),
            Atom::new("R", vec![Term::var(0), Term::var(2)]),
        ],
        (Term::var(1), Term::var(2)),
    );
    (inst, fd)
}

/// Star problem `Q(c) :- Hub(c), S0(c,y0), …` with two interchangeable
/// views per satellite (`VSi`/`WSi`): 2^k minimal rewritings.
pub fn wide_star_problem(k: usize) -> RewriteProblem {
    let mut qb = CqBuilder::new("Q").head_vars(["c"]);
    qb = qb.atom("Hub", |a| a.v("c"));
    for i in 0..k {
        let y = format!("y{i}");
        qb = qb.atom(format!("S{i}").as_str(), move |a| a.v("c").v(&y));
    }
    let q = qb.build();
    let mut views = vec![ViewDef::new(
        CqBuilder::new("VHub")
            .head_vars(["c"])
            .atom("Hub", |a| a.v("c"))
            .build(),
    )];
    for i in 0..k {
        for prefix in ["VS", "WS"] {
            views.push(ViewDef::new(
                CqBuilder::new(format!("{prefix}{i}").as_str())
                    .head_vars(["c", "y"])
                    .atom(format!("S{i}").as_str(), |a| a.v("c").v("y"))
                    .build(),
            ));
        }
    }
    RewriteProblem::new(q, views)
}
