//! The provenance-aware chase: the engine of the PACB backchase.
//!
//! Differences from the standard chase:
//!
//! - every fact carries a monotone-DNF provenance formula over the
//!   provenance variables of the initial (universal-plan) facts;
//! - firing a TGD propagates the *conjunction* of the trigger facts'
//!   provenance to the conclusion facts; re-derivations extend provenance by
//!   *disjunction*;
//! - existential variables are Skolemized per (constraint, frontier binding)
//!   so that re-firing a trigger hits the same conclusion facts — this makes
//!   provenance propagation a well-defined fixpoint computation;
//! - EGDs fire only when the trigger provenance is `⊤` (derivable under
//!   every subset). This is a *conservative* treatment: it can only lose
//!   candidate rewritings, never fabricate them, and PACB verifies every
//!   candidate before reporting it (see `pacb` module docs).
//!
//! Like the standard chase, the loop is **semi-naive**: after the first
//! round only triggers touching the previous round's delta are searched
//! ([`crate::hom::find_homs_delta`]). Because provenance *growth* also
//! bumps a fact's change epoch (see
//! [`crate::instance::Instance::insert_with_prov`]), re-derivations whose
//! only effect is a wider provenance formula still re-trigger downstream
//! constraints — the provenance fixpoint is reached exactly as in the naive
//! loop.
//!
//! # The search/apply phase split
//!
//! Each round follows the same two-phase contract as the standard chase
//! (see [`mod@crate::chase`]): a **read-only search phase** enumerates every
//! constraint's triggers against the frozen round-start instance — fanned
//! out over [`ProvChaseConfig::search_workers`] workers, each with a
//! private [`HomArena`], results reassembled in constraint order — then a
//! **serial apply phase** fires them in constraint order. Firing
//! re-resolves every binding under the live union-find and re-reads live
//! provenance (the Skolem memo, the trigger-conjunction build, and the
//! EGD certainty filter all consult the instance at fire time), so the
//! run — firing order, Skolem naming, provenance formulas, stats, and
//! `Inconsistent` errors — is bit-identical at any worker count.
//! Same-round discoveries deferred by the split land in the next round's
//! delta; the provenance fixpoint reached is the naive loop's.

use crate::chase::{
    apply_egd_homs, conclusion_frontier, search_item_bound, search_triggers, ChaseError,
    ChaseStats, CompiledTerm, LazySearchPool, NullInvalidate,
};
use crate::hom::{HomArena, HomConfig};
use crate::instance::{Elem, Instance};
use crate::prov::Dnf;
use crate::wa::TerminationCertificate;
use estocada_pivot::{Constraint, Symbol, Var};
use std::collections::HashMap;

/// Budget and knobs of a provenance chase run.
#[derive(Debug, Clone, Copy)]
pub struct ProvChaseConfig {
    /// Maximum full rounds over the constraint set.
    pub max_rounds: usize,
    /// Maximum fact count.
    pub max_facts: usize,
    /// Cap on the number of DNF clauses kept per fact; beyond it the
    /// smallest clauses win and the run is flagged truncated.
    pub clause_cap: usize,
    /// Homomorphism search knobs.
    pub hom: HomConfig,
    /// Worker threads for the read-only trigger-search phase (`<= 1` =
    /// serial). Any value produces a bit-identical provenance chase — see
    /// the module docs' phase-split contract.
    pub search_workers: usize,
    /// Minimum alive-fact count before the search phase actually fans out
    /// — see [`crate::chase::ChaseConfig::search_min_facts`].
    pub search_min_facts: usize,
    /// Maintain the Skolem table's null-occurrence index so EGD merges
    /// invalidate (garbage-collect) entries keyed on retired nulls, and
    /// count Skolem hits/misses in the memo counters — the PR 4
    /// applicability-memo discipline extended to the provenance chase.
    /// Resolved lookup keys never mention a retired null, so the setting
    /// cannot change which Skolem images a trigger sees: core stats,
    /// instances and errors are identical either way.
    pub memo: bool,
}

impl Default for ProvChaseConfig {
    fn default() -> Self {
        ProvChaseConfig {
            max_rounds: 2_000,
            max_facts: 200_000,
            clause_cap: 2_048,
            hom: HomConfig::default(),
            search_workers: 1,
            search_min_facts: crate::chase::SEARCH_PARALLEL_MIN_FACTS,
            memo: true,
        }
    }
}

impl ProvChaseConfig {
    /// Copy of this configuration with the round/fact budgets lifted to
    /// effectively-unbounded when `cert` guarantees termination; returned
    /// unchanged otherwise. The provenance-chase analogue of
    /// [`crate::chase::ChaseConfig::with_certificate`].
    pub fn with_certificate(&self, cert: &TerminationCertificate) -> ProvChaseConfig {
        let mut cfg = *self;
        if cert.guarantees_termination() {
            cfg.max_rounds = usize::MAX;
            cfg.max_facts = usize::MAX;
        }
        cfg
    }
}

/// The provenance chase's Skolem memo: `(constraint index, resolved
/// frontier images) → existential images`, with the same
/// occurrence-indexed invalidation as the standard chase's applicability
/// memo. An EGD merge retiring null `n` drops exactly the entries whose
/// *key* mentions `n` — those keys are unreachable forever (lookup keys
/// are resolved under the live union-find, which never returns a retired
/// id), so invalidation is pure garbage collection and provably
/// behaviour-neutral. Stored *values* may mention retired nulls; they are
/// re-resolved at every lookup, so they stay correct without indexing.
struct SkolemTable {
    map: HashMap<(usize, Vec<Elem>), Vec<Elem>>,
    /// null id → keys mentioning it (maintained only when `track`).
    occ: HashMap<u32, Vec<(usize, Vec<Elem>)>>,
    /// Whether to maintain `occ` ([`ProvChaseConfig::memo`]).
    track: bool,
}

impl SkolemTable {
    fn new(track: bool) -> SkolemTable {
        SkolemTable {
            map: HashMap::new(),
            occ: HashMap::new(),
            track,
        }
    }

    fn get(&self, key: &(usize, Vec<Elem>)) -> Option<&Vec<Elem>> {
        self.map.get(key)
    }

    fn insert(&mut self, key: (usize, Vec<Elem>), value: Vec<Elem>) {
        if self.track {
            for e in &key.1 {
                if let Elem::Null(n) = e {
                    self.occ.entry(*n).or_default().push(key.clone());
                }
            }
        }
        self.map.insert(key, value);
    }
}

impl NullInvalidate for SkolemTable {
    fn invalidate_null(&mut self, retired: u32) {
        if !self.track {
            return;
        }
        let Some(keys) = self.occ.remove(&retired) else {
            return;
        };
        for key in keys {
            self.map.remove(&key);
        }
    }
}

/// Outcome counters of a provenance chase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvChaseStats {
    /// Underlying chase counters.
    pub chase: ChaseStats,
    /// Whether any provenance formula was truncated (completeness may be
    /// reduced; soundness is unaffected).
    pub truncated: bool,
}

/// Run the provenance-aware chase to (provenance) fixpoint.
pub fn prov_chase(
    instance: &mut Instance,
    constraints: &[Constraint],
    cfg: &ProvChaseConfig,
) -> Result<ProvChaseStats, ChaseError> {
    prov_chase_with(&mut HomArena::new(), instance, constraints, cfg)
}

/// [`prov_chase`] with caller-provided homomorphism scratch.
pub fn prov_chase_with(
    arena: &mut HomArena,
    instance: &mut Instance,
    constraints: &[Constraint],
    cfg: &ProvChaseConfig,
) -> Result<ProvChaseStats, ChaseError> {
    let mut stats = ProvChaseStats::default();
    // Skolem memo: (constraint index, frontier images) → existential images.
    let mut skolems = SkolemTable::new(cfg.memo);
    // One search pool for the whole run, spawned lazily on the first round
    // that fans out and reused by every later round (see `chase_with`).
    let mut pool = LazySearchPool::new(cfg.search_workers, search_item_bound(constraints));
    // Epoch threshold of the previous round's delta; `None` = first round.
    let mut threshold: Option<u64> = None;

    loop {
        if stats.chase.rounds >= cfg.max_rounds {
            return Err(ChaseError::Budget {
                rounds: stats.chase.rounds,
                facts: instance.len(),
            });
        }
        stats.chase.rounds += 1;
        let round_epoch = instance.advance_epoch();
        let delta = threshold.map(|t| instance.delta_index(t));
        // Phase 1: read-only trigger search against the frozen round-start
        // instance, fanned out over the search workers.
        let triggers = search_triggers(
            arena,
            instance,
            constraints,
            cfg.hom,
            &mut pool,
            cfg.search_min_facts,
            delta.as_ref(),
        );
        // Phase 2: serial apply in constraint order.
        let mut changed = false;

        for (cidx, (c, homs)) in constraints.iter().zip(triggers).enumerate() {
            match c {
                Constraint::Tgd(tgd) => {
                    // Frontier variables that actually occur in the conclusion,
                    // in a deterministic order — the Skolem key.
                    let frontier: Vec<Var> = conclusion_frontier(tgd);
                    let existentials: Vec<Var> = {
                        let mut e: Vec<Var> = tgd.existentials().into_iter().collect();
                        e.sort();
                        e
                    };
                    // Intern the conclusion constants once per constraint,
                    // not once per trigger.
                    let compiled: Vec<(Symbol, Vec<CompiledTerm>)> = tgd
                        .conclusion
                        .iter()
                        .map(|a| (a.pred, a.args.iter().map(CompiledTerm::compile).collect()))
                        .collect();
                    for h in homs {
                        // Trigger provenance: conjunction over premise facts.
                        let mut trigger = Dnf::tru();
                        for fid in &h.fact_ids {
                            let (next, trunc) =
                                trigger.and(&instance.fact(*fid).prov, cfg.clause_cap);
                            trigger = next;
                            stats.truncated |= trunc;
                        }
                        if trigger.is_false() {
                            continue;
                        }
                        let key: Vec<Elem> = frontier
                            .iter()
                            .map(|v| instance.resolve(&h.map[v]))
                            .collect();
                        // Resolve Skolem images for the existentials.
                        let exist_elems: Vec<Elem> = match skolems.get(&(cidx, key.clone())) {
                            Some(es) => {
                                if cfg.memo {
                                    stats.chase.memo_hits += 1;
                                }
                                es.iter().map(|e| instance.resolve(e)).collect()
                            }
                            None => {
                                if cfg.memo {
                                    stats.chase.memo_misses += 1;
                                }
                                let es: Vec<Elem> =
                                    existentials.iter().map(|_| instance.fresh_null()).collect();
                                skolems.insert((cidx, key.clone()), es.clone());
                                es
                            }
                        };
                        let assignment: HashMap<Var, Elem> = frontier
                            .iter()
                            .cloned()
                            .zip(key.iter().cloned())
                            .chain(existentials.iter().cloned().zip(exist_elems))
                            .collect();
                        for (pred, slots) in &compiled {
                            let args: Vec<Elem> = slots
                                .iter()
                                .map(|s| match s {
                                    CompiledTerm::Const(e) => *e,
                                    CompiledTerm::Var(v) => assignment[v],
                                })
                                .collect();
                            let (_, ch) = instance.insert_with_prov(*pred, args, trigger.clone());
                            if ch {
                                stats.chase.tgd_fires += 1;
                                changed = true;
                            }
                        }
                    }
                }
                Constraint::Egd(egd) => {
                    // Conservative: only fire with certain (⊤) trigger
                    // provenance, read at fire time. A trigger fact killed
                    // by an earlier same-round dedup still shows its
                    // pre-join (narrower) formula here — the survivor's
                    // widened formula bumps its epoch, so the skipped
                    // merge is re-searched and fires next round; the
                    // fixpoint is unchanged and stays bit-identical at
                    // any worker count.
                    apply_egd_homs(
                        instance,
                        egd,
                        &homs,
                        |inst, h| h.fact_ids.iter().all(|fid| inst.fact(*fid).prov.is_true()),
                        &mut stats.chase,
                        &mut changed,
                        Some(&mut skolems as &mut dyn NullInvalidate),
                    )?;
                }
            }
            if instance.len() > cfg.max_facts {
                return Err(ChaseError::Budget {
                    rounds: stats.chase.rounds,
                    facts: instance.len(),
                });
            }
        }
        if !changed {
            return Ok(stats);
        }
        threshold = Some(round_epoch);
    }
}

/// Run the provenance chase stratum-by-stratum under a
/// [`TerminationCertificate::Stratified`] verdict: each stratum's
/// constraint subset is chased to its provenance fixpoint (budgets lifted
/// per the stratum's own certificate) before the next stratum starts.
/// Sound for the same reason as [`crate::chase::chase_stratified`]: later
/// strata never write a relation an earlier stratum reads, so earlier
/// fixpoints — fact sets *and* their provenance formulas — stay fixpoints.
/// Any other certificate falls back to a single [`prov_chase`] run with
/// [`ProvChaseConfig::with_certificate`] applied.
pub fn prov_chase_stratified(
    instance: &mut Instance,
    constraints: &[Constraint],
    cfg: &ProvChaseConfig,
    cert: &TerminationCertificate,
) -> Result<ProvChaseStats, ChaseError> {
    prov_chase_stratified_with(&mut HomArena::new(), instance, constraints, cfg, cert)
}

/// [`prov_chase_stratified`] with caller-provided homomorphism scratch.
pub fn prov_chase_stratified_with(
    arena: &mut HomArena,
    instance: &mut Instance,
    constraints: &[Constraint],
    cfg: &ProvChaseConfig,
    cert: &TerminationCertificate,
) -> Result<ProvChaseStats, ChaseError> {
    if let TerminationCertificate::Stratified { strata } = cert {
        let indices_valid = strata
            .iter()
            .flat_map(|s| s.members.iter())
            .all(|&i| i < constraints.len());
        if indices_valid {
            let mut total = ProvChaseStats::default();
            for stratum in strata {
                let subset: Vec<Constraint> = stratum
                    .members
                    .iter()
                    .map(|&i| constraints[i].clone())
                    .collect();
                let scfg = cfg.with_certificate(&stratum.certificate);
                let stats = prov_chase_with(arena, instance, &subset, &scfg)?;
                total.chase.rounds += stats.chase.rounds;
                total.chase.tgd_fires += stats.chase.tgd_fires;
                total.chase.egd_merges += stats.chase.egd_merges;
                total.chase.memo_hits += stats.chase.memo_hits;
                total.chase.memo_misses += stats.chase.memo_misses;
                total.truncated |= stats.truncated;
            }
            return Ok(total);
        }
    }
    prov_chase_with(arena, instance, constraints, &cfg.with_certificate(cert))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::dump_state as dump;
    use estocada_pivot::{Atom, Egd, Symbol, Term, Tgd};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn c(v: i64) -> Elem {
        Elem::of(v)
    }

    #[test]
    fn provenance_conjoins_along_derivations() {
        // A(x) ∧ B(x) → C(x). A gets p0, B gets p1 ⇒ C has p0∧p1.
        let t = Tgd::new(
            "t",
            vec![
                Atom::new("A", vec![Term::var(0)]),
                Atom::new("B", vec![Term::var(0)]),
            ],
            vec![Atom::new("C", vec![Term::var(0)])],
        );
        let mut i = Instance::new();
        i.insert_with_prov(sym("A"), vec![c(1)], Dnf::var(0));
        i.insert_with_prov(sym("B"), vec![c(1)], Dnf::var(1));
        prov_chase(&mut i, &[t.into()], &ProvChaseConfig::default()).unwrap();
        let cid = i.facts_of(sym("C")).next().unwrap();
        let p = &i.fact(cid).prov;
        assert_eq!(p.len(), 1);
        let clause = p.clauses().next().unwrap();
        assert!(clause.contains(&0) && clause.contains(&1));
    }

    #[test]
    fn alternative_derivations_disjoin() {
        // A(x) → C(x); B(x) → C(x). C(1) from either ⇒ p0 ∨ p1.
        let t1 = Tgd::new(
            "t1",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("C", vec![Term::var(0)])],
        );
        let t2 = Tgd::new(
            "t2",
            vec![Atom::new("B", vec![Term::var(0)])],
            vec![Atom::new("C", vec![Term::var(0)])],
        );
        let mut i = Instance::new();
        i.insert_with_prov(sym("A"), vec![c(1)], Dnf::var(0));
        i.insert_with_prov(sym("B"), vec![c(1)], Dnf::var(1));
        prov_chase(&mut i, &[t1.into(), t2.into()], &ProvChaseConfig::default()).unwrap();
        let cid = i.facts_of(sym("C")).next().unwrap();
        assert_eq!(i.fact(cid).prov.len(), 2);
    }

    #[test]
    fn skolems_are_reused_across_rounds() {
        // V(x) → ∃y R(x, y), plus A(x) → V(x). V(1) starts with p0; in a
        // later round A enlarges V's provenance to p0 ∨ p1, the backward
        // trigger re-fires — and must hit the SAME Skolem null, leaving a
        // single R fact whose provenance is p0 ∨ p1.
        let bw = Tgd::new(
            "bw",
            vec![Atom::new("V", vec![Term::var(0)])],
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
        );
        let a2v = Tgd::new(
            "a2v",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("V", vec![Term::var(0)])],
        );
        let mut i = Instance::new();
        i.insert_with_prov(sym("V"), vec![c(1)], Dnf::var(0));
        i.insert_with_prov(sym("A"), vec![c(1)], Dnf::var(1));
        prov_chase(
            &mut i,
            &[bw.into(), a2v.into()],
            &ProvChaseConfig::default(),
        )
        .unwrap();
        assert_eq!(i.facts_of(sym("R")).count(), 1);
        let rid = i.facts_of(sym("R")).next().unwrap();
        assert_eq!(i.fact(rid).prov.len(), 2); // p0 ∨ p1
    }

    #[test]
    fn provenance_reaches_fixpoint_through_chains() {
        // A(x) → M(x); M(x) → C(x); and also B(x) → M(x).
        let ts: Vec<Constraint> = vec![
            Tgd::new(
                "a2m",
                vec![Atom::new("A", vec![Term::var(0)])],
                vec![Atom::new("M", vec![Term::var(0)])],
            )
            .into(),
            Tgd::new(
                "m2c",
                vec![Atom::new("M", vec![Term::var(0)])],
                vec![Atom::new("C", vec![Term::var(0)])],
            )
            .into(),
            Tgd::new(
                "b2m",
                vec![Atom::new("B", vec![Term::var(0)])],
                vec![Atom::new("M", vec![Term::var(0)])],
            )
            .into(),
        ];
        let mut i = Instance::new();
        i.insert_with_prov(sym("A"), vec![c(1)], Dnf::var(0));
        i.insert_with_prov(sym("B"), vec![c(1)], Dnf::var(1));
        prov_chase(&mut i, &ts, &ProvChaseConfig::default()).unwrap();
        let cid = i.facts_of(sym("C")).next().unwrap();
        // C must record both unit derivations p0 ∨ p1.
        assert_eq!(i.fact(cid).prov.len(), 2);
    }

    #[test]
    fn certain_egd_fires_uncertain_egd_skipped() {
        use estocada_pivot::Egd;
        let e: Constraint = Egd::new(
            "fd",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        )
        .into();
        // Uncertain provenance: no merge.
        let mut i = Instance::new();
        let n1 = i.fresh_null();
        let n2 = i.fresh_null();
        i.insert_with_prov(sym("R"), vec![c(1), n1], Dnf::var(0));
        i.insert_with_prov(sym("R"), vec![c(1), n2], Dnf::var(1));
        prov_chase(
            &mut i,
            std::slice::from_ref(&e),
            &ProvChaseConfig::default(),
        )
        .unwrap();
        assert_ne!(i.resolve(&n1), i.resolve(&n2));
        // Certain provenance: merge happens.
        let mut j = Instance::new();
        let m1 = j.fresh_null();
        let m2 = j.fresh_null();
        j.insert(sym("R"), vec![c(1), m1]);
        j.insert(sym("R"), vec![c(1), m2]);
        prov_chase(&mut j, &[e], &ProvChaseConfig::default()).unwrap();
        assert_eq!(j.resolve(&m1), j.resolve(&m2));
    }

    #[test]
    fn stratified_prov_chase_matches_per_stratum_guarded() {
        // t: A(x) → ∃y B(x,y); e: B(x,y) ∧ A(x) → y = x. Certifies
        // Stratified ([t], [e]); ground ⊤-provenance facts let the EGD
        // fire. The budget-free stratified run must be bit-identical to a
        // manual per-stratum run under the default (guarded) budgets.
        let t = Tgd::new(
            "t",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("B", vec![Term::var(0), Term::var(1)])],
        );
        let e = Egd::new(
            "e",
            vec![
                Atom::new("B", vec![Term::var(0), Term::var(1)]),
                Atom::new("A", vec![Term::var(0)]),
            ],
            (Term::var(1), Term::var(0)),
        );
        let cs: Vec<Constraint> = vec![t.into(), e.into()];
        let cert = crate::wa::certify(&cs);
        let TerminationCertificate::Stratified { ref strata } = cert else {
            panic!("expected a stratified certificate, got {cert}");
        };

        let mut certified = Instance::new();
        certified.insert(sym("A"), vec![c(1)]);
        certified.insert(sym("A"), vec![c(2)]);
        let mut guarded = Instance::new();
        guarded.insert(sym("A"), vec![c(1)]);
        guarded.insert(sym("A"), vec![c(2)]);

        let cfg = ProvChaseConfig::default();
        let stats = prov_chase_stratified(&mut certified, &cs, &cfg, &cert).unwrap();

        let mut ref_stats = ProvChaseStats::default();
        for stratum in strata {
            let subset: Vec<Constraint> = stratum.members.iter().map(|&i| cs[i].clone()).collect();
            let s = prov_chase(&mut guarded, &subset, &cfg).unwrap();
            ref_stats.chase.rounds += s.chase.rounds;
            ref_stats.chase.tgd_fires += s.chase.tgd_fires;
            ref_stats.chase.egd_merges += s.chase.egd_merges;
            ref_stats.chase.memo_hits += s.chase.memo_hits;
            ref_stats.chase.memo_misses += s.chase.memo_misses;
            ref_stats.truncated |= s.truncated;
        }

        assert_eq!(stats, ref_stats);
        assert_eq!(dump(&certified), dump(&guarded));
        // The EGD pinned each existential null to its row key.
        assert!(dump(&certified).iter().any(|(_, f, _, _)| f == "B(1, 1)"));
    }
}
