//! # estocada-chase
//!
//! Chase-based reasoning for the ESTOCADA mediator: instances with labelled
//! nulls, homomorphism search, the standard (restricted) chase with TGDs and
//! EGDs, weak-acyclicity termination analysis, chase-based containment /
//! equivalence / minimization, and two view-based rewriting algorithms —
//! the **provenance-aware Chase & Backchase (PACB)** of Ileana et al.
//! (SIGMOD 2014), which the paper relies on, and the classical exhaustive
//! backchase used as the performance baseline.
//!
//! Performance notes: instance elements are 8-byte `Copy` values
//! (constants intern into the global `ConstId` table — see
//! [`instance::Elem`]), EGD merges re-normalize incrementally through a
//! pointer-halving union-find and a null-occurrence index (O(touched
//! posting lists) per merge — see [`instance`]), homomorphism search runs
//! on dense compact-id scratch bindings over borrowing positional indexes
//! (see [`hom`]), and both chase loops evaluate semi-naively — after the
//! first round only triggers touching the previous round's delta facts are
//! searched (see [`mod@chase`] and [`instance::Instance::delta_index`]).
//! Search scratch lives in reusable, thread-confined [`hom::HomArena`]s,
//! and PACB's per-candidate verification chases fan out over a scoped
//! worker pool with a deterministic fan-in
//! ([`pacb::RewriteConfig::parallelism`]; the outcome is identical at any
//! worker count — see the [`pacb`] module docs). Both chase loops split
//! every round into a read-only trigger-search phase — fanned out over
//! [`chase::ChaseConfig::search_workers`] /
//! [`pchase::ProvChaseConfig::search_workers`] workers, bit-identical at
//! any count — and a serial apply phase, and the restricted chase
//! memoizes applicability probes per (constraint, frontier image) with
//! precise merge-driven invalidation (see the [`mod@chase`] module docs).

#![warn(missing_docs)]

pub mod chase;
pub mod containment;
pub mod hom;
pub mod instance;
pub mod naive;
pub mod pacb;
pub mod pchase;
pub mod prov;
#[doc(hidden)]
pub mod testkit;
pub mod wa;

pub use chase::{
    chase, chase_stratified, chase_stratified_with, chase_with, ChaseConfig, ChaseError, ChaseStats,
};
pub use containment::{
    canonical_instance, contained_in, contained_in_with, equivalent, implies, implies_with,
    minimize, premise_unsatisfiable,
};
pub use hom::{
    find_homs, find_homs_delta, find_homs_delta_anchor_in, find_homs_delta_in, find_homs_in,
    find_one_hom, find_one_hom_in, Hom, HomArena, HomConfig,
};
pub use instance::{DeltaIndex, Elem, Inconsistent, Instance, StoredFact};
pub use naive::{naive_rewrite, NaiveConfig};
pub use pacb::{
    pacb_rewrite, CandidateStats, RewriteConfig, RewriteError, RewriteOutcome, RewriteProblem,
    RewriteStats,
};
pub use pchase::{
    prov_chase, prov_chase_stratified, prov_chase_stratified_with, prov_chase_with,
    ProvChaseConfig, ProvChaseStats,
};
pub use prov::Dnf;
pub use wa::{
    certify, stratify, weakly_acyclic, Pos, PositionGraph, Stratum, TerminationCertificate,
    UnknownReason,
};
