//! The classical Chase & Backchase baseline: enumerate subqueries of the
//! universal plan and chase each one.
//!
//! This is the algorithm the paper calls "a classical powerful tool long
//! considered too inefficient to be of practical relevance": for every
//! subset of universal-plan atoms (ascending by size, pruning supersets of
//! accepted rewritings) it runs a full chase-based containment check. Its
//! cost is exponential in the universal-plan size — the PACB comparison in
//! benchmark `e3_pacb_vs_naive` regenerates the paper's 1–2
//! orders-of-magnitude claim against it.

use crate::hom::HomArena;
use crate::pacb::{
    accept_candidate, build_candidate, universal_plan, CandidateStats, RewriteConfig, RewriteError,
    RewriteOutcome, RewriteProblem, RewriteStats,
};
use estocada_pivot::Cq;
use std::collections::BTreeSet;

/// Extra knobs of the naive enumeration.
#[derive(Debug, Clone, Copy)]
pub struct NaiveConfig {
    /// Shared rewriting knobs (chase budgets, verification).
    pub rewrite: RewriteConfig,
    /// Upper bound on candidate subset size (defaults to the universal-plan
    /// size).
    pub max_subset: Option<usize>,
    /// Upper bound on the number of candidate checks.
    pub max_checks: usize,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        NaiveConfig {
            rewrite: RewriteConfig::default(),
            max_subset: None,
            max_checks: 5_000_000,
        }
    }
}

/// Rewrite by exhaustive backchase over subsets of the universal plan.
pub fn naive_rewrite(
    problem: &RewriteProblem,
    cfg: &NaiveConfig,
) -> Result<RewriteOutcome, RewriteError> {
    let mut arena = HomArena::new();
    let up = universal_plan(&mut arena, problem, &cfg.rewrite.chase)?;
    let mut stats = RewriteStats {
        forward: up.stats,
        universal_plan_atoms: up.atoms.len(),
        ..RewriteStats::default()
    };
    let universal_plan_cq = Cq::new(
        format!("{}_up", problem.query.name).as_str(),
        up.head.clone(),
        up.atoms.clone(),
    );
    let n = up.atoms.len();
    let max_size = cfg.max_subset.unwrap_or(n).min(n);
    let all_constraints = problem.all_constraints();

    let mut accepted: Vec<BTreeSet<usize>> = Vec::new();
    let mut rewritings: Vec<Cq> = Vec::new();
    let mut complete = true;
    let mut checks = 0usize;

    'outer: for size in 1..=max_size {
        let mut indices: Vec<usize> = (0..size).collect();
        loop {
            let subset: BTreeSet<usize> = indices.iter().copied().collect();
            // Minimality pruning: skip supersets of accepted rewritings.
            if !accepted.iter().any(|a| a.is_subset(&subset)) {
                checks += 1;
                if checks > cfg.max_checks {
                    complete = false;
                    break 'outer;
                }
                stats.candidates += 1;
                let candidate = build_candidate(
                    &problem.query,
                    &up.head,
                    &up.atoms,
                    &subset,
                    rewritings.len(),
                );
                let mut cs = CandidateStats::default();
                let ok = accept_candidate(
                    &mut arena,
                    &candidate,
                    problem,
                    &all_constraints,
                    &cfg.rewrite,
                    &mut cs,
                );
                stats.absorb(cs);
                if ok {
                    stats.accepted += 1;
                    accepted.push(subset);
                    rewritings.push(candidate);
                }
            }
            // Next combination of `size` out of `n`.
            let mut i = size;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if indices[i] != i + n - size {
                    indices[i] += 1;
                    for j in i + 1..size {
                        indices[j] = indices[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    // Exhausted all combinations of this size.
                    indices.clear();
                    break;
                }
            }
            if indices.is_empty() {
                break;
            }
        }
    }

    rewritings.sort_by_key(|r| r.body.len());
    Ok(RewriteOutcome {
        rewritings,
        universal_plan: universal_plan_cq,
        complete,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pacb::pacb_rewrite;
    use estocada_pivot::{CqBuilder, ViewDef};

    fn check_agreement(problem: &RewriteProblem) {
        let naive = naive_rewrite(problem, &NaiveConfig::default()).unwrap();
        let pacb = pacb_rewrite(problem, &RewriteConfig::default()).unwrap();
        let canon = |rs: &[Cq]| {
            let mut v: Vec<String> = rs.iter().map(|r| format!("{}", r.canonicalize())).collect();
            v.sort();
            v
        };
        assert_eq!(
            canon(&naive.rewritings),
            canon(&pacb.rewritings),
            "naive and PACB disagree"
        );
    }

    #[test]
    fn agrees_with_pacb_on_single_view() {
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "z"])
                .atom("R", |a| a.v("x").v("y"))
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "z"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("S", |a| a.v("y").v("z"))
            .build();
        check_agreement(&RewriteProblem::new(q, vec![v]));
    }

    #[test]
    fn agrees_with_pacb_on_join_of_views() {
        let v1 = ViewDef::new(
            CqBuilder::new("V1")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let v2 = ViewDef::new(
            CqBuilder::new("V2")
                .head_vars(["y", "z"])
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "z"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("S", |a| a.v("y").v("z"))
            .build();
        check_agreement(&RewriteProblem::new(q, vec![v1, v2]));
    }

    #[test]
    fn agrees_with_pacb_with_redundant_views() {
        let views = vec![
            ViewDef::new(
                CqBuilder::new("Va")
                    .head_vars(["x", "y"])
                    .atom("R", |a| a.v("x").v("y"))
                    .build(),
            ),
            ViewDef::new(
                CqBuilder::new("Vb")
                    .head_vars(["x", "y"])
                    .atom("R", |a| a.v("x").v("y"))
                    .build(),
            ),
            ViewDef::new(
                CqBuilder::new("Vc")
                    .head_vars(["x"])
                    .atom("R", |a| a.v("x").v("y"))
                    .build(),
            ),
        ];
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        check_agreement(&RewriteProblem::new(q, views));
    }

    #[test]
    fn subset_size_cap_limits_search() {
        let v1 = ViewDef::new(
            CqBuilder::new("V1")
                .head_vars(["x", "y"])
                .atom("R", |a| a.v("x").v("y"))
                .build(),
        );
        let v2 = ViewDef::new(
            CqBuilder::new("V2")
                .head_vars(["y", "z"])
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let q = CqBuilder::new("Q")
            .head_vars(["x", "z"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("S", |a| a.v("y").v("z"))
            .build();
        let cfg = NaiveConfig {
            max_subset: Some(1),
            ..NaiveConfig::default()
        };
        let out = naive_rewrite(&RewriteProblem::new(q, vec![v1, v2]), &cfg).unwrap();
        // The only rewriting needs both views — size cap 1 finds nothing.
        assert!(out.rewritings.is_empty());
    }
}
