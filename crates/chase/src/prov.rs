//! Monotone boolean provenance formulas in minimized DNF.
//!
//! The provenance-aware backchase annotates every universal-plan atom with a
//! provenance variable and propagates, for every derived fact, *which sets of
//! universal-plan atoms suffice to derive it*. That is a monotone boolean
//! function, canonically represented as a set of minimal conjunctions
//! (antichain DNF): `{{p1,p2},{p3}}` means "(p1 ∧ p2) ∨ p3".

use std::collections::BTreeSet;
use std::fmt;

/// A conjunction of provenance variables (sorted set of variable ids).
pub type Clause = BTreeSet<u32>;

/// Minimized monotone DNF over provenance variables.
///
/// Invariant: the clause set is an *antichain* — no clause is a subset of
/// another (absorption is applied eagerly), so `Dnf` is a canonical form:
/// two equal monotone functions have equal `Dnf`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dnf {
    clauses: BTreeSet<Clause>,
}

impl Dnf {
    /// The constant `false` (no derivation known).
    pub fn fals() -> Dnf {
        Dnf {
            clauses: BTreeSet::new(),
        }
    }

    /// The constant `true` (derivable from every subset, e.g. facts of the
    /// query's own canonical database).
    pub fn tru() -> Dnf {
        let mut clauses = BTreeSet::new();
        clauses.insert(Clause::new());
        Dnf { clauses }
    }

    /// A single provenance variable.
    pub fn var(v: u32) -> Dnf {
        let mut c = Clause::new();
        c.insert(v);
        let mut clauses = BTreeSet::new();
        clauses.insert(c);
        Dnf { clauses }
    }

    /// `true` iff the formula is the constant `false`.
    pub fn is_false(&self) -> bool {
        self.clauses.is_empty()
    }

    /// `true` iff the formula is the constant `true`.
    pub fn is_true(&self) -> bool {
        self.clauses.len() == 1 && self.clauses.iter().next().unwrap().is_empty()
    }

    /// The minimal clauses.
    pub fn clauses(&self) -> impl Iterator<Item = &Clause> {
        self.clauses.iter()
    }

    /// Number of minimal clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` when there are no clauses (constant false).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Insert a clause, maintaining the antichain invariant. Returns `true`
    /// if the formula changed.
    fn insert_clause(&mut self, c: Clause) -> bool {
        // Absorbed by an existing smaller clause?
        if self.clauses.iter().any(|e| e.is_subset(&c)) {
            return false;
        }
        // Remove clauses the new one absorbs.
        self.clauses.retain(|e| !c.is_subset(e));
        self.clauses.insert(c);
        true
    }

    /// Disjunction, in place. Returns `true` if the formula changed —
    /// the fixpoint signal of the provenance chase.
    pub fn or_assign(&mut self, other: &Dnf) -> bool {
        let mut changed = false;
        for c in &other.clauses {
            changed |= self.insert_clause(c.clone());
        }
        changed
    }

    /// Conjunction (cross product of clause sets, minimized). `cap` bounds
    /// the resulting clause count; on overflow the result is truncated to
    /// the smallest clauses and `truncated` is set (losing alternatives
    /// never produces spurious rewritings — only potentially misses some).
    pub fn and(&self, other: &Dnf, cap: usize) -> (Dnf, bool) {
        let mut out = Dnf::fals();
        for a in &self.clauses {
            for b in &other.clauses {
                let mut c = a.clone();
                c.extend(b.iter().copied());
                out.insert_clause(c);
            }
        }
        let truncated = out.truncate(cap);
        (out, truncated)
    }

    /// Keep only the `cap` smallest clauses. Returns `true` if truncation
    /// happened.
    pub fn truncate(&mut self, cap: usize) -> bool {
        if self.clauses.len() <= cap {
            return false;
        }
        let mut by_size: Vec<Clause> = self.clauses.iter().cloned().collect();
        by_size.sort_by_key(|c| c.len());
        by_size.truncate(cap);
        self.clauses = by_size.into_iter().collect();
        true
    }

    /// Logical implication test: `self ⇒ other` for monotone DNFs holds iff
    /// every clause of `self` is a superset of some clause of `other`.
    pub fn implies(&self, other: &Dnf) -> bool {
        self.clauses
            .iter()
            .all(|a| other.clauses.iter().any(|b| b.is_subset(a)))
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_false() {
            return write!(f, "⊥");
        }
        if self.is_true() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "(")?;
            for (j, v) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, "∧")?;
                }
                write!(f, "p{v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(vs: &[u32]) -> Clause {
        vs.iter().copied().collect()
    }

    #[test]
    fn true_and_false_identities() {
        let p = Dnf::var(1);
        assert_eq!(Dnf::tru().and(&p, 100).0, p);
        assert!(Dnf::fals().and(&p, 100).0.is_false());
        let mut f = Dnf::fals();
        assert!(f.or_assign(&p));
        assert_eq!(f, p);
        let mut t = Dnf::tru();
        assert!(!t.or_assign(&p)); // ⊤ absorbs everything
        assert!(t.is_true());
    }

    #[test]
    fn absorption_keeps_antichain() {
        let mut d = Dnf::fals();
        d.insert_clause(clause(&[1, 2]));
        d.insert_clause(clause(&[1])); // absorbs {1,2}
        assert_eq!(d.len(), 1);
        assert!(!d.insert_clause(clause(&[1, 3]))); // absorbed by {1}
    }

    #[test]
    fn and_distributes() {
        // (p1 ∨ p2) ∧ p3 = p1p3 ∨ p2p3
        let mut l = Dnf::var(1);
        l.or_assign(&Dnf::var(2));
        let (r, trunc) = l.and(&Dnf::var(3), 100);
        assert!(!trunc);
        assert_eq!(r.len(), 2);
        assert!(r.clauses().any(|c| *c == clause(&[1, 3])));
        assert!(r.clauses().any(|c| *c == clause(&[2, 3])));
    }

    #[test]
    fn and_applies_absorption() {
        // (p1 ∨ p2) ∧ (p1) = p1 (clause p1p2 absorbed by p1)
        let mut l = Dnf::var(1);
        l.or_assign(&Dnf::var(2));
        let (r, _) = l.and(&Dnf::var(1), 100);
        assert_eq!(r, Dnf::var(1));
    }

    #[test]
    fn truncation_flags_and_keeps_smallest() {
        let mut d = Dnf::fals();
        d.insert_clause(clause(&[1, 2, 3]));
        d.insert_clause(clause(&[4]));
        d.insert_clause(clause(&[5, 6]));
        assert!(d.truncate(2));
        assert_eq!(d.len(), 2);
        assert!(d.clauses().any(|c| *c == clause(&[4])));
        assert!(d.clauses().any(|c| *c == clause(&[5, 6])));
    }

    #[test]
    fn implication_for_monotone_dnf() {
        let mut small = Dnf::var(1); // p1
        let (big, _) = small.clone().and(&Dnf::var(2), 100); // p1 ∧ p2
        assert!(big.implies(&small));
        assert!(!small.implies(&big));
        small.or_assign(&Dnf::var(3));
        assert!(big.implies(&small));
        assert!(Dnf::fals().implies(&big));
        assert!(big.implies(&Dnf::tru()));
    }

    #[test]
    fn or_assign_reports_change() {
        let mut d = Dnf::var(1);
        assert!(!d.or_assign(&Dnf::var(1)));
        assert!(d.or_assign(&Dnf::var(2)));
        assert!(!d.or_assign(&Dnf::var(2)));
    }
}
