//! Chase-based containment, equivalence and minimization of conjunctive
//! queries under constraints.

use crate::chase::{chase_with, ChaseConfig, ChaseError};
use crate::hom::{find_one_hom_in, HomArena};
use crate::instance::{Elem, Instance};
use estocada_pivot::{Atom, Constraint, Cq, Term, Var};
use std::collections::HashMap;

/// Build the canonical instance ("frozen body") of a query: variable `i`
/// becomes labelled null `i`, constants stay constants.
pub fn canonical_instance(q: &Cq) -> Instance {
    let mut inst = Instance::new();
    inst.reserve_nulls(q.var_space());
    for atom in &q.body {
        let args: Vec<Elem> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => Elem::Null(v.0),
                Term::Const(c) => Elem::constant(c),
            })
            .collect();
        inst.insert(atom.pred, args);
    }
    inst
}

/// The image of `q1`'s head terms in (a chase of) its canonical instance.
fn head_images(q1: &Cq, inst: &Instance) -> Vec<Elem> {
    q1.head
        .iter()
        .map(|t| match t {
            Term::Var(v) => inst.resolve(&Elem::Null(v.0)),
            Term::Const(c) => Elem::constant(c),
        })
        .collect()
}

/// Decide `q1 ⊆ q2` under `constraints`: chase `q1`'s canonical instance,
/// then look for a containment mapping from `q2` that sends `q2`'s head to
/// the (frozen, possibly merged) image of `q1`'s head.
///
/// Head arities must match; returns `Ok(false)` otherwise.
pub fn contained_in(
    q1: &Cq,
    q2: &Cq,
    constraints: &[Constraint],
    cfg: &ChaseConfig,
) -> Result<bool, ChaseError> {
    contained_in_with(&mut HomArena::new(), q1, q2, constraints, cfg)
}

/// [`contained_in`] with caller-provided homomorphism scratch — the whole
/// decision (the chase of `q1`'s canonical instance and the final
/// containment-mapping search) runs on `arena`'s buffers. Verification
/// loops that test many candidates keep one arena per worker thread.
pub fn contained_in_with(
    arena: &mut HomArena,
    q1: &Cq,
    q2: &Cq,
    constraints: &[Constraint],
    cfg: &ChaseConfig,
) -> Result<bool, ChaseError> {
    if q1.head.len() != q2.head.len() {
        return Ok(false);
    }
    let mut inst = canonical_instance(q1);
    match chase_with(arena, &mut inst, constraints, cfg) {
        Ok(_) => {}
        // An inconsistent canonical instance denotes the empty query, which
        // is contained in everything.
        Err(ChaseError::Inconsistent(_)) => return Ok(true),
        Err(e) => return Err(e),
    }
    let targets = head_images(q1, &inst);
    Ok(head_preserving_image_in(arena, q2, &inst, &targets))
}

/// Is there a homomorphism from `q`'s body into `inst` mapping `q`'s head
/// terms exactly onto `targets`?
pub fn head_preserving_image(q: &Cq, inst: &Instance, targets: &[Elem]) -> bool {
    head_preserving_image_in(&mut HomArena::new(), q, inst, targets)
}

/// [`head_preserving_image`] with caller-provided scratch.
pub fn head_preserving_image_in(
    arena: &mut HomArena,
    q: &Cq,
    inst: &Instance,
    targets: &[Elem],
) -> bool {
    debug_assert_eq!(q.head.len(), targets.len());
    let mut fixed: HashMap<Var, Elem> = HashMap::new();
    for (t, target) in q.head.iter().zip(targets) {
        match t {
            Term::Const(c) => {
                if Elem::constant(c) != *target {
                    return false;
                }
            }
            Term::Var(v) => {
                if let Some(prev) = fixed.get(v) {
                    if prev != target {
                        return false;
                    }
                } else {
                    fixed.insert(*v, *target);
                }
            }
        }
    }
    find_one_hom_in(arena, inst, &q.body, &fixed).is_some()
}

/// Freeze a constraint premise into a canonical instance: variable `i`
/// becomes labelled null `i`, constants stay constants.
fn frozen_premise(atoms: &[Atom]) -> Instance {
    let mut inst = Instance::new();
    let var_space = atoms
        .iter()
        .flat_map(|a| a.args.iter())
        .filter_map(|t| match t {
            Term::Var(v) => Some(v.0 + 1),
            Term::Const(_) => None,
        })
        .max()
        .unwrap_or(0);
    inst.reserve_nulls(var_space);
    for atom in atoms {
        let args: Vec<Elem> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => Elem::Null(v.0),
                Term::Const(c) => Elem::constant(c),
            })
            .collect();
        inst.insert(atom.pred, args);
    }
    inst
}

/// Decide whether `sigma` is logically implied by `rest` (for every
/// instance satisfying `rest`, `sigma` holds): chase `sigma`'s frozen
/// premise under `rest`, then
///
/// - a **TGD** is implied iff its conclusion has a homomorphism into the
///   chased instance that pins every frontier variable to its (possibly
///   EGD-merged) frozen image;
/// - an **EGD** is implied iff its two equality terms resolve to the same
///   element of the chased instance.
///
/// An inconsistent chase means the premise is unsatisfiable under `rest`,
/// so `sigma` holds vacuously (`Ok(true)`). A budget abort propagates as
/// `Err` — the caller must treat it as *abstain*, not as a verdict.
pub fn implies(
    sigma: &Constraint,
    rest: &[Constraint],
    cfg: &ChaseConfig,
) -> Result<bool, ChaseError> {
    implies_with(&mut HomArena::new(), sigma, rest, cfg)
}

/// [`implies`] with caller-provided homomorphism scratch.
pub fn implies_with(
    arena: &mut HomArena,
    sigma: &Constraint,
    rest: &[Constraint],
    cfg: &ChaseConfig,
) -> Result<bool, ChaseError> {
    let mut inst = frozen_premise(sigma.premise());
    match chase_with(arena, &mut inst, rest, cfg) {
        Ok(_) => {}
        Err(ChaseError::Inconsistent(_)) => return Ok(true),
        Err(e) => return Err(e),
    }
    match sigma {
        Constraint::Tgd(tgd) => {
            let fixed: HashMap<Var, Elem> = tgd
                .frontier()
                .into_iter()
                .map(|v| (v, inst.resolve(&Elem::Null(v.0))))
                .collect();
            Ok(find_one_hom_in(arena, &inst, &tgd.conclusion, &fixed).is_some())
        }
        Constraint::Egd(egd) => {
            let resolve = |t: &Term| match t {
                Term::Var(v) => inst.resolve(&Elem::Null(v.0)),
                Term::Const(c) => Elem::constant(c),
            };
            Ok(resolve(&egd.equal.0) == resolve(&egd.equal.1))
        }
    }
}

/// Is `sigma`'s premise **certainly unsatisfiable** under `constraints` —
/// does chasing its frozen premise derive a contradiction (an EGD forced
/// to merge two distinct constants)? Such a constraint can never fire on
/// any consistent instance. A budget abort propagates as `Err` (abstain).
pub fn premise_unsatisfiable(
    sigma: &Constraint,
    constraints: &[Constraint],
    cfg: &ChaseConfig,
) -> Result<bool, ChaseError> {
    let mut inst = frozen_premise(sigma.premise());
    match chase_with(&mut HomArena::new(), &mut inst, constraints, cfg) {
        Ok(_) => Ok(false),
        Err(ChaseError::Inconsistent(_)) => Ok(true),
        Err(e) => Err(e),
    }
}

/// Decide `q1 ≡ q2` under `constraints` (containment both ways).
pub fn equivalent(
    q1: &Cq,
    q2: &Cq,
    constraints: &[Constraint],
    cfg: &ChaseConfig,
) -> Result<bool, ChaseError> {
    Ok(contained_in(q1, q2, constraints, cfg)? && contained_in(q2, q1, constraints, cfg)?)
}

/// Compute the core (minimal equivalent subquery) of `q` with no
/// constraints: repeatedly drop an atom while a head-preserving containment
/// mapping from the full query into the reduced one exists.
pub fn minimize(q: &Cq) -> Cq {
    let mut current = q.clone();
    loop {
        let mut reduced = None;
        for i in 0..current.body.len() {
            let mut candidate = current.clone();
            candidate.body.remove(i);
            if !candidate.is_safe() {
                continue;
            }
            // candidate ⊆ current always (fewer atoms); equivalence needs
            // current-image in candidate's canonical instance.
            let inst = canonical_instance(&candidate);
            let targets = head_images(&candidate, &inst);
            if head_preserving_image(&current, &inst, &targets) {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_pivot::{Atom, CqBuilder, Egd, Tgd, ViewDef};

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    #[test]
    fn syntactic_containment_via_homomorphism() {
        // Q1(x) :- R(x, y), R(y, z)  vs  Q2(x) :- R(x, y)
        let q1 = CqBuilder::new("Q1")
            .head_vars(["x"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("R", |a| a.v("y").v("z"))
            .build();
        let q2 = CqBuilder::new("Q2")
            .head_vars(["x"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        assert!(contained_in(&q1, &q2, &[], &cfg()).unwrap());
        assert!(!contained_in(&q2, &q1, &[], &cfg()).unwrap());
    }

    #[test]
    fn constants_block_containment() {
        let q1 = CqBuilder::new("Q1")
            .head_vars(["x"])
            .atom("R", |a| a.v("x").c(1i64))
            .build();
        let q2 = CqBuilder::new("Q2")
            .head_vars(["x"])
            .atom("R", |a| a.v("x").c(2i64))
            .build();
        assert!(!contained_in(&q1, &q2, &[], &cfg()).unwrap());
        // But both are contained in the unconstrained version.
        let q3 = CqBuilder::new("Q3")
            .head_vars(["x"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        assert!(contained_in(&q1, &q3, &[], &cfg()).unwrap());
    }

    #[test]
    fn containment_under_tgd() {
        // Σ: Child(x,y) → Desc(x,y). Then Q1(x,y):-Child(x,y) ⊆ Q2(x,y):-Desc(x,y).
        let t: Constraint = Tgd::new(
            "c2d",
            vec![Atom::new("Child", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("Desc", vec![Term::var(0), Term::var(1)])],
        )
        .into();
        let q1 = CqBuilder::new("Q1")
            .head_vars(["x", "y"])
            .atom("Child", |a| a.v("x").v("y"))
            .build();
        let q2 = CqBuilder::new("Q2")
            .head_vars(["x", "y"])
            .atom("Desc", |a| a.v("x").v("y"))
            .build();
        assert!(contained_in(&q1, &q2, std::slice::from_ref(&t), &cfg()).unwrap());
        assert!(!contained_in(&q2, &q1, &[t], &cfg()).unwrap());
    }

    #[test]
    fn view_expansion_equivalence() {
        // V(x,z) :- R(x,y), S(y,z); query over V equals the join.
        let v = ViewDef::new(
            CqBuilder::new("V")
                .head_vars(["x", "z"])
                .atom("R", |a| a.v("x").v("y"))
                .atom("S", |a| a.v("y").v("z"))
                .build(),
        );
        let sigma: Vec<Constraint> = v.constraints().into();
        let over_view = CqBuilder::new("Qv")
            .head_vars(["x", "z"])
            .atom("V", |a| a.v("x").v("z"))
            .build();
        let join = CqBuilder::new("Qj")
            .head_vars(["x", "z"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("S", |a| a.v("y").v("z"))
            .build();
        assert!(equivalent(&over_view, &join, &sigma, &cfg()).unwrap());
    }

    #[test]
    fn minimize_removes_redundant_atoms() {
        // Q(x) :- R(x,y), R(x,z)  — second atom is redundant.
        let q = CqBuilder::new("Q")
            .head_vars(["x"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("R", |a| a.v("x").v("z"))
            .build();
        let m = minimize(&q);
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn minimize_keeps_necessary_atoms() {
        let q = CqBuilder::new("Q")
            .head_vars(["x", "z"])
            .atom("R", |a| a.v("x").v("y"))
            .atom("S", |a| a.v("y").v("z"))
            .build();
        let m = minimize(&q);
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn head_arity_mismatch_is_not_contained() {
        let q1 = CqBuilder::new("Q1")
            .head_vars(["x"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        let q2 = CqBuilder::new("Q2")
            .head_vars(["x", "y"])
            .atom("R", |a| a.v("x").v("y"))
            .build();
        assert!(!contained_in(&q1, &q2, &[], &cfg()).unwrap());
    }

    #[test]
    fn implied_tgd_is_detected_transitively() {
        // A(x)→B(x), B(x)→C(x) imply A(x)→C(x); the converse fails.
        let a2b: Constraint = Tgd::new(
            "a2b",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("B", vec![Term::var(0)])],
        )
        .into();
        let b2c: Constraint = Tgd::new(
            "b2c",
            vec![Atom::new("B", vec![Term::var(0)])],
            vec![Atom::new("C", vec![Term::var(0)])],
        )
        .into();
        let a2c: Constraint = Tgd::new(
            "a2c",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("C", vec![Term::var(0)])],
        )
        .into();
        assert!(implies(&a2c, &[a2b.clone(), b2c.clone()], &cfg()).unwrap());
        assert!(!implies(&a2b, &[a2c, b2c], &cfg()).unwrap());
    }

    #[test]
    fn implied_egd_needs_egd_reasoning() {
        // key: R(k,v) ∧ R(k,v') → v = v'. A widened variant joining
        // through an extra copy of the same atom is implied by the key;
        // the key is NOT implied by a trivially-true reflexive EGD.
        let key: Constraint = Egd::new(
            "key",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        )
        .into();
        let widened: Constraint = Egd::new(
            "widened",
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
                Atom::new("R", vec![Term::var(0), Term::var(3)]),
            ],
            (Term::var(1), Term::var(3)),
        )
        .into();
        let reflexive: Constraint = Egd::new(
            "refl",
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
            (Term::var(1), Term::var(1)),
        )
        .into();
        assert!(implies(&widened, std::slice::from_ref(&key), &cfg()).unwrap());
        assert!(implies(&reflexive, &[], &cfg()).unwrap());
        assert!(!implies(&key, std::slice::from_ref(&reflexive), &cfg()).unwrap());
    }

    #[test]
    fn tgd_implied_through_an_egd_merge() {
        // key EGD on S plus S(x,y)→T(y) imply S(x,y)∧S(x,z)→T(z)'s twin
        // S(x,y)∧S(x,z)→T(y): the merge identifies y and z first.
        let key: Constraint = Egd::new(
            "s_key",
            vec![
                Atom::new("S", vec![Term::var(0), Term::var(1)]),
                Atom::new("S", vec![Term::var(0), Term::var(2)]),
            ],
            (Term::var(1), Term::var(2)),
        )
        .into();
        let s2t: Constraint = Tgd::new(
            "s2t",
            vec![Atom::new("S", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("T", vec![Term::var(1)])],
        )
        .into();
        let joined: Constraint = Tgd::new(
            "joined",
            vec![
                Atom::new("S", vec![Term::var(0), Term::var(1)]),
                Atom::new("S", vec![Term::var(0), Term::var(2)]),
            ],
            vec![Atom::new("T", vec![Term::var(2)])],
        )
        .into();
        // Without the key, y and z stay distinct and T(z) is underivable
        // from s2t's firing on y alone... but s2t also fires on z, so this
        // IS implied by s2t alone. The interesting direction: dropping s2t
        // leaves nothing to derive T at all.
        assert!(implies(&joined, &[key.clone(), s2t.clone()], &cfg()).unwrap());
        assert!(implies(&joined, std::slice::from_ref(&s2t), &cfg()).unwrap());
        assert!(!implies(&joined, std::slice::from_ref(&key), &cfg()).unwrap());
    }

    #[test]
    fn unsatisfiable_premise_is_vacuously_implied() {
        // Σ forces Flag(x) → x = 1 and x = 2 on any Flag pair — the frozen
        // premise of a constraint joining Flag with both constants chases
        // to a constant clash.
        let to_one: Constraint = Egd::new(
            "to_one",
            vec![Atom::new("Flag", vec![Term::var(0)])],
            (Term::var(0), Term::Const(estocada_pivot::Value::Int(1))),
        )
        .into();
        let bad: Constraint = Tgd::new(
            "bad",
            vec![
                Atom::new("Flag", vec![Term::var(0)]),
                Atom::new("Two", vec![Term::var(0)]),
                Atom::new("Flag", vec![Term::var(1)]),
                Atom::new("Two", vec![Term::var(1)]),
            ],
            vec![Atom::new("Out", vec![Term::var(0)])],
        )
        .into();
        let fix_two: Constraint = Egd::new(
            "fix_two",
            vec![Atom::new("Two", vec![Term::var(0)])],
            (Term::var(0), Term::Const(estocada_pivot::Value::Int(2))),
        )
        .into();
        assert!(premise_unsatisfiable(&bad, &[to_one.clone(), fix_two.clone()], &cfg()).unwrap());
        assert!(implies(&bad, &[to_one, fix_two], &cfg()).unwrap());
        // A satisfiable premise is not flagged.
        let ok: Constraint = Tgd::new(
            "ok",
            vec![Atom::new("Other", vec![Term::var(0)])],
            vec![Atom::new("Out", vec![Term::var(0)])],
        )
        .into();
        assert!(!premise_unsatisfiable(&ok, &[], &cfg()).unwrap());
    }

    #[test]
    fn repeated_head_vars_must_agree() {
        // Q1(x,x) :- R(x,x)   Q2(a,b) :- R(a,b): Q1 ⊆ Q2 but not conversely.
        let q1 = CqBuilder::new("Q1")
            .head_vars(["x", "x"])
            .atom("R", |a| a.v("x").v("x"))
            .build();
        let q2 = CqBuilder::new("Q2")
            .head_vars(["a", "b"])
            .atom("R", |a| a.v("a").v("b"))
            .build();
        assert!(contained_in(&q1, &q2, &[], &cfg()).unwrap());
        assert!(!contained_in(&q2, &q1, &[], &cfg()).unwrap());
    }
}
