//! Instances with labelled nulls: the structures the chase runs over.
//!
//! An [`Instance`] stores facts whose arguments are either constants or
//! labelled nulls. EGD steps merge elements through a union-find; the
//! instance is kept *normalized* (every stored argument is a representative)
//! so that homomorphism matching is plain equality.

use crate::prov::Dnf;
use estocada_pivot::{Symbol, Value};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

/// An instance element: a constant or a labelled null.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Elem {
    /// A constant value.
    Const(Value),
    /// A labelled null, identified by id.
    Null(u32),
}

impl Elem {
    /// The null id, if this is a null.
    pub fn as_null(&self) -> Option<u32> {
        match self {
            Elem::Null(n) => Some(*n),
            Elem::Const(_) => None,
        }
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Elem::Const(v) => write!(f, "{v}"),
            Elem::Null(n) => write!(f, "_N{n}"),
        }
    }
}

/// A stored fact.
#[derive(Debug, Clone)]
pub struct StoredFact {
    /// Relation name.
    pub pred: Symbol,
    /// Arguments (always representatives — see normalization invariant).
    pub args: Vec<Elem>,
    /// `false` once merged away by deduplication.
    pub alive: bool,
    /// Provenance (used by the provenance chase; `⊤` elsewhere).
    pub prov: Dnf,
}

/// Union-find state of one null.
#[derive(Debug, Clone)]
enum NullState {
    Root,
    Child(u32),
    Bound(Value),
}

/// Error raised when two distinct constants are forced equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistent {
    /// The clashing constants.
    pub left: Value,
    /// The clashing constants.
    pub right: Value,
}

impl fmt::Display for Inconsistent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EGD forces distinct constants equal: {} = {}",
            self.left, self.right
        )
    }
}

impl std::error::Error for Inconsistent {}

/// An instance with labelled nulls, per-predicate and per-position indexes,
/// and EGD merging.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    facts: Vec<StoredFact>,
    nulls: Vec<NullState>,
    by_pred: HashMap<Symbol, Vec<u32>>,
    /// (pred, position, element) → fact ids. Rebuilt on normalization.
    by_pos: HashMap<(Symbol, u32, Elem), Vec<u32>>,
    dedup: HashMap<(Symbol, Vec<Elem>), u32>,
}

impl Instance {
    /// Empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Allocate a fresh labelled null.
    pub fn fresh_null(&mut self) -> Elem {
        let id = self.nulls.len() as u32;
        self.nulls.push(NullState::Root);
        Elem::Null(id)
    }

    /// Ensure nulls `0..n` exist (used to freeze query variables so that
    /// variable id = null id).
    pub fn reserve_nulls(&mut self, n: u32) {
        while (self.nulls.len() as u32) < n {
            self.nulls.push(NullState::Root);
        }
    }

    /// Number of allocated nulls.
    pub fn null_count(&self) -> usize {
        self.nulls.len()
    }

    /// Resolve an element to its representative.
    pub fn resolve(&self, e: &Elem) -> Elem {
        match e {
            Elem::Const(_) => e.clone(),
            Elem::Null(n) => self.resolve_null(*n),
        }
    }

    fn resolve_null(&self, mut n: u32) -> Elem {
        loop {
            match &self.nulls[n as usize] {
                NullState::Root => return Elem::Null(n),
                NullState::Child(p) => n = *p,
                NullState::Bound(v) => return Elem::Const(v.clone()),
            }
        }
    }

    /// Insert a fact with provenance `⊤`. Returns the fact id and whether
    /// the fact is new.
    pub fn insert(&mut self, pred: Symbol, args: Vec<Elem>) -> (u32, bool) {
        self.insert_with_prov(pred, args, Dnf::tru())
    }

    /// Insert a fact carrying a provenance formula. If the fact already
    /// exists its provenance is extended by disjunction. Returns `(fact id,
    /// changed)` where `changed` covers both new facts and provenance
    /// growth.
    pub fn insert_with_prov(&mut self, pred: Symbol, args: Vec<Elem>, prov: Dnf) -> (u32, bool) {
        let args: Vec<Elem> = args.iter().map(|e| self.resolve(e)).collect();
        match self.dedup.entry((pred, args.clone())) {
            Entry::Occupied(o) => {
                let id = *o.get();
                let changed = self.facts[id as usize].prov.or_assign(&prov);
                (id, changed)
            }
            Entry::Vacant(v) => {
                let id = self.facts.len() as u32;
                v.insert(id);
                for (i, a) in args.iter().enumerate() {
                    self.by_pos
                        .entry((pred, i as u32, a.clone()))
                        .or_default()
                        .push(id);
                }
                self.by_pred.entry(pred).or_default().push(id);
                self.facts.push(StoredFact {
                    pred,
                    args,
                    alive: true,
                    prov,
                });
                (id, true)
            }
        }
    }

    /// All alive fact ids.
    pub fn fact_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.facts.len() as u32).filter(|id| self.facts[*id as usize].alive)
    }

    /// Access a fact by id (caller must respect `alive`).
    pub fn fact(&self, id: u32) -> &StoredFact {
        &self.facts[id as usize]
    }

    /// Mutable provenance access.
    pub fn fact_prov_mut(&mut self, id: u32) -> &mut Dnf {
        &mut self.facts[id as usize].prov
    }

    /// Alive fact count.
    pub fn len(&self) -> usize {
        self.facts.iter().filter(|f| f.alive).count()
    }

    /// `true` when no alive facts exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fact ids of a predicate (alive only).
    pub fn facts_of(&self, pred: Symbol) -> impl Iterator<Item = u32> + '_ {
        self.by_pred
            .get(&pred)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |id| self.facts[*id as usize].alive)
    }

    /// Fact ids of `pred` whose `position` equals `elem` (alive only).
    /// `elem` must be a representative.
    pub fn facts_with(&self, pred: Symbol, position: u32, elem: &Elem) -> Vec<u32> {
        self.by_pos
            .get(&(pred, position, elem.clone()))
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|id| self.facts[*id as usize].alive)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Merge two elements (EGD step). Returns `Ok(true)` if the instance
    /// changed; `Err` when two distinct constants clash.
    pub fn merge(&mut self, a: &Elem, b: &Elem) -> Result<bool, Inconsistent> {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        if ra == rb {
            return Ok(false);
        }
        match (&ra, &rb) {
            (Elem::Const(x), Elem::Const(y)) => Err(Inconsistent {
                left: x.clone(),
                right: y.clone(),
            }),
            (Elem::Null(n), Elem::Const(v)) => {
                self.nulls[*n as usize] = NullState::Bound(v.clone());
                self.normalize();
                Ok(true)
            }
            (Elem::Const(v), Elem::Null(n)) => {
                self.nulls[*n as usize] = NullState::Bound(v.clone());
                self.normalize();
                Ok(true)
            }
            (Elem::Null(n1), Elem::Null(n2)) => {
                // Merge the younger null into the older one so that frozen
                // query variables (low ids) stay representatives.
                let (child, parent) = if n1 > n2 { (*n1, *n2) } else { (*n2, *n1) };
                self.nulls[child as usize] = NullState::Child(parent);
                self.normalize();
                Ok(true)
            }
        }
    }

    /// Re-canonicalize every fact after a merge: rewrite arguments to
    /// representatives, de-duplicate facts that became equal (joining their
    /// provenance), and rebuild indexes.
    fn normalize(&mut self) {
        self.dedup.clear();
        self.by_pos.clear();
        self.by_pred.clear();
        let n = self.facts.len();
        for id in 0..n {
            if !self.facts[id].alive {
                continue;
            }
            let pred = self.facts[id].pred;
            let args: Vec<Elem> = self.facts[id]
                .args
                .iter()
                .map(|e| self.resolve(e))
                .collect();
            match self.dedup.entry((pred, args.clone())) {
                Entry::Occupied(o) => {
                    let keep = *o.get() as usize;
                    let prov = self.facts[id].prov.clone();
                    self.facts[keep].prov.or_assign(&prov);
                    self.facts[id].alive = false;
                }
                Entry::Vacant(v) => {
                    v.insert(id as u32);
                    for (i, a) in args.iter().enumerate() {
                        self.by_pos
                            .entry((pred, i as u32, a.clone()))
                            .or_default()
                            .push(id as u32);
                    }
                    self.by_pred.entry(pred).or_default().push(id as u32);
                    self.facts[id].args = args;
                }
            }
        }
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for id in self.fact_ids() {
            if !first {
                writeln!(f)?;
            }
            first = false;
            let fact = self.fact(id);
            write!(f, "{}(", fact.pred)?;
            for (i, a) in fact.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn insert_dedups_identical_facts() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        let (id1, new1) = i.insert(sym("R"), vec![n.clone(), Elem::Const(Value::Int(1))]);
        let (id2, new2) = i.insert(sym("R"), vec![n, Elem::Const(Value::Int(1))]);
        assert!(new1);
        assert!(!new2);
        assert_eq!(id1, id2);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn merge_null_with_constant_rewrites_facts() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("R"), vec![n.clone()]);
        i.merge(&n, &Elem::Const(Value::Int(9))).unwrap();
        let id = i.fact_ids().next().unwrap();
        assert_eq!(i.fact(id).args[0], Elem::Const(Value::Int(9)));
        assert_eq!(i.resolve(&n), Elem::Const(Value::Int(9)));
    }

    #[test]
    fn merge_two_nulls_dedups_facts_and_joins_prov() {
        let mut i = Instance::new();
        let a = i.fresh_null();
        let b = i.fresh_null();
        i.insert_with_prov(sym("R"), vec![a.clone()], Dnf::var(1));
        i.insert_with_prov(sym("R"), vec![b.clone()], Dnf::var(2));
        assert_eq!(i.len(), 2);
        i.merge(&a, &b).unwrap();
        assert_eq!(i.len(), 1);
        let id = i.fact_ids().next().unwrap();
        assert_eq!(i.fact(id).prov.len(), 2); // p1 ∨ p2
    }

    #[test]
    fn constant_clash_is_inconsistent() {
        let mut i = Instance::new();
        let a = Elem::Const(Value::Int(1));
        let b = Elem::Const(Value::Int(2));
        assert!(i.merge(&a, &b).is_err());
    }

    #[test]
    fn lower_null_id_stays_representative() {
        let mut i = Instance::new();
        let a = i.fresh_null(); // N0 — e.g. a frozen head variable
        let b = i.fresh_null(); // N1 — e.g. a chase-invented null
        i.merge(&b, &a).unwrap();
        assert_eq!(i.resolve(&b), a);
    }

    #[test]
    fn position_index_finds_facts() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("R"), vec![n.clone(), Elem::Const(Value::Int(1))]);
        i.insert(sym("R"), vec![n.clone(), Elem::Const(Value::Int(2))]);
        let hits = i.facts_with(sym("R"), 1, &Elem::Const(Value::Int(2)));
        assert_eq!(hits.len(), 1);
        assert_eq!(i.facts_with(sym("R"), 0, &n).len(), 2);
    }

    #[test]
    fn transitive_null_chains_resolve() {
        let mut i = Instance::new();
        let a = i.fresh_null();
        let b = i.fresh_null();
        let c = i.fresh_null();
        i.merge(&b, &c).unwrap(); // c -> b
        i.merge(&a, &b).unwrap(); // b -> a
        assert_eq!(i.resolve(&c), a);
        i.merge(&c, &Elem::Const(Value::Int(5))).unwrap();
        assert_eq!(i.resolve(&a), Elem::Const(Value::Int(5)));
        assert_eq!(i.resolve(&b), Elem::Const(Value::Int(5)));
    }
}
