//! Instances with labelled nulls: the structures the chase runs over.
//!
//! An [`Instance`] stores facts whose arguments are either constants or
//! labelled nulls. EGD steps merge elements through a union-find; the
//! instance is kept *normalized* (every stored argument is a representative)
//! so that homomorphism matching is plain equality.
//!
//! # Index layout and the hot-path contract
//!
//! Homomorphism search ([`crate::hom`]) is the hottest path of the whole
//! rewriting stack, so the index layout is built around *borrowing* probes:
//!
//! - `by_pred` maps a predicate to its fact-id posting list, and `by_pos`
//!   maps `(predicate, position)` to a per-element posting map. Probing
//!   ([`Instance::probe`]) therefore takes the element key **by reference**
//!   (no `Elem` clone per lookup) and returns a borrowed `&[u32]` slice (no
//!   `Vec` allocation per probe). [`Instance::count_with`] exposes the
//!   count-only variant used for join-order selection.
//! - Both index families are rebuilt by [`Instance::merge`]'s normalization
//!   pass and contain **only alive facts** — the former linear "skip dead
//!   facts" filter on every probe is gone; a `debug_assert` guards the
//!   invariant instead. The alive count is maintained incrementally so
//!   [`Instance::len`] is O(1).
//!
//! # Epochs (semi-naive delta support)
//!
//! Every fact records the [`Instance::epoch`] at which it last *changed*:
//! creation, argument rewriting during normalization, absorption of a
//! duplicate's provenance, or provenance growth on re-derivation. The chase
//! advances the epoch once per round and asks for
//! [`Instance::delta_index`]`(threshold)` — the per-predicate lists of facts
//! touched at-or-after `threshold` — which the semi-naive trigger search in
//! [`crate::hom::find_homs_delta`] uses to only enumerate homomorphisms
//! involving at least one recently-changed fact.

use crate::prov::Dnf;
use estocada_pivot::{Symbol, Value};
use std::collections::HashMap;
use std::fmt;

/// An instance element: a constant or a labelled null.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Elem {
    /// A constant value.
    Const(Value),
    /// A labelled null, identified by id.
    Null(u32),
}

impl Elem {
    /// The null id, if this is a null.
    pub fn as_null(&self) -> Option<u32> {
        match self {
            Elem::Null(n) => Some(*n),
            Elem::Const(_) => None,
        }
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Elem::Const(v) => write!(f, "{v}"),
            Elem::Null(n) => write!(f, "_N{n}"),
        }
    }
}

/// A stored fact.
#[derive(Debug, Clone)]
pub struct StoredFact {
    /// Relation name.
    pub pred: Symbol,
    /// Arguments (always representatives — see normalization invariant).
    pub args: Vec<Elem>,
    /// `false` once merged away by deduplication.
    pub alive: bool,
    /// Provenance (used by the provenance chase; `⊤` elsewhere).
    pub prov: Dnf,
}

/// Union-find state of one null.
#[derive(Debug, Clone)]
enum NullState {
    Root,
    Child(u32),
    Bound(Value),
}

/// Error raised when two distinct constants are forced equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistent {
    /// The clashing constants.
    pub left: Value,
    /// The clashing constants.
    pub right: Value,
}

impl fmt::Display for Inconsistent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EGD forces distinct constants equal: {} = {}",
            self.left, self.right
        )
    }
}

impl std::error::Error for Inconsistent {}

/// Per-predicate posting lists of facts touched at-or-after an epoch
/// threshold; built once per chase round by [`Instance::delta_index`].
#[derive(Debug, Clone, Default)]
pub struct DeltaIndex {
    /// The epoch threshold the lists were computed for.
    pub threshold: u64,
    /// Alive facts with `fact_epoch >= threshold`, grouped by predicate.
    pub by_pred: HashMap<Symbol, Vec<u32>>,
}

impl DeltaIndex {
    /// Delta facts of one predicate (empty when none changed).
    pub fn facts_of(&self, pred: Symbol) -> &[u32] {
        self.by_pred.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }
}

static EMPTY_IDS: [u32; 0] = [];

/// An instance with labelled nulls, per-predicate and per-position indexes,
/// EGD merging, and change epochs for semi-naive evaluation.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    facts: Vec<StoredFact>,
    /// Epoch at which the same-index fact last changed (parallel to `facts`).
    fact_epoch: Vec<u64>,
    nulls: Vec<NullState>,
    /// Count of alive facts (kept in sync with `facts[..].alive`).
    alive: usize,
    /// Current change epoch; advanced once per chase round.
    epoch: u64,
    /// predicate → alive fact ids.
    by_pred: HashMap<Symbol, Vec<u32>>,
    /// (pred, position) → element → alive fact ids. The two-level layout
    /// lets probes borrow the element key instead of cloning it into a
    /// composite key.
    by_pos: HashMap<(Symbol, u32), HashMap<Elem, Vec<u32>>>,
    /// predicate → argument vector → fact id (fast duplicate detection;
    /// lookup borrows the candidate arguments as a slice).
    dedup: HashMap<Symbol, HashMap<Vec<Elem>, u32>>,
}

impl Instance {
    /// Empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Allocate a fresh labelled null.
    pub fn fresh_null(&mut self) -> Elem {
        let id = self.nulls.len() as u32;
        self.nulls.push(NullState::Root);
        Elem::Null(id)
    }

    /// Ensure nulls `0..n` exist (used to freeze query variables so that
    /// variable id = null id).
    pub fn reserve_nulls(&mut self, n: u32) {
        while (self.nulls.len() as u32) < n {
            self.nulls.push(NullState::Root);
        }
    }

    /// Number of allocated nulls.
    pub fn null_count(&self) -> usize {
        self.nulls.len()
    }

    /// Resolve an element to its representative.
    pub fn resolve(&self, e: &Elem) -> Elem {
        match e {
            Elem::Const(_) => e.clone(),
            Elem::Null(n) => self.resolve_null(*n),
        }
    }

    fn resolve_null(&self, mut n: u32) -> Elem {
        loop {
            match &self.nulls[n as usize] {
                NullState::Root => return Elem::Null(n),
                NullState::Child(p) => n = *p,
                NullState::Bound(v) => return Elem::Const(v.clone()),
            }
        }
    }

    // -- epochs -------------------------------------------------------------

    /// The current change epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance to a fresh epoch (one chase round) and return it. Facts
    /// inserted or touched from now on are stamped with the new epoch.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Epoch at which `id` last changed.
    pub fn fact_epoch(&self, id: u32) -> u64 {
        self.fact_epoch[id as usize]
    }

    /// Build the per-predicate lists of alive facts touched at-or-after
    /// `threshold`. One linear pass per chase round — the price that buys
    /// delta-restricted trigger search for every constraint in the round.
    pub fn delta_index(&self, threshold: u64) -> DeltaIndex {
        let mut by_pred: HashMap<Symbol, Vec<u32>> = HashMap::new();
        for (i, f) in self.facts.iter().enumerate() {
            if f.alive && self.fact_epoch[i] >= threshold {
                by_pred.entry(f.pred).or_default().push(i as u32);
            }
        }
        DeltaIndex { threshold, by_pred }
    }

    // -- insertion ----------------------------------------------------------

    /// Insert a fact with provenance `⊤`. Returns the fact id and whether
    /// the fact is new.
    pub fn insert(&mut self, pred: Symbol, args: Vec<Elem>) -> (u32, bool) {
        self.insert_with_prov(pred, args, Dnf::tru())
    }

    /// Insert a fact carrying a provenance formula. If the fact already
    /// exists its provenance is extended by disjunction. Returns `(fact id,
    /// changed)` where `changed` covers both new facts and provenance
    /// growth.
    pub fn insert_with_prov(&mut self, pred: Symbol, args: Vec<Elem>, prov: Dnf) -> (u32, bool) {
        let args: Vec<Elem> = args.iter().map(|e| self.resolve(e)).collect();
        // Duplicate lookup borrows `args` as a slice — no key clone unless
        // the fact is genuinely new.
        if let Some(&id) = self.dedup.get(&pred).and_then(|m| m.get(args.as_slice())) {
            let changed = self.facts[id as usize].prov.or_assign(&prov);
            if changed {
                // Provenance growth must re-trigger constraints whose
                // premise matched this fact (the provenance chase reaches
                // its fixpoint through exactly these re-firings).
                self.fact_epoch[id as usize] = self.epoch;
            }
            return (id, changed);
        }
        let id = self.facts.len() as u32;
        self.index_fact(pred, &args, id);
        self.dedup.entry(pred).or_default().insert(args.clone(), id);
        self.facts.push(StoredFact {
            pred,
            args,
            alive: true,
            prov,
        });
        self.fact_epoch.push(self.epoch);
        self.alive += 1;
        (id, true)
    }

    /// Add `id` to the predicate and positional indexes.
    fn index_fact(&mut self, pred: Symbol, args: &[Elem], id: u32) {
        for (i, a) in args.iter().enumerate() {
            let bucket = self.by_pos.entry((pred, i as u32)).or_default();
            match bucket.get_mut(a) {
                Some(ids) => ids.push(id),
                None => {
                    bucket.insert(a.clone(), vec![id]);
                }
            }
        }
        self.by_pred.entry(pred).or_default().push(id);
    }

    // -- lookups ------------------------------------------------------------

    /// All alive fact ids.
    pub fn fact_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.facts.len() as u32).filter(|id| self.facts[*id as usize].alive)
    }

    /// Access a fact by id (caller must respect `alive`).
    pub fn fact(&self, id: u32) -> &StoredFact {
        &self.facts[id as usize]
    }

    /// Whether the fact is still alive (not merged away).
    pub fn is_alive(&self, id: u32) -> bool {
        self.facts[id as usize].alive
    }

    /// Mutable provenance access.
    pub fn fact_prov_mut(&mut self, id: u32) -> &mut Dnf {
        &mut self.facts[id as usize].prov
    }

    /// Alive fact count (O(1)).
    pub fn len(&self) -> usize {
        self.alive
    }

    /// `true` when no alive facts exist.
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// Alive facts of a predicate, as a borrowed posting list. The indexes
    /// contain only alive facts (normalization rebuilds them), so no
    /// filtering pass is needed.
    pub fn pred_facts(&self, pred: Symbol) -> &[u32] {
        let ids = self
            .by_pred
            .get(&pred)
            .map(Vec::as_slice)
            .unwrap_or(&EMPTY_IDS);
        debug_assert!(ids.iter().all(|id| self.facts[*id as usize].alive));
        ids
    }

    /// Number of alive facts of a predicate (O(1)).
    pub fn pred_count(&self, pred: Symbol) -> usize {
        self.by_pred.get(&pred).map(Vec::len).unwrap_or(0)
    }

    /// Fact ids of a predicate (alive only) — iterator form kept for
    /// existing call sites; new code should prefer [`Instance::pred_facts`].
    pub fn facts_of(&self, pred: Symbol) -> impl Iterator<Item = u32> + '_ {
        self.pred_facts(pred).iter().copied()
    }

    /// Alive facts of `pred` whose `position` equals `elem`, as a borrowed
    /// posting list. `elem` must be a representative. No allocation, no key
    /// clone.
    pub fn probe(&self, pred: Symbol, position: u32, elem: &Elem) -> &[u32] {
        let ids = self
            .by_pos
            .get(&(pred, position))
            .and_then(|bucket| bucket.get(elem))
            .map(Vec::as_slice)
            .unwrap_or(&EMPTY_IDS);
        debug_assert!(ids.iter().all(|id| self.facts[*id as usize].alive));
        ids
    }

    /// Number of alive facts of `pred` whose `position` equals `elem`
    /// (count-only probe for selectivity estimation; O(1)).
    pub fn count_with(&self, pred: Symbol, position: u32, elem: &Elem) -> usize {
        self.probe(pred, position, elem).len()
    }

    /// Fact ids of `pred` whose `position` equals `elem` (alive only).
    /// Allocating compatibility wrapper over [`Instance::probe`].
    pub fn facts_with(&self, pred: Symbol, position: u32, elem: &Elem) -> Vec<u32> {
        self.probe(pred, position, elem).to_vec()
    }

    // -- EGD merging --------------------------------------------------------

    /// Merge two elements (EGD step). Returns `Ok(true)` if the instance
    /// changed; `Err` when two distinct constants clash.
    pub fn merge(&mut self, a: &Elem, b: &Elem) -> Result<bool, Inconsistent> {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        if ra == rb {
            return Ok(false);
        }
        match (&ra, &rb) {
            (Elem::Const(x), Elem::Const(y)) => Err(Inconsistent {
                left: x.clone(),
                right: y.clone(),
            }),
            (Elem::Null(n), Elem::Const(v)) => {
                self.nulls[*n as usize] = NullState::Bound(v.clone());
                self.normalize();
                Ok(true)
            }
            (Elem::Const(v), Elem::Null(n)) => {
                self.nulls[*n as usize] = NullState::Bound(v.clone());
                self.normalize();
                Ok(true)
            }
            (Elem::Null(n1), Elem::Null(n2)) => {
                // Merge the younger null into the older one so that frozen
                // query variables (low ids) stay representatives.
                let (child, parent) = if n1 > n2 { (*n1, *n2) } else { (*n2, *n1) };
                self.nulls[child as usize] = NullState::Child(parent);
                self.normalize();
                Ok(true)
            }
        }
    }

    /// Re-canonicalize every fact after a merge: rewrite arguments to
    /// representatives, de-duplicate facts that became equal (joining their
    /// provenance), and rebuild indexes. Facts whose arguments changed — and
    /// facts that absorbed a duplicate's provenance — are stamped with the
    /// current epoch so the semi-naive search revisits them.
    fn normalize(&mut self) {
        self.dedup.clear();
        self.by_pos.clear();
        self.by_pred.clear();
        self.alive = 0;
        let n = self.facts.len();
        for id in 0..n {
            if !self.facts[id].alive {
                continue;
            }
            let pred = self.facts[id].pred;
            let args: Vec<Elem> = self.facts[id]
                .args
                .iter()
                .map(|e| self.resolve(e))
                .collect();
            if let Some(&keep) = self.dedup.get(&pred).and_then(|m| m.get(args.as_slice())) {
                // Collapsed into an earlier fact: join provenance there.
                let prov = std::mem::replace(&mut self.facts[id].prov, Dnf::fals());
                let grew = self.facts[keep as usize].prov.or_assign(&prov);
                self.facts[id].alive = false;
                if grew {
                    self.fact_epoch[keep as usize] = self.epoch;
                }
                continue;
            }
            if self.facts[id].args != args {
                self.facts[id].args = args.clone();
                self.fact_epoch[id] = self.epoch;
            }
            self.index_fact(pred, &args, id as u32);
            self.dedup.entry(pred).or_default().insert(args, id as u32);
            self.alive += 1;
        }
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for id in self.fact_ids() {
            if !first {
                writeln!(f)?;
            }
            first = false;
            let fact = self.fact(id);
            write!(f, "{}(", fact.pred)?;
            for (i, a) in fact.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn insert_dedups_identical_facts() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        let (id1, new1) = i.insert(sym("R"), vec![n.clone(), Elem::Const(Value::Int(1))]);
        let (id2, new2) = i.insert(sym("R"), vec![n, Elem::Const(Value::Int(1))]);
        assert!(new1);
        assert!(!new2);
        assert_eq!(id1, id2);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn merge_null_with_constant_rewrites_facts() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("R"), vec![n.clone()]);
        i.merge(&n, &Elem::Const(Value::Int(9))).unwrap();
        let id = i.fact_ids().next().unwrap();
        assert_eq!(i.fact(id).args[0], Elem::Const(Value::Int(9)));
        assert_eq!(i.resolve(&n), Elem::Const(Value::Int(9)));
    }

    #[test]
    fn merge_two_nulls_dedups_facts_and_joins_prov() {
        let mut i = Instance::new();
        let a = i.fresh_null();
        let b = i.fresh_null();
        i.insert_with_prov(sym("R"), vec![a.clone()], Dnf::var(1));
        i.insert_with_prov(sym("R"), vec![b.clone()], Dnf::var(2));
        assert_eq!(i.len(), 2);
        i.merge(&a, &b).unwrap();
        assert_eq!(i.len(), 1);
        let id = i.fact_ids().next().unwrap();
        assert_eq!(i.fact(id).prov.len(), 2); // p1 ∨ p2
    }

    #[test]
    fn constant_clash_is_inconsistent() {
        let mut i = Instance::new();
        let a = Elem::Const(Value::Int(1));
        let b = Elem::Const(Value::Int(2));
        assert!(i.merge(&a, &b).is_err());
    }

    #[test]
    fn lower_null_id_stays_representative() {
        let mut i = Instance::new();
        let a = i.fresh_null(); // N0 — e.g. a frozen head variable
        let b = i.fresh_null(); // N1 — e.g. a chase-invented null
        i.merge(&b, &a).unwrap();
        assert_eq!(i.resolve(&b), a);
    }

    #[test]
    fn position_index_finds_facts() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("R"), vec![n.clone(), Elem::Const(Value::Int(1))]);
        i.insert(sym("R"), vec![n.clone(), Elem::Const(Value::Int(2))]);
        let hits = i.facts_with(sym("R"), 1, &Elem::Const(Value::Int(2)));
        assert_eq!(hits.len(), 1);
        assert_eq!(i.facts_with(sym("R"), 0, &n).len(), 2);
        assert_eq!(i.count_with(sym("R"), 0, &n), 2);
        assert_eq!(i.probe(sym("R"), 0, &n).len(), 2);
        assert_eq!(i.pred_count(sym("R")), 2);
    }

    #[test]
    fn transitive_null_chains_resolve() {
        let mut i = Instance::new();
        let a = i.fresh_null();
        let b = i.fresh_null();
        let c = i.fresh_null();
        i.merge(&b, &c).unwrap(); // c -> b
        i.merge(&a, &b).unwrap(); // b -> a
        assert_eq!(i.resolve(&c), a);
        i.merge(&c, &Elem::Const(Value::Int(5))).unwrap();
        assert_eq!(i.resolve(&a), Elem::Const(Value::Int(5)));
        assert_eq!(i.resolve(&b), Elem::Const(Value::Int(5)));
    }

    #[test]
    fn indexes_contain_only_alive_facts_after_merge() {
        let mut i = Instance::new();
        let a = i.fresh_null();
        let b = i.fresh_null();
        i.insert(sym("R"), vec![a.clone(), Elem::Const(Value::Int(1))]);
        i.insert(sym("R"), vec![b.clone(), Elem::Const(Value::Int(1))]);
        i.merge(&a, &b).unwrap();
        // Two facts collapsed into one; the indexes must reflect that
        // without any dead-entry filtering.
        assert_eq!(i.pred_facts(sym("R")).len(), 1);
        assert_eq!(i.probe(sym("R"), 1, &Elem::Const(Value::Int(1))).len(), 1);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn epochs_track_insertions_and_rewrites() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("R"), vec![n.clone()]); // epoch 0
        let e1 = i.advance_epoch();
        let (id2, _) = i.insert(sym("S"), vec![Elem::Const(Value::Int(3))]);
        assert_eq!(i.fact_epoch(0), 0);
        assert_eq!(i.fact_epoch(id2), e1);
        // Delta at threshold e1 sees only the new fact.
        let d = i.delta_index(e1);
        assert_eq!(d.facts_of(sym("S")), &[id2]);
        assert!(d.facts_of(sym("R")).is_empty());
        // A merge rewriting fact 0's argument bumps its epoch.
        let e2 = i.advance_epoch();
        i.merge(&n, &Elem::Const(Value::Int(7))).unwrap();
        assert_eq!(i.fact_epoch(0), e2);
        assert_eq!(i.delta_index(e2).facts_of(sym("R")), &[0]);
    }

    #[test]
    fn provenance_growth_bumps_epoch() {
        let mut i = Instance::new();
        i.insert_with_prov(sym("R"), vec![Elem::Const(Value::Int(1))], Dnf::var(0));
        let e = i.advance_epoch();
        let (id, changed) =
            i.insert_with_prov(sym("R"), vec![Elem::Const(Value::Int(1))], Dnf::var(1));
        assert!(changed);
        assert_eq!(i.fact_epoch(id), e);
        // Re-inserting identical provenance changes nothing.
        i.advance_epoch();
        let (_, changed) =
            i.insert_with_prov(sym("R"), vec![Elem::Const(Value::Int(1))], Dnf::var(1));
        assert!(!changed);
        assert_eq!(i.fact_epoch(id), e);
    }
}
