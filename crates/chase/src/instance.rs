//! Instances with labelled nulls: the structures the chase runs over.
//!
//! An [`Instance`] stores facts whose arguments are either interned
//! constants or labelled nulls. EGD steps merge elements through a
//! union-find; the instance is kept *normalized* (every stored argument is
//! a representative) so that homomorphism matching is plain equality.
//!
//! # Interned `Copy` elements
//!
//! [`Elem`] is an 8-byte `Copy + Eq + Hash + Ord` type: constants are
//! interned into the process-wide [`ConstId`] table
//! ([`estocada_pivot::intern`], the same pattern as `Symbol`), so bindings,
//! posting-map keys, dedup keys and [`Instance::resolve`] all move plain
//! integers — no `Value` clone or structural comparison anywhere on the
//! chase hot path. `Elem` equality agrees with `Value` equality by
//! construction (interning is injective); `Elem`'s `Ord` is allocation
//! order, which is stable within a process but *not* the `Value` order.
//!
//! # Union-find with pointer halving
//!
//! Null equivalence is a union-find over a parent array. Resolution
//! ([`Instance::resolve`]) pointer-halves as it walks, so repeated probes
//! after deep `Null`/`Null` merge chains are amortized O(α) instead of
//! O(chain depth). The parent cells are relaxed atomics: halving is a
//! benign optimization (any intermediate pointer still leads to the same
//! root), so read-side compression works through `&Instance` and the type
//! stays `Sync` for future read-only parallel trigger searches. Constant
//! bindings live at the root (`bound`); a bound root resolves to its
//! constant.
//!
//! # Index layout and the hot-path contract
//!
//! Homomorphism search ([`crate::hom`]) is the hottest path of the whole
//! rewriting stack, so the index layout is built around *borrowing* probes:
//!
//! - `by_pred` maps a predicate to its fact-id posting list, and `by_pos`
//!   maps `(predicate, position)` to a per-element posting map. Probing
//!   ([`Instance::probe`]) returns a borrowed `&[u32]` slice (no `Vec`
//!   allocation per probe); [`Instance::count_with`] exposes the count-only
//!   variant used for join-order selection.
//! - Both index families contain **only alive facts** and every posting
//!   list is kept sorted ascending by fact id — exactly the order a full
//!   index rebuild would produce — so incremental maintenance is
//!   observationally identical to rebuilding. A `debug_assert` guards the
//!   alive invariant.
//!
//! # Incremental EGD normalization
//!
//! [`Instance::merge`] is **incremental**: a `null → fact ids` occurrence
//! index (`null_occ`) records, for every representative null, the facts
//! whose stored arguments mention it. A merge retires exactly one null
//! (the child, or the null being bound to a constant), consumes its
//! occurrence list, and rewrites / re-indexes / re-dedups only those facts
//! — O(touched posting lists), not O(instance). Deduplication keeps the
//! smallest fact id and joins provenance in ascending id order, the same
//! keeper choice and join order as a full rebuild, so the two strategies
//! produce bit-identical instances (the differential suite in
//! `tests/incremental_merge_properties.rs` pins this against
//! [`Instance::merge_full_rebuild`], the retained full-rebuild baseline).
//! Occurrence lists may contain dead facts (a fact killed by dedup stays
//! in the lists of its other nulls); they are lazily skipped when the list
//! is consumed.
//!
//! # Epochs (semi-naive delta support)
//!
//! Every fact records the [`Instance::epoch`] at which it last *changed*:
//! creation, argument rewriting during normalization, absorption of a
//! duplicate's provenance, or provenance growth on re-derivation. The chase
//! advances the epoch once per round and asks for
//! [`Instance::delta_index`]`(threshold)` — the per-predicate lists of facts
//! touched at-or-after `threshold` — which the semi-naive trigger search in
//! [`crate::hom::find_homs_delta`] uses to only enumerate homomorphisms
//! involving at least one recently-changed fact. Incremental merges stamp
//! exactly the facts a full rebuild would stamp (argument rewrites and
//! provenance absorptions), so the delta contract is unchanged.

use crate::prov::Dnf;
use estocada_pivot::{ConstId, Symbol, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// An instance element: an interned constant or a labelled null.
///
/// 8 bytes, `Copy`; equality/hashing are integer operations. Use
/// [`Elem::of`] / [`Elem::constant`] to intern a [`Value`] and
/// [`Elem::as_value`] to resolve one back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Elem {
    /// An interned constant value.
    Const(ConstId),
    /// A labelled null, identified by id.
    Null(u32),
}

impl Elem {
    /// Intern a borrowed value as a constant element.
    pub fn constant(v: &Value) -> Elem {
        Elem::Const(ConstId::intern(v))
    }

    /// Intern an owned (or convertible) value as a constant element.
    pub fn of(v: impl Into<Value>) -> Elem {
        Elem::Const(ConstId::intern(&v.into()))
    }

    /// The null id, if this is a null.
    pub fn as_null(&self) -> Option<u32> {
        match self {
            Elem::Null(n) => Some(*n),
            Elem::Const(_) => None,
        }
    }

    /// The interned value, if this is a constant.
    pub fn as_value(&self) -> Option<Value> {
        match self {
            Elem::Const(c) => Some((*c.value()).clone()),
            Elem::Null(_) => None,
        }
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Elem::Const(c) => write!(f, "{c}"),
            Elem::Null(n) => write!(f, "_N{n}"),
        }
    }
}

/// A stored fact.
#[derive(Debug, Clone)]
pub struct StoredFact {
    /// Relation name.
    pub pred: Symbol,
    /// Arguments (always representatives — see normalization invariant).
    pub args: Vec<Elem>,
    /// `false` once merged away by deduplication.
    pub alive: bool,
    /// Provenance (used by the provenance chase; `⊤` elsewhere).
    pub prov: Dnf,
}

/// Error raised when two distinct constants are forced equal.
///
/// When the clash was provoked by an EGD firing, [`Inconsistent::egd`] and
/// [`Inconsistent::trigger_facts`] carry the constraint name and the
/// rendered premise facts of the firing trigger, so chase failures name
/// their culprit instead of just the two values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistent {
    /// The clashing constants.
    pub left: Value,
    /// The clashing constants.
    pub right: Value,
    /// Name of the EGD whose firing forced the merge, when known.
    pub egd: Option<Symbol>,
    /// Rendered premise facts of the firing trigger, when known.
    pub trigger_facts: Vec<String>,
}

impl Inconsistent {
    /// A bare clash (direct [`Instance::merge`] call, no EGD context).
    pub fn new(left: Value, right: Value) -> Inconsistent {
        Inconsistent {
            left,
            right,
            egd: None,
            trigger_facts: Vec::new(),
        }
    }

    /// Attach the firing EGD's name and its rendered trigger facts.
    pub fn with_trigger(mut self, egd: Symbol, trigger_facts: Vec<String>) -> Inconsistent {
        self.egd = Some(egd);
        self.trigger_facts = trigger_facts;
        self
    }
}

impl fmt::Display for Inconsistent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.egd {
            Some(name) => write!(
                f,
                "EGD [{name}] forces distinct constants equal: {} = {}",
                self.left, self.right
            )?,
            None => write!(
                f,
                "EGD forces distinct constants equal: {} = {}",
                self.left, self.right
            )?,
        }
        if !self.trigger_facts.is_empty() {
            write!(f, " (trigger: {})", self.trigger_facts.join(" ∧ "))?;
        }
        Ok(())
    }
}

impl std::error::Error for Inconsistent {}

/// Per-predicate posting lists of facts touched at-or-after an epoch
/// threshold; built once per chase round by [`Instance::delta_index`].
#[derive(Debug, Clone, Default)]
pub struct DeltaIndex {
    /// The epoch threshold the lists were computed for.
    pub threshold: u64,
    /// Alive facts with `fact_epoch >= threshold`, grouped by predicate.
    pub by_pred: HashMap<Symbol, Vec<u32>>,
}

impl DeltaIndex {
    /// Delta facts of one predicate (empty when none changed).
    pub fn facts_of(&self, pred: Symbol) -> &[u32] {
        self.by_pred.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }
}

static EMPTY_IDS: [u32; 0] = [];

/// Insert `id` into a sorted posting list, keeping it sorted and deduped.
fn insert_sorted(ids: &mut Vec<u32>, id: u32) {
    match ids.binary_search(&id) {
        Ok(_) => {}
        Err(pos) => ids.insert(pos, id),
    }
}

/// Remove `id` from a sorted posting list (no-op when absent).
fn remove_sorted(ids: &mut Vec<u32>, id: u32) {
    if let Ok(pos) = ids.binary_search(&id) {
        ids.remove(pos);
    }
}

/// An instance with labelled nulls, per-predicate and per-position indexes,
/// incremental EGD merging, and change epochs for semi-naive evaluation.
#[derive(Debug, Default)]
pub struct Instance {
    facts: Vec<StoredFact>,
    /// Epoch at which the same-index fact last changed (parallel to `facts`).
    fact_epoch: Vec<u64>,
    /// Union-find parent per null; `parent[i] == i` means root. Relaxed
    /// atomics so read-side resolution can pointer-halve through `&self`.
    parent: Vec<AtomicU32>,
    /// Constant binding of a root null (only meaningful at roots).
    bound: Vec<Option<ConstId>>,
    /// Count of alive facts (kept in sync with `facts[..].alive`).
    alive: usize,
    /// Current change epoch; advanced once per chase round.
    epoch: u64,
    /// predicate → alive fact ids (sorted ascending).
    by_pred: HashMap<Symbol, Vec<u32>>,
    /// (pred, position) → element → alive fact ids (sorted ascending). The
    /// two-level layout lets probes borrow the element key.
    by_pos: HashMap<(Symbol, u32), HashMap<Elem, Vec<u32>>>,
    /// predicate → argument vector → fact id (fast duplicate detection;
    /// lookup borrows the candidate arguments as a slice).
    dedup: HashMap<Symbol, HashMap<Vec<Elem>, u32>>,
    /// representative null → fact ids whose stored args mention it (sorted
    /// ascending; may contain dead facts, lazily skipped on consumption).
    null_occ: HashMap<u32, Vec<u32>>,
}

impl Clone for Instance {
    fn clone(&self) -> Instance {
        Instance {
            facts: self.facts.clone(),
            fact_epoch: self.fact_epoch.clone(),
            parent: self
                .parent
                .iter()
                .map(|p| AtomicU32::new(p.load(Ordering::Relaxed)))
                .collect(),
            bound: self.bound.clone(),
            alive: self.alive,
            epoch: self.epoch,
            by_pred: self.by_pred.clone(),
            by_pos: self.by_pos.clone(),
            dedup: self.dedup.clone(),
            null_occ: self.null_occ.clone(),
        }
    }
}

impl Instance {
    /// Empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Allocate a fresh labelled null.
    pub fn fresh_null(&mut self) -> Elem {
        let id = self.parent.len() as u32;
        self.parent.push(AtomicU32::new(id));
        self.bound.push(None);
        Elem::Null(id)
    }

    /// Ensure nulls `0..n` exist (used to freeze query variables so that
    /// variable id = null id).
    pub fn reserve_nulls(&mut self, n: u32) {
        while (self.parent.len() as u32) < n {
            let id = self.parent.len() as u32;
            self.parent.push(AtomicU32::new(id));
            self.bound.push(None);
        }
    }

    /// Number of allocated nulls.
    pub fn null_count(&self) -> usize {
        self.parent.len()
    }

    /// Root of null `n`, pointer-halving along the way (relaxed stores: any
    /// intermediate pointer still reaches the same root, so concurrent
    /// readers can only help each other).
    fn find(&self, mut n: u32) -> u32 {
        loop {
            let p = self.parent[n as usize].load(Ordering::Relaxed);
            if p == n {
                return n;
            }
            let gp = self.parent[p as usize].load(Ordering::Relaxed);
            if gp != p {
                self.parent[n as usize].store(gp, Ordering::Relaxed);
            }
            n = gp;
        }
    }

    /// Resolve an element to its representative.
    pub fn resolve(&self, e: &Elem) -> Elem {
        match e {
            Elem::Const(_) => *e,
            Elem::Null(n) => self.resolve_null(*n),
        }
    }

    fn resolve_null(&self, n: u32) -> Elem {
        let root = self.find(n);
        match self.bound[root as usize] {
            Some(c) => Elem::Const(c),
            None => Elem::Null(root),
        }
    }

    // -- epochs -------------------------------------------------------------

    /// The current change epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance to a fresh epoch (one chase round) and return it. Facts
    /// inserted or touched from now on are stamped with the new epoch.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Epoch at which `id` last changed.
    pub fn fact_epoch(&self, id: u32) -> u64 {
        self.fact_epoch[id as usize]
    }

    /// Build the per-predicate lists of alive facts touched at-or-after
    /// `threshold`. One linear pass per chase round — the price that buys
    /// delta-restricted trigger search for every constraint in the round.
    pub fn delta_index(&self, threshold: u64) -> DeltaIndex {
        let mut by_pred: HashMap<Symbol, Vec<u32>> = HashMap::new();
        for (i, f) in self.facts.iter().enumerate() {
            if f.alive && self.fact_epoch[i] >= threshold {
                by_pred.entry(f.pred).or_default().push(i as u32);
            }
        }
        DeltaIndex { threshold, by_pred }
    }

    // -- insertion ----------------------------------------------------------

    /// Insert a fact with provenance `⊤`. Returns the fact id and whether
    /// the fact is new.
    pub fn insert(&mut self, pred: Symbol, args: Vec<Elem>) -> (u32, bool) {
        self.insert_with_prov(pred, args, Dnf::tru())
    }

    /// Insert a fact carrying a provenance formula. If the fact already
    /// exists its provenance is extended by disjunction. Returns `(fact id,
    /// changed)` where `changed` covers both new facts and provenance
    /// growth.
    pub fn insert_with_prov(&mut self, pred: Symbol, args: Vec<Elem>, prov: Dnf) -> (u32, bool) {
        let args: Vec<Elem> = args.iter().map(|e| self.resolve(e)).collect();
        // Duplicate lookup borrows `args` as a slice — no key clone unless
        // the fact is genuinely new.
        if let Some(&id) = self.dedup.get(&pred).and_then(|m| m.get(args.as_slice())) {
            let changed = self.facts[id as usize].prov.or_assign(&prov);
            if changed {
                // Provenance growth must re-trigger constraints whose
                // premise matched this fact (the provenance chase reaches
                // its fixpoint through exactly these re-firings).
                self.fact_epoch[id as usize] = self.epoch;
            }
            return (id, changed);
        }
        let id = self.facts.len() as u32;
        self.index_fact(pred, &args, id);
        self.dedup.entry(pred).or_default().insert(args.clone(), id);
        self.facts.push(StoredFact {
            pred,
            args,
            alive: true,
            prov,
        });
        self.fact_epoch.push(self.epoch);
        self.alive += 1;
        (id, true)
    }

    /// Add `id` to the predicate, positional and occurrence indexes.
    /// `id` is a fresh maximal fact id, so plain pushes keep the predicate
    /// and positional lists sorted.
    fn index_fact(&mut self, pred: Symbol, args: &[Elem], id: u32) {
        for (i, a) in args.iter().enumerate() {
            let bucket = self.by_pos.entry((pred, i as u32)).or_default();
            match bucket.get_mut(a) {
                Some(ids) => ids.push(id),
                None => {
                    bucket.insert(*a, vec![id]);
                }
            }
            if let Elem::Null(n) = a {
                insert_sorted(self.null_occ.entry(*n).or_default(), id);
            }
        }
        self.by_pred.entry(pred).or_default().push(id);
    }

    // -- DML deltas ---------------------------------------------------------

    /// Id of the alive fact `pred(args)`, if present. `args` must already
    /// be representatives (trivially true for the ground facts the DML
    /// path looks up).
    pub fn find_fact(&self, pred: Symbol, args: &[Elem]) -> Option<u32> {
        self.dedup.get(&pred).and_then(|m| m.get(args)).copied()
    }

    /// Re-stamp fact `id` with the current epoch so the next
    /// [`Instance::delta_index`] includes it. The DML delete path touches
    /// doomed facts first, enumerates the homomorphisms flowing through
    /// them semi-naively, and only then retracts them.
    pub fn touch(&mut self, id: u32) {
        self.fact_epoch[id as usize] = self.epoch;
    }

    /// Retract an alive fact: drop it from the dedup, positional and
    /// predicate indexes and mark it dead — the inverse of
    /// [`Instance::insert`], used by the DML delete path. Stale `null_occ`
    /// entries are left behind and lazily skipped on consumption, the same
    /// policy as facts killed by merge deduplication.
    pub fn retract(&mut self, id: u32) {
        debug_assert!(self.facts[id as usize].alive, "retract of a dead fact");
        let pred = self.facts[id as usize].pred;
        let args = self.facts[id as usize].args.clone();
        if let Some(m) = self.dedup.get_mut(&pred) {
            m.remove(args.as_slice());
        }
        self.unindex_positions(pred, &args, id);
        if let Some(ids) = self.by_pred.get_mut(&pred) {
            remove_sorted(ids, id);
        }
        self.facts[id as usize].alive = false;
        self.alive -= 1;
    }

    // -- lookups ------------------------------------------------------------

    /// All alive fact ids.
    pub fn fact_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.facts.len() as u32).filter(|id| self.facts[*id as usize].alive)
    }

    /// Access a fact by id (caller must respect `alive`).
    pub fn fact(&self, id: u32) -> &StoredFact {
        &self.facts[id as usize]
    }

    /// Render fact `id` as `pred(arg, …)` (diagnostics).
    pub fn format_fact(&self, id: u32) -> String {
        let f = &self.facts[id as usize];
        let args: Vec<String> = f.args.iter().map(|a| a.to_string()).collect();
        format!("{}({})", f.pred, args.join(", "))
    }

    /// Whether the fact is still alive (not merged away).
    pub fn is_alive(&self, id: u32) -> bool {
        self.facts[id as usize].alive
    }

    /// Mutable provenance access.
    pub fn fact_prov_mut(&mut self, id: u32) -> &mut Dnf {
        &mut self.facts[id as usize].prov
    }

    /// Alive fact count (O(1)).
    pub fn len(&self) -> usize {
        self.alive
    }

    /// `true` when no alive facts exist.
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// Alive facts of a predicate, as a borrowed posting list (ascending by
    /// fact id). The indexes contain only alive facts, so no filtering pass
    /// is needed.
    pub fn pred_facts(&self, pred: Symbol) -> &[u32] {
        let ids = self
            .by_pred
            .get(&pred)
            .map(Vec::as_slice)
            .unwrap_or(&EMPTY_IDS);
        debug_assert!(ids.iter().all(|id| self.facts[*id as usize].alive));
        ids
    }

    /// Number of alive facts of a predicate (O(1)).
    pub fn pred_count(&self, pred: Symbol) -> usize {
        self.by_pred.get(&pred).map(Vec::len).unwrap_or(0)
    }

    /// Fact ids of a predicate (alive only) — iterator form kept for
    /// existing call sites; new code should prefer [`Instance::pred_facts`].
    pub fn facts_of(&self, pred: Symbol) -> impl Iterator<Item = u32> + '_ {
        self.pred_facts(pred).iter().copied()
    }

    /// Alive facts of `pred` whose `position` equals `elem`, as a borrowed
    /// posting list (ascending by fact id). `elem` must be a
    /// representative. No allocation, no key clone.
    pub fn probe(&self, pred: Symbol, position: u32, elem: &Elem) -> &[u32] {
        let ids = self
            .by_pos
            .get(&(pred, position))
            .and_then(|bucket| bucket.get(elem))
            .map(Vec::as_slice)
            .unwrap_or(&EMPTY_IDS);
        debug_assert!(ids.iter().all(|id| self.facts[*id as usize].alive));
        ids
    }

    /// Number of alive facts of `pred` whose `position` equals `elem`
    /// (count-only probe for selectivity estimation; O(1)).
    pub fn count_with(&self, pred: Symbol, position: u32, elem: &Elem) -> usize {
        self.probe(pred, position, elem).len()
    }

    // -- EGD merging --------------------------------------------------------

    /// Merge two elements (EGD step). Returns `Ok(true)` if the instance
    /// changed; `Err` when two distinct constants clash.
    ///
    /// Incremental: only the facts whose stored arguments mention the
    /// retired null are rewritten, re-indexed and re-dedupped (see module
    /// docs). Observationally identical to [`Instance::merge_full_rebuild`].
    pub fn merge(&mut self, a: &Elem, b: &Elem) -> Result<bool, Inconsistent> {
        Ok(self.merge_retired(a, b)?.is_some())
    }

    /// [`Instance::merge`] additionally reporting *which* null the merge
    /// retired: `Ok(Some(n))` when the instance changed by retiring null
    /// `n` (the younger of two null roots, or the null that was bound to a
    /// constant), `Ok(None)` when both sides already resolved equal.
    ///
    /// A merge can only disturb state keyed on *representatives* by
    /// retiring one — every surviving element still resolves to itself —
    /// so caches keyed on resolved elements (the chase-level applicability
    /// memo in [`mod@crate::chase`]) use the returned id to invalidate exactly
    /// the entries this merge can affect, mirroring the `null → fact ids`
    /// occurrence index the instance itself uses for incremental
    /// normalization.
    pub fn merge_retired(&mut self, a: &Elem, b: &Elem) -> Result<Option<u32>, Inconsistent> {
        match self.merge_union(a, b)? {
            None => Ok(None),
            Some(retired) => {
                self.rewrite_occurrences(retired);
                Ok(Some(retired))
            }
        }
    }

    /// Union-find part of a merge: resolve both sides, link or bind, and
    /// return the retired null (`None` when already equal).
    fn merge_union(&mut self, a: &Elem, b: &Elem) -> Result<Option<u32>, Inconsistent> {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        if ra == rb {
            return Ok(None);
        }
        match (ra, rb) {
            (Elem::Const(x), Elem::Const(y)) => Err(Inconsistent::new(
                (*x.value()).clone(),
                (*y.value()).clone(),
            )),
            (Elem::Null(n), Elem::Const(c)) | (Elem::Const(c), Elem::Null(n)) => {
                self.bound[n as usize] = Some(c);
                Ok(Some(n))
            }
            (Elem::Null(n1), Elem::Null(n2)) => {
                // Merge the younger null into the older one so that frozen
                // query variables (low ids) stay representatives.
                let (child, parent) = if n1 > n2 { (n1, n2) } else { (n2, n1) };
                self.parent[child as usize].store(parent, Ordering::Relaxed);
                Ok(Some(child))
            }
        }
    }

    /// Re-canonicalize exactly the facts whose stored arguments mention the
    /// retired null `child`: rewrite their arguments to representatives,
    /// re-dedup (smallest id survives, provenance joins in ascending id
    /// order — the full-rebuild keeper choice), and patch the posting lists
    /// of the touched elements. Facts whose arguments changed — and facts
    /// that absorbed a duplicate's provenance — are stamped with the
    /// current epoch so the semi-naive search revisits them.
    fn rewrite_occurrences(&mut self, child: u32) {
        let Some(touched) = self.null_occ.remove(&child) else {
            return;
        };
        // `touched` is sorted ascending; processing in id order replicates
        // the keeper choice and provenance-join order of a full rebuild.
        for id in touched {
            if !self.facts[id as usize].alive {
                continue; // stale entry: the fact died in an earlier merge
            }
            self.renormalize_fact(id);
        }
    }

    /// Rewrite one touched fact's arguments to representatives and restore
    /// the index/dedup invariants around it.
    fn renormalize_fact(&mut self, id: u32) {
        let pred = self.facts[id as usize].pred;
        let old_args = self.facts[id as usize].args.clone();
        let new_args: Vec<Elem> = old_args.iter().map(|e| self.resolve(e)).collect();
        if new_args == old_args {
            return;
        }
        // Drop the stale dedup key and positional entries.
        if let Some(m) = self.dedup.get_mut(&pred) {
            m.remove(old_args.as_slice());
        }
        self.unindex_positions(pred, &old_args, id);

        match self
            .dedup
            .get(&pred)
            .and_then(|m| m.get(new_args.as_slice()))
            .copied()
        {
            Some(keep) if keep < id => {
                // Collapsed into an earlier fact: join provenance there.
                let prov = std::mem::replace(&mut self.facts[id as usize].prov, Dnf::fals());
                let grew = self.facts[keep as usize].prov.or_assign(&prov);
                self.facts[id as usize].alive = false;
                self.alive -= 1;
                if let Some(ids) = self.by_pred.get_mut(&pred) {
                    remove_sorted(ids, id);
                }
                if grew {
                    self.fact_epoch[keep as usize] = self.epoch;
                }
            }
            Some(keep) => {
                // A later fact holds these arguments: the smaller id wins
                // (as in a full rebuild, where it would be visited first).
                // `id` takes over the dedup slot and the later fact's
                // provenance; the later fact dies.
                debug_assert!(keep > id);
                let prov = std::mem::replace(&mut self.facts[keep as usize].prov, Dnf::fals());
                self.facts[keep as usize].alive = false;
                self.alive -= 1;
                if let Some(ids) = self.by_pred.get_mut(&pred) {
                    remove_sorted(ids, keep);
                }
                self.unindex_positions(pred, &new_args, keep);
                self.install_args(pred, new_args, id);
                self.facts[id as usize].prov.or_assign(&prov);
                self.fact_epoch[id as usize] = self.epoch;
            }
            None => {
                self.install_args(pred, new_args, id);
                self.fact_epoch[id as usize] = self.epoch;
            }
        }
    }

    /// Remove `id` from the positional buckets of `args` (dropping emptied
    /// buckets so retired elements don't linger as keys).
    fn unindex_positions(&mut self, pred: Symbol, args: &[Elem], id: u32) {
        for (i, a) in args.iter().enumerate() {
            if let Some(bucket) = self.by_pos.get_mut(&(pred, i as u32)) {
                if let Some(ids) = bucket.get_mut(a) {
                    remove_sorted(ids, id);
                    if ids.is_empty() {
                        bucket.remove(a);
                    }
                }
            }
        }
    }

    /// Store `args` on fact `id` and (re-)index it: positional buckets,
    /// dedup slot, and occurrence lists of the argument nulls.
    fn install_args(&mut self, pred: Symbol, args: Vec<Elem>, id: u32) {
        for (i, a) in args.iter().enumerate() {
            let bucket = self.by_pos.entry((pred, i as u32)).or_default();
            insert_sorted(bucket.entry(*a).or_default(), id);
            if let Elem::Null(n) = a {
                insert_sorted(self.null_occ.entry(*n).or_default(), id);
            }
        }
        self.dedup.entry(pred).or_default().insert(args.clone(), id);
        self.facts[id as usize].args = args;
    }

    // -- full-rebuild baseline ---------------------------------------------

    /// [`Instance::merge`] followed by a full re-normalization pass instead
    /// of the incremental occurrence rewrite — the O(instance) baseline the
    /// incremental path replaced. Kept for the `e7_egd_merge` benchmark and
    /// as the oracle of the differential merge suite; produces a
    /// bit-identical instance (same alive facts, dedup keepers, provenance
    /// joins and epochs).
    #[doc(hidden)]
    pub fn merge_full_rebuild(&mut self, a: &Elem, b: &Elem) -> Result<bool, Inconsistent> {
        match self.merge_union(a, b)? {
            None => Ok(false),
            Some(_) => {
                self.normalize_full_rebuild();
                Ok(true)
            }
        }
    }

    /// Re-canonicalize every fact from scratch: rewrite arguments to
    /// representatives, de-duplicate facts that became equal (joining their
    /// provenance), and rebuild all indexes.
    fn normalize_full_rebuild(&mut self) {
        self.dedup.clear();
        self.by_pos.clear();
        self.by_pred.clear();
        self.null_occ.clear();
        self.alive = 0;
        let n = self.facts.len();
        for id in 0..n {
            if !self.facts[id].alive {
                continue;
            }
            let pred = self.facts[id].pred;
            let args: Vec<Elem> = self.facts[id]
                .args
                .iter()
                .map(|e| self.resolve(e))
                .collect();
            if let Some(&keep) = self.dedup.get(&pred).and_then(|m| m.get(args.as_slice())) {
                // Collapsed into an earlier fact: join provenance there.
                let prov = std::mem::replace(&mut self.facts[id].prov, Dnf::fals());
                let grew = self.facts[keep as usize].prov.or_assign(&prov);
                self.facts[id].alive = false;
                if grew {
                    self.fact_epoch[keep as usize] = self.epoch;
                }
                continue;
            }
            if self.facts[id].args != args {
                self.facts[id].args = args.clone();
                self.fact_epoch[id] = self.epoch;
            }
            self.index_fact(pred, &args, id as u32);
            self.dedup.entry(pred).or_default().insert(args, id as u32);
            self.alive += 1;
        }
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for id in self.fact_ids() {
            if !first {
                writeln!(f)?;
            }
            first = false;
            let fact = self.fact(id);
            write!(f, "{}(", fact.pred)?;
            for (i, a) in fact.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    impl Instance {
        /// Parent-chain length of null `n` (no compression) — test probe
        /// for the pointer-halving regression.
        fn chain_depth(&self, mut n: u32) -> usize {
            let mut depth = 0;
            loop {
                let p = self.parent[n as usize].load(Ordering::Relaxed);
                if p == n {
                    return depth;
                }
                depth += 1;
                n = p;
            }
        }
    }

    #[test]
    fn elem_is_copy_eq_ord_hash_and_8_bytes() {
        fn assert_props<T: Copy + Clone + Eq + Ord + std::hash::Hash + Send + Sync>() {}
        assert_props::<Elem>();
        assert_eq!(std::mem::size_of::<Elem>(), 8);
        // Interned equality agrees with Value equality.
        assert_eq!(Elem::of(3i64), Elem::constant(&Value::Int(3)));
        assert_ne!(Elem::of(3i64), Elem::of(3.0f64));
        assert_eq!(Elem::of(3i64).as_value(), Some(Value::Int(3)));
    }

    #[test]
    fn instance_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Instance>();
    }

    #[test]
    fn insert_dedups_identical_facts() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        let (id1, new1) = i.insert(sym("R"), vec![n, Elem::of(1i64)]);
        let (id2, new2) = i.insert(sym("R"), vec![n, Elem::of(1i64)]);
        assert!(new1);
        assert!(!new2);
        assert_eq!(id1, id2);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn retract_removes_fact_from_every_index() {
        let mut i = Instance::new();
        let (id_a, _) = i.insert(sym("R"), vec![Elem::of(1i64), Elem::of(2i64)]);
        let (id_b, _) = i.insert(sym("R"), vec![Elem::of(3i64), Elem::of(2i64)]);
        assert_eq!(
            i.find_fact(sym("R"), &[Elem::of(1i64), Elem::of(2i64)]),
            Some(id_a)
        );
        i.retract(id_a);
        assert!(!i.is_alive(id_a));
        assert_eq!(i.len(), 1);
        assert_eq!(
            i.find_fact(sym("R"), &[Elem::of(1i64), Elem::of(2i64)]),
            None
        );
        assert_eq!(i.pred_facts(sym("R")), &[id_b]);
        assert_eq!(i.probe(sym("R"), 1, &Elem::of(2i64)), &[id_b]);
        assert!(i.probe(sym("R"), 0, &Elem::of(1i64)).is_empty());
        // Re-inserting the retracted fact is a genuinely new fact again.
        let (id_c, fresh) = i.insert(sym("R"), vec![Elem::of(1i64), Elem::of(2i64)]);
        assert!(fresh);
        assert_ne!(id_c, id_a);
    }

    #[test]
    fn touch_restamps_a_fact_into_the_delta() {
        let mut i = Instance::new();
        let (id, _) = i.insert(sym("R"), vec![Elem::of(1i64)]);
        let e = i.advance_epoch();
        assert!(i.delta_index(e).facts_of(sym("R")).is_empty());
        i.touch(id);
        assert_eq!(i.delta_index(e).facts_of(sym("R")), &[id]);
        assert_eq!(i.fact_epoch(id), e);
    }

    #[test]
    fn merge_null_with_constant_rewrites_facts() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("R"), vec![n]);
        i.merge(&n, &Elem::of(9i64)).unwrap();
        let id = i.fact_ids().next().unwrap();
        assert_eq!(i.fact(id).args[0], Elem::of(9i64));
        assert_eq!(i.resolve(&n), Elem::of(9i64));
    }

    #[test]
    fn merge_two_nulls_dedups_facts_and_joins_prov() {
        let mut i = Instance::new();
        let a = i.fresh_null();
        let b = i.fresh_null();
        i.insert_with_prov(sym("R"), vec![a], Dnf::var(1));
        i.insert_with_prov(sym("R"), vec![b], Dnf::var(2));
        assert_eq!(i.len(), 2);
        i.merge(&a, &b).unwrap();
        assert_eq!(i.len(), 1);
        let id = i.fact_ids().next().unwrap();
        assert_eq!(i.fact(id).prov.len(), 2); // p1 ∨ p2
    }

    #[test]
    fn constant_clash_is_inconsistent() {
        let mut i = Instance::new();
        let a = Elem::of(1i64);
        let b = Elem::of(2i64);
        let err = i.merge(&a, &b).unwrap_err();
        assert_eq!(err.left, Value::Int(1));
        assert_eq!(err.right, Value::Int(2));
        assert!(err.egd.is_none());
    }

    #[test]
    fn inconsistent_display_names_the_egd_and_trigger() {
        let err = Inconsistent::new(Value::Int(8), Value::Int(9))
            .with_trigger(sym("fd"), vec!["R(1, 8)".into(), "R(1, 9)".into()]);
        let msg = err.to_string();
        assert!(msg.contains("[fd]"), "missing EGD name: {msg}");
        assert!(msg.contains("R(1, 8) ∧ R(1, 9)"), "missing trigger: {msg}");
        assert!(msg.contains("8 = 9"), "missing values: {msg}");
    }

    #[test]
    fn lower_null_id_stays_representative() {
        let mut i = Instance::new();
        let a = i.fresh_null(); // N0 — e.g. a frozen head variable
        let b = i.fresh_null(); // N1 — e.g. a chase-invented null
        i.merge(&b, &a).unwrap();
        assert_eq!(i.resolve(&b), a);
    }

    #[test]
    fn merge_retired_names_the_retired_null() {
        let mut i = Instance::new();
        let a = i.fresh_null(); // N0
        let b = i.fresh_null(); // N1
                                // Null/null: the younger root retires.
        assert_eq!(i.merge_retired(&b, &a).unwrap(), Some(1));
        // Already equal: nothing retires.
        assert_eq!(i.merge_retired(&a, &b).unwrap(), None);
        // Null/constant: the null retires.
        assert_eq!(i.merge_retired(&a, &Elem::of(5i64)).unwrap(), Some(0));
        assert_eq!(i.merge_retired(&b, &Elem::of(5i64)).unwrap(), None);
    }

    #[test]
    fn position_index_finds_facts() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("R"), vec![n, Elem::of(1i64)]);
        i.insert(sym("R"), vec![n, Elem::of(2i64)]);
        assert_eq!(i.probe(sym("R"), 1, &Elem::of(2i64)).len(), 1);
        assert_eq!(i.probe(sym("R"), 0, &n).len(), 2);
        assert_eq!(i.count_with(sym("R"), 0, &n), 2);
        assert_eq!(i.pred_count(sym("R")), 2);
    }

    #[test]
    fn transitive_null_chains_resolve() {
        let mut i = Instance::new();
        let a = i.fresh_null();
        let b = i.fresh_null();
        let c = i.fresh_null();
        i.merge(&b, &c).unwrap(); // c -> b
        i.merge(&a, &b).unwrap(); // b -> a
        assert_eq!(i.resolve(&c), a);
        i.merge(&c, &Elem::of(5i64)).unwrap();
        assert_eq!(i.resolve(&a), Elem::of(5i64));
        assert_eq!(i.resolve(&b), Elem::of(5i64));
    }

    #[test]
    fn deep_merge_chain_resolution_is_compressed() {
        // Regression for the uncompressed Child-link walk: a 10k-deep
        // merge chain must collapse to near-constant probes after the
        // first resolutions (pointer halving, amortized O(α)).
        let n = 10_000u32;
        let mut i = Instance::new();
        i.reserve_nulls(n);
        for k in (0..n - 1).rev() {
            i.merge(&Elem::Null(k), &Elem::Null(k + 1)).unwrap();
        }
        let deepest = n - 1;
        assert_eq!(i.chain_depth(deepest) as u32, n - 1);
        assert_eq!(i.resolve(&Elem::Null(deepest)), Elem::Null(0));
        // One resolution roughly halves the path…
        assert!(i.chain_depth(deepest) as u32 <= n / 2 + 1);
        // …and a handful more flatten it completely (log₂ 10k < 14).
        for _ in 0..16 {
            i.resolve(&Elem::Null(deepest));
        }
        assert!(i.chain_depth(deepest) <= 1);
        // The compressed pointers still agree with the semantics.
        i.merge(&Elem::Null(0), &Elem::of(5i64)).unwrap();
        assert_eq!(i.resolve(&Elem::Null(deepest)), Elem::of(5i64));
        assert_eq!(i.resolve(&Elem::Null(n / 2)), Elem::of(5i64));
    }

    #[test]
    fn indexes_contain_only_alive_facts_after_merge() {
        let mut i = Instance::new();
        let a = i.fresh_null();
        let b = i.fresh_null();
        i.insert(sym("R"), vec![a, Elem::of(1i64)]);
        i.insert(sym("R"), vec![b, Elem::of(1i64)]);
        i.merge(&a, &b).unwrap();
        // Two facts collapsed into one; the indexes must reflect that
        // without any dead-entry filtering.
        assert_eq!(i.pred_facts(sym("R")).len(), 1);
        assert_eq!(i.probe(sym("R"), 1, &Elem::of(1i64)).len(), 1);
        assert_eq!(i.len(), 1);
        // The retired null's posting bucket is gone, not empty.
        assert!(i.probe(sym("R"), 0, &b).is_empty());
    }

    #[test]
    fn incremental_merge_matches_full_rebuild() {
        // Same op sequence on two instances, one merging incrementally and
        // one with the O(instance) rebuild baseline: identical facts,
        // provenance, epochs and indexes.
        let build = |incremental: bool| {
            let mut i = Instance::new();
            let nulls: Vec<Elem> = (0..6).map(|_| i.fresh_null()).collect();
            for k in 0..6usize {
                i.insert_with_prov(
                    sym("R"),
                    vec![nulls[k], Elem::of((k % 3) as i64)],
                    Dnf::var(k as u32),
                );
                i.insert_with_prov(sym("S"), vec![nulls[k], nulls[(k + 1) % 6]], Dnf::var(10));
            }
            i.advance_epoch();
            let pairs = [(0usize, 3usize), (1, 4), (3, 1)];
            for (a, b) in pairs {
                if incremental {
                    i.merge(&nulls[a], &nulls[b]).unwrap();
                } else {
                    i.merge_full_rebuild(&nulls[a], &nulls[b]).unwrap();
                }
            }
            i.advance_epoch();
            if incremental {
                i.merge(&nulls[5], &Elem::of(7i64)).unwrap();
            } else {
                i.merge_full_rebuild(&nulls[5], &Elem::of(7i64)).unwrap();
            }
            i
        };
        let inc = build(true);
        let full = build(false);
        assert_eq!(inc.len(), full.len());
        let dump = |i: &Instance| -> Vec<(u32, String, String, u64)> {
            i.fact_ids()
                .map(|id| {
                    (
                        id,
                        i.format_fact(id),
                        format!("{:?}", i.fact(id).prov),
                        i.fact_epoch(id),
                    )
                })
                .collect()
        };
        assert_eq!(dump(&inc), dump(&full));
        for p in [sym("R"), sym("S")] {
            assert_eq!(inc.pred_facts(p), full.pred_facts(p));
        }
    }

    #[test]
    fn merge_collision_with_later_fact_keeps_smaller_id() {
        // Fact 0 is rewritten into the same args as fact 1: the smaller id
        // must survive (the full-rebuild keeper choice) and absorb fact 1's
        // provenance.
        let mut i = Instance::new();
        let a = i.fresh_null();
        let (id0, _) = i.insert_with_prov(sym("R"), vec![a, Elem::of(1i64)], Dnf::var(0));
        let (id1, _) =
            i.insert_with_prov(sym("R"), vec![Elem::of(9i64), Elem::of(1i64)], Dnf::var(1));
        assert!(id0 < id1);
        i.merge(&a, &Elem::of(9i64)).unwrap();
        assert_eq!(i.len(), 1);
        assert!(i.is_alive(id0));
        assert!(!i.is_alive(id1));
        assert_eq!(i.fact(id0).prov.len(), 2); // p0 ∨ p1
        assert_eq!(i.pred_facts(sym("R")), &[id0]);
        assert_eq!(i.probe(sym("R"), 0, &Elem::of(9i64)), &[id0]);
    }

    #[test]
    fn epochs_track_insertions_and_rewrites() {
        let mut i = Instance::new();
        let n = i.fresh_null();
        i.insert(sym("R"), vec![n]); // epoch 0
        let e1 = i.advance_epoch();
        let (id2, _) = i.insert(sym("S"), vec![Elem::of(3i64)]);
        assert_eq!(i.fact_epoch(0), 0);
        assert_eq!(i.fact_epoch(id2), e1);
        // Delta at threshold e1 sees only the new fact.
        let d = i.delta_index(e1);
        assert_eq!(d.facts_of(sym("S")), &[id2]);
        assert!(d.facts_of(sym("R")).is_empty());
        // A merge rewriting fact 0's argument bumps its epoch.
        let e2 = i.advance_epoch();
        i.merge(&n, &Elem::of(7i64)).unwrap();
        assert_eq!(i.fact_epoch(0), e2);
        assert_eq!(i.delta_index(e2).facts_of(sym("R")), &[0]);
    }

    #[test]
    fn provenance_growth_bumps_epoch() {
        let mut i = Instance::new();
        i.insert_with_prov(sym("R"), vec![Elem::of(1i64)], Dnf::var(0));
        let e = i.advance_epoch();
        let (id, changed) = i.insert_with_prov(sym("R"), vec![Elem::of(1i64)], Dnf::var(1));
        assert!(changed);
        assert_eq!(i.fact_epoch(id), e);
        // Re-inserting identical provenance changes nothing.
        i.advance_epoch();
        let (_, changed) = i.insert_with_prov(sym("R"), vec![Elem::of(1i64)], Dnf::var(1));
        assert!(!changed);
        assert_eq!(i.fact_epoch(id), e);
    }
}
