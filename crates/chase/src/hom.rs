//! Homomorphism search: matching conjunctions of atoms into instances.
//!
//! This is the workhorse of the chase (trigger finding), of containment
//! checks (query images in chased canonical databases) and of the backchase
//! (finding images of the original query with their provenance).
//!
//! # Search architecture
//!
//! The matcher compiles the atom list once per call:
//!
//! - every distinct variable gets a **compact id** `0..n_vars`, so the
//!   partial assignment is a dense scratch array (`Vec<Option<Elem>>`)
//!   instead of a `HashMap<Var, Elem>` — binding and unbinding are O(1)
//!   array writes recorded on an undo trail;
//! - atom constants are pre-lifted to `Elem`s, so candidate unification
//!   never re-wraps a `Value` per comparison.
//!
//! The backtracking search then picks, at every depth, the most selective
//! unmatched atom using **count-only** index probes
//! ([`crate::instance::Instance::count_with`] /
//! [`crate::instance::Instance::pred_count`] — no candidate list is
//! materialized for losing atoms), and enumerates the winner's candidates
//! directly off a borrowed index posting list — fetched exactly once per
//! step, never copied. All scratch state (bindings, trail, atom order, fact
//! ids) lives in one reusable buffer set; the only per-result allocation is
//! the returned [`Hom`] itself.
//!
//! # Thread-confined scratch arenas
//!
//! The buffer set is owned by a [`HomArena`] — a scratch arena a caller
//! creates once and reuses across many searches, amortizing the per-call
//! allocations (binding array, trail, atom order, compiled atoms, the
//! variable-interning map). Arenas are deliberately **not** shared: each
//! holds the mutable search state of exactly one search at a time, so
//! parallel callers (the candidate-verification pool of the parallel
//! backchase, and the read-only trigger-search phase both chase loops fan
//! out each round — see the phase-split contract in [`mod@crate::chase`]) give
//! every worker thread its own arena and the searches proceed without any
//! synchronization. The `*_in` entry points ([`find_homs_in`],
//! [`find_one_hom_in`], [`find_homs_delta_in`], [`find_trigger_homs_in`])
//! take the arena explicitly; the classic entry points allocate a
//! throwaway arena per call.
//!
//! # Semi-naive (delta) search
//!
//! [`find_homs_delta`] enumerates only the homomorphisms that touch at
//! least one fact from a [`DeltaIndex`] (facts changed since the previous
//! chase round). It runs one *anchored* search per atom position `a`:
//! atom `a` must match a delta fact, atoms before `a` must match old facts,
//! atoms after `a` may match anything — the classic semi-naive
//! stratification, which partitions the delta triggers so none is reported
//! twice.

use crate::instance::{DeltaIndex, Elem, Instance};
use estocada_pivot::{Atom, Symbol, Term, Var};
use std::collections::HashMap;

/// A homomorphism: a variable assignment plus the ids of the facts each atom
/// was matched to (parallel to the atom list it was searched for).
#[derive(Debug, Clone)]
pub struct Hom {
    /// Variable assignment.
    pub map: HashMap<Var, Elem>,
    /// Matched fact id per atom, in atom order.
    pub fact_ids: Vec<u32>,
}

impl Hom {
    /// Image of a term under the homomorphism (constants map to
    /// themselves).
    pub fn apply(&self, t: &Term) -> Option<Elem> {
        match t {
            Term::Const(v) => Some(Elem::constant(v)),
            Term::Var(v) => self.map.get(v).copied(),
        }
    }
}

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct HomConfig {
    /// Stop after this many homomorphisms (guards exponential blowups).
    pub limit: usize,
}

impl Default for HomConfig {
    fn default() -> Self {
        HomConfig { limit: 1_000_000 }
    }
}

/// A compiled atom argument: either a pre-lifted constant or a compact
/// variable id.
#[derive(Debug, Clone)]
enum Slot {
    Const(Elem),
    Var(usize),
}

/// Epoch restriction of one atom during an anchored delta search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stratum {
    /// Any alive fact.
    Any,
    /// Only facts with `epoch < threshold` (strictly before the delta).
    Old,
    /// Only facts with `epoch >= threshold` (the delta anchor).
    New,
}

struct CompiledAtom {
    pred: Symbol,
    slots: Vec<Slot>,
}

/// A reusable, thread-confined scratch arena for homomorphism searches.
///
/// Holds every buffer the matcher needs — the compiled atoms, the dense
/// binding array, the undo trail, the atom order and the variable-interning
/// map — so that a caller running many searches (a chase loop, a backchase
/// verification worker) allocates them once instead of once per search.
/// One arena serves one search at a time; give each worker thread its own.
#[derive(Default)]
pub struct HomArena {
    var_ids: HashMap<Var, usize>,
    vars: Vec<Var>,
    atoms: Vec<CompiledAtom>,
    strata: Vec<Stratum>,
    bind: Vec<Option<Elem>>,
    trail: Vec<usize>,
    fact_ids: Vec<u32>,
    order: Vec<usize>,
}

impl HomArena {
    /// A fresh arena (no buffers allocated until first use).
    pub fn new() -> HomArena {
        HomArena::default()
    }

    /// Return the buffers of a finished search to the arena.
    fn recycle(&mut self, ctx: Ctx<'_>, s: Scratch) {
        self.vars = ctx.vars;
        self.atoms = ctx.atoms;
        self.strata = ctx.strata;
        self.bind = s.bind;
        self.trail = s.trail;
        self.fact_ids = s.fact_ids;
        self.order = s.order;
    }
}

/// Immutable search context: the compiled query against one instance.
/// Separated from [`Scratch`] so candidate posting lists (which borrow the
/// context) stay live while the scratch state mutates.
struct Ctx<'a> {
    instance: &'a Instance,
    atoms: Vec<CompiledAtom>,
    /// Compact id → variable.
    vars: Vec<Var>,
    /// Per-atom epoch stratum (delta search; all `Any` for a full search).
    strata: Vec<Stratum>,
    threshold: u64,
    delta: Option<&'a DeltaIndex>,
    limit: usize,
}

/// Reusable mutable search state — the steady-state search allocates
/// nothing beyond the emitted results.
struct Scratch {
    /// Dense partial assignment, indexed by compact variable id.
    bind: Vec<Option<Elem>>,
    /// Undo trail of compact ids bound at deeper levels.
    trail: Vec<usize>,
    /// Matched fact per original atom index (u32::MAX = unmatched).
    fact_ids: Vec<u32>,
    /// Atom indices; `order[..depth]` are matched, the rest pending.
    order: Vec<usize>,
    results: Vec<Hom>,
}

/// Compile the atom list into a search context, drawing every buffer from
/// `arena` (cleared, capacity retained) instead of allocating fresh.
fn compile<'a>(
    arena: &mut HomArena,
    instance: &'a Instance,
    atoms: &[Atom],
    fixed: &HashMap<Var, Elem>,
    limit: usize,
) -> (Ctx<'a>, Scratch) {
    let mut var_ids = std::mem::take(&mut arena.var_ids);
    let mut vars = std::mem::take(&mut arena.vars);
    var_ids.clear();
    vars.clear();
    let intern = |v: Var, vars: &mut Vec<Var>, var_ids: &mut HashMap<Var, usize>| {
        *var_ids.entry(v).or_insert_with(|| {
            vars.push(v);
            vars.len() - 1
        })
    };
    // Fixed variables first so their scratch cells can be seeded.
    for v in fixed.keys() {
        intern(*v, &mut vars, &mut var_ids);
    }
    let mut compiled = std::mem::take(&mut arena.atoms);
    compiled.clear();
    compiled.extend(atoms.iter().map(|a| {
        CompiledAtom {
            pred: a.pred,
            slots: a
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(v) => Slot::Const(Elem::constant(v)),
                    Term::Var(v) => Slot::Var(intern(*v, &mut vars, &mut var_ids)),
                })
                .collect(),
        }
    }));
    let mut bind = std::mem::take(&mut arena.bind);
    bind.clear();
    bind.resize(vars.len(), None);
    for (v, e) in fixed {
        bind[var_ids[v]] = Some(instance.resolve(e));
    }
    arena.var_ids = var_ids; // interning map no longer needed; keep capacity
    let mut strata = std::mem::take(&mut arena.strata);
    strata.clear();
    strata.resize(compiled.len(), Stratum::Any);
    let mut trail = std::mem::take(&mut arena.trail);
    trail.clear();
    let mut fact_ids = std::mem::take(&mut arena.fact_ids);
    fact_ids.clear();
    fact_ids.resize(atoms.len(), u32::MAX);
    let mut order = std::mem::take(&mut arena.order);
    order.clear();
    order.extend(0..atoms.len());
    let ctx = Ctx {
        instance,
        strata,
        atoms: compiled,
        vars,
        threshold: 0,
        delta: None,
        limit,
    };
    let scratch = Scratch {
        bind,
        trail,
        fact_ids,
        order,
        results: Vec::new(),
    };
    (ctx, scratch)
}

/// Estimated candidate count for pending atom `ai` under the current
/// bindings, plus the most selective bound position. Count-only probes —
/// nothing is materialized for atoms that lose the selection.
fn estimate(ctx: &Ctx<'_>, bind: &[Option<Elem>], ai: usize) -> (usize, Option<u32>) {
    let atom = &ctx.atoms[ai];
    let mut best = usize::MAX;
    let mut best_pos = None;
    for (i, slot) in atom.slots.iter().enumerate() {
        let elem = match slot {
            Slot::Const(e) => Some(e),
            Slot::Var(v) => bind[*v].as_ref(),
        };
        if let Some(e) = elem {
            let n = ctx.instance.count_with(atom.pred, i as u32, e);
            if n < best {
                best = n;
                best_pos = Some(i as u32);
            }
        }
    }
    if best_pos.is_none() {
        best = match ctx.strata[ai] {
            // An unbound delta anchor can only match delta facts.
            Stratum::New => ctx.delta.map(|d| d.facts_of(atom.pred).len()).unwrap_or(0),
            _ => ctx.instance.pred_count(atom.pred),
        };
    }
    (best, best_pos)
}

/// The candidate posting list for atom `ai` (borrowing the instance or the
/// delta index — never copied).
fn candidates<'a>(
    ctx: &'a Ctx<'_>,
    bind: &[Option<Elem>],
    ai: usize,
    pos: Option<u32>,
) -> &'a [u32] {
    let atom = &ctx.atoms[ai];
    match pos {
        Some(p) => {
            let elem = match &atom.slots[p as usize] {
                Slot::Const(e) => e,
                Slot::Var(v) => bind[*v].as_ref().expect("selected position must be bound"),
            };
            ctx.instance.probe(atom.pred, p, elem)
        }
        None => match ctx.strata[ai] {
            Stratum::New => ctx.delta.map(|d| d.facts_of(atom.pred)).unwrap_or(&[]),
            _ => ctx.instance.pred_facts(atom.pred),
        },
    }
}

/// Recursive backtracking over the pending atoms `order[depth..]`.
fn search(ctx: &Ctx<'_>, s: &mut Scratch, depth: usize) {
    if s.results.len() >= ctx.limit {
        return;
    }
    if depth == ctx.atoms.len() {
        emit(ctx, s);
        return;
    }
    // Select the most selective pending atom and swap it to `depth`.
    let mut best = usize::MAX;
    let mut best_pos: Option<u32> = None;
    let mut best_slot = depth;
    for slot in depth..s.order.len() {
        let (n, pos) = estimate(ctx, &s.bind, s.order[slot]);
        if n < best {
            best = n;
            best_pos = pos;
            best_slot = slot;
            if n == 0 {
                break;
            }
        }
    }
    if best == 0 {
        return;
    }
    s.order.swap(depth, best_slot);
    let ai = s.order[depth];

    // Fetch the winner's candidate list exactly once. The slice borrows the
    // context (instance/delta), not the scratch state, so the loop below is
    // free to mutate bindings.
    let cands: &[u32] = candidates(ctx, &s.bind, ai, best_pos);

    let trail_mark = s.trail.len();
    for &fid in cands {
        if try_match(ctx, s, ai, fid) {
            s.fact_ids[ai] = fid;
            search(ctx, s, depth + 1);
            s.fact_ids[ai] = u32::MAX;
        }
        // Undo bindings made by this candidate.
        while s.trail.len() > trail_mark {
            let v = s.trail.pop().unwrap();
            s.bind[v] = None;
        }
        if s.results.len() >= ctx.limit {
            break;
        }
    }
    s.order.swap(depth, best_slot);
}

/// Unify atom `ai` against fact `fid`; new bindings go on the trail.
fn try_match(ctx: &Ctx<'_>, s: &mut Scratch, ai: usize, fid: u32) -> bool {
    // Delta lists are snapshots taken before same-round EGD merges; a
    // listed fact may since have died.
    if !ctx.instance.is_alive(fid) {
        return false;
    }
    match ctx.strata[ai] {
        Stratum::Any => {}
        Stratum::Old => {
            if ctx.instance.fact_epoch(fid) >= ctx.threshold {
                return false;
            }
        }
        Stratum::New => {
            if ctx.instance.fact_epoch(fid) < ctx.threshold {
                return false;
            }
        }
    }
    let fact = ctx.instance.fact(fid);
    let atom = &ctx.atoms[ai];
    if fact.args.len() != atom.slots.len() {
        return false;
    }
    let mark = s.trail.len();
    for (slot, e) in atom.slots.iter().zip(fact.args.iter()) {
        let ok = match slot {
            Slot::Const(c) => c == e,
            Slot::Var(v) => match &s.bind[*v] {
                Some(bound) => bound == e,
                None => {
                    s.bind[*v] = Some(*e);
                    s.trail.push(*v);
                    true
                }
            },
        };
        if !ok {
            while s.trail.len() > mark {
                let v = s.trail.pop().unwrap();
                s.bind[v] = None;
            }
            return false;
        }
    }
    true
}

/// Record the current full assignment as a result.
fn emit(ctx: &Ctx<'_>, s: &mut Scratch) {
    let map: HashMap<Var, Elem> = ctx
        .vars
        .iter()
        .zip(s.bind.iter())
        .filter_map(|(v, b)| b.map(|e| (*v, e)))
        .collect();
    s.results.push(Hom {
        map,
        fact_ids: s.fact_ids.clone(),
    });
}

/// Find homomorphisms from `atoms` into `instance`, extending the partial
/// assignment `fixed`. Returns at most `cfg.limit` results.
///
/// The search backtracks over atoms, at each step choosing the most
/// selective remaining atom (fewest candidate facts under the current
/// partial assignment, estimated by count-only index probes).
pub fn find_homs(
    instance: &Instance,
    atoms: &[Atom],
    fixed: &HashMap<Var, Elem>,
    cfg: HomConfig,
) -> Vec<Hom> {
    find_homs_in(&mut HomArena::new(), instance, atoms, fixed, cfg)
}

/// [`find_homs`] with caller-provided scratch: reuses `arena`'s buffers
/// instead of allocating per call. The arena is fully reusable afterwards.
pub fn find_homs_in(
    arena: &mut HomArena,
    instance: &Instance,
    atoms: &[Atom],
    fixed: &HashMap<Var, Elem>,
    cfg: HomConfig,
) -> Vec<Hom> {
    let (ctx, mut scratch) = compile(arena, instance, atoms, fixed, cfg.limit);
    search(&ctx, &mut scratch, 0);
    let results = std::mem::take(&mut scratch.results);
    arena.recycle(ctx, scratch);
    results
}

/// Find one homomorphism, if any (cheaper early exit).
pub fn find_one_hom(
    instance: &Instance,
    atoms: &[Atom],
    fixed: &HashMap<Var, Elem>,
) -> Option<Hom> {
    find_one_hom_in(&mut HomArena::new(), instance, atoms, fixed)
}

/// [`find_one_hom`] with caller-provided scratch.
pub fn find_one_hom_in(
    arena: &mut HomArena,
    instance: &Instance,
    atoms: &[Atom],
    fixed: &HashMap<Var, Elem>,
) -> Option<Hom> {
    find_homs_in(arena, instance, atoms, fixed, HomConfig { limit: 1 })
        .into_iter()
        .next()
}

/// Find the homomorphisms that use at least one fact from `delta` (facts
/// changed at-or-after `delta.threshold`) — the semi-naive trigger search.
///
/// Runs one anchored pass per atom: pass `a` restricts atom `a` to delta
/// facts and atoms before `a` to pre-delta facts, so every delta
/// homomorphism is enumerated exactly once (at its first delta atom).
/// With an empty atom list there is no delta fact to anchor on, so the
/// result is empty — the fixpoint semantics of a premise-less constraint
/// are covered by the full search of the first chase round.
pub fn find_homs_delta(
    instance: &Instance,
    atoms: &[Atom],
    fixed: &HashMap<Var, Elem>,
    cfg: HomConfig,
    delta: &DeltaIndex,
) -> Vec<Hom> {
    find_homs_delta_in(&mut HomArena::new(), instance, atoms, fixed, cfg, delta)
}

/// [`find_homs_delta`] with caller-provided scratch.
pub fn find_homs_delta_in(
    arena: &mut HomArena,
    instance: &Instance,
    atoms: &[Atom],
    fixed: &HashMap<Var, Elem>,
    cfg: HomConfig,
    delta: &DeltaIndex,
) -> Vec<Hom> {
    let (mut ctx, mut scratch) = compile(arena, instance, atoms, fixed, cfg.limit);
    ctx.delta = Some(delta);
    ctx.threshold = delta.threshold;
    for anchor in 0..atoms.len() {
        if delta.facts_of(atoms[anchor].pred).is_empty() {
            continue;
        }
        for i in 0..atoms.len() {
            ctx.strata[i] = match i.cmp(&anchor) {
                std::cmp::Ordering::Less => Stratum::Old,
                std::cmp::Ordering::Equal => Stratum::New,
                std::cmp::Ordering::Greater => Stratum::Any,
            };
        }
        search(&ctx, &mut scratch, 0);
        if scratch.results.len() >= cfg.limit {
            break;
        }
    }
    let results = std::mem::take(&mut scratch.results);
    arena.recycle(ctx, scratch);
    results
}

/// One anchored pass of [`find_homs_delta_in`]: enumerate the delta
/// homomorphisms whose *first* delta atom is `atoms[anchor]` (atom
/// `anchor` restricted to delta facts, earlier atoms to pre-delta facts).
/// The concatenation over all anchors, in anchor order and truncated to
/// `cfg.limit`, equals [`find_homs_delta_in`]'s result — the passes are
/// independent pure functions of `(instance, delta, atoms, anchor)`, so
/// the parallel trigger phase fans them out as separate work items.
pub fn find_homs_delta_anchor_in(
    arena: &mut HomArena,
    instance: &Instance,
    atoms: &[Atom],
    fixed: &HashMap<Var, Elem>,
    cfg: HomConfig,
    delta: &DeltaIndex,
    anchor: usize,
) -> Vec<Hom> {
    if delta.facts_of(atoms[anchor].pred).is_empty() {
        return Vec::new();
    }
    let (mut ctx, mut scratch) = compile(arena, instance, atoms, fixed, cfg.limit);
    ctx.delta = Some(delta);
    ctx.threshold = delta.threshold;
    for i in 0..atoms.len() {
        ctx.strata[i] = match i.cmp(&anchor) {
            std::cmp::Ordering::Less => Stratum::Old,
            std::cmp::Ordering::Equal => Stratum::New,
            std::cmp::Ordering::Greater => Stratum::Any,
        };
    }
    search(&ctx, &mut scratch, 0);
    let results = std::mem::take(&mut scratch.results);
    arena.recycle(ctx, scratch);
    results
}

/// Trigger enumeration shared by both chase loops: full search when `delta`
/// is `None` (first round), delta-restricted search otherwise.
pub fn find_trigger_homs(
    instance: &Instance,
    atoms: &[Atom],
    cfg: HomConfig,
    delta: Option<&DeltaIndex>,
) -> Vec<Hom> {
    find_trigger_homs_in(&mut HomArena::new(), instance, atoms, cfg, delta)
}

/// [`find_trigger_homs`] with caller-provided scratch.
pub fn find_trigger_homs_in(
    arena: &mut HomArena,
    instance: &Instance,
    atoms: &[Atom],
    cfg: HomConfig,
    delta: Option<&DeltaIndex>,
) -> Vec<Hom> {
    match delta {
        None => find_homs_in(arena, instance, atoms, &HashMap::new(), cfg),
        Some(d) => find_homs_delta_in(arena, instance, atoms, &HashMap::new(), cfg, d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Instance {
        // R(1,2), R(2,3), S(3)
        let mut i = Instance::new();
        let c = |v: i64| Elem::of(v);
        i.insert(Symbol::intern("R"), vec![c(1), c(2)]);
        i.insert(Symbol::intern("R"), vec![c(2), c(3)]);
        i.insert(Symbol::intern("S"), vec![c(3)]);
        i
    }

    fn atom(pred: &str, args: Vec<Term>) -> Atom {
        Atom::new(pred, args)
    }

    #[test]
    fn path_query_finds_single_match() {
        let i = setup();
        // R(x,y), R(y,z), S(z)
        let atoms = vec![
            atom("R", vec![Term::var(0), Term::var(1)]),
            atom("R", vec![Term::var(1), Term::var(2)]),
            atom("S", vec![Term::var(2)]),
        ];
        let homs = find_homs(&i, &atoms, &HashMap::new(), HomConfig::default());
        assert_eq!(homs.len(), 1);
        let h = &homs[0];
        assert_eq!(h.map[&Var(0)], Elem::of(1i64));
        assert_eq!(h.map[&Var(2)], Elem::of(3i64));
        assert_eq!(h.fact_ids.len(), 3);
    }

    #[test]
    fn all_matches_enumerated() {
        let i = setup();
        let atoms = vec![atom("R", vec![Term::var(0), Term::var(1)])];
        let homs = find_homs(&i, &atoms, &HashMap::new(), HomConfig::default());
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn fixed_bindings_restrict_matches() {
        let i = setup();
        let atoms = vec![atom("R", vec![Term::var(0), Term::var(1)])];
        let mut fixed = HashMap::new();
        fixed.insert(Var(0), Elem::of(2i64));
        let homs = find_homs(&i, &atoms, &fixed, HomConfig::default());
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].map[&Var(1)], Elem::of(3i64));
    }

    #[test]
    fn constants_in_atoms_must_match() {
        let i = setup();
        let atoms = vec![atom("R", vec![Term::constant(7i64), Term::var(0)])];
        assert!(find_one_hom(&i, &atoms, &HashMap::new()).is_none());
        let atoms = vec![atom("R", vec![Term::constant(1i64), Term::var(0)])];
        assert!(find_one_hom(&i, &atoms, &HashMap::new()).is_some());
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut i = setup();
        i.insert(Symbol::intern("R"), vec![Elem::of(5i64), Elem::of(5i64)]);
        let atoms = vec![atom("R", vec![Term::var(0), Term::var(0)])];
        let homs = find_homs(&i, &atoms, &HashMap::new(), HomConfig::default());
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].map[&Var(0)], Elem::of(5i64));
    }

    #[test]
    fn limit_caps_result_count() {
        let i = setup();
        let atoms = vec![atom("R", vec![Term::var(0), Term::var(1)])];
        let homs = find_homs(&i, &atoms, &HashMap::new(), HomConfig { limit: 1 });
        assert_eq!(homs.len(), 1);
    }

    #[test]
    fn empty_atom_list_yields_identity() {
        let i = setup();
        let homs = find_homs(&i, &[], &HashMap::new(), HomConfig::default());
        assert_eq!(homs.len(), 1);
        assert!(homs[0].map.is_empty());
    }

    #[test]
    fn fixed_vars_absent_from_atoms_survive_into_results() {
        let i = setup();
        let atoms = vec![atom("S", vec![Term::var(0)])];
        let mut fixed = HashMap::new();
        fixed.insert(Var(9), Elem::of(42i64));
        let homs = find_homs(&i, &atoms, &fixed, HomConfig::default());
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].map[&Var(9)], Elem::of(42i64));
        assert_eq!(homs[0].map[&Var(0)], Elem::of(3i64));
    }

    #[test]
    fn delta_search_finds_only_new_triggers() {
        let mut i = setup(); // facts at epoch 0
        let thr = i.advance_epoch();
        i.insert(Symbol::intern("R"), vec![Elem::of(3i64), Elem::of(4i64)]);
        let atoms = vec![
            atom("R", vec![Term::var(0), Term::var(1)]),
            atom("R", vec![Term::var(1), Term::var(2)]),
        ];
        let delta = i.delta_index(thr);
        let dhoms = find_homs_delta(&i, &atoms, &HashMap::new(), HomConfig::default(), &delta);
        // Full search: (1,2,3), (2,3,4). Only the latter touches R(3,4).
        assert_eq!(dhoms.len(), 1);
        assert_eq!(dhoms[0].map[&Var(2)], Elem::of(4i64));
    }

    #[test]
    fn delta_search_covers_full_search_at_threshold_zero() {
        let i = setup();
        let atoms = vec![
            atom("R", vec![Term::var(0), Term::var(1)]),
            atom("R", vec![Term::var(1), Term::var(2)]),
            atom("S", vec![Term::var(2)]),
        ];
        let full = find_homs(&i, &atoms, &HashMap::new(), HomConfig::default());
        let delta = i.delta_index(0);
        let dhoms = find_homs_delta(&i, &atoms, &HashMap::new(), HomConfig::default(), &delta);
        assert_eq!(full.len(), dhoms.len());
    }

    #[test]
    fn arena_reuse_across_searches_matches_fresh_arena() {
        let i = setup();
        let queries: Vec<Vec<Atom>> = vec![
            vec![atom("R", vec![Term::var(0), Term::var(1)])],
            vec![
                atom("R", vec![Term::var(0), Term::var(1)]),
                atom("R", vec![Term::var(1), Term::var(2)]),
                atom("S", vec![Term::var(2)]),
            ],
            vec![atom("S", vec![Term::var(5)])],
            vec![], // empty query: arena shrinks back down
            vec![atom("R", vec![Term::constant(1i64), Term::var(0)])],
        ];
        let mut arena = HomArena::new();
        for q in &queries {
            let reused = find_homs_in(&mut arena, &i, q, &HashMap::new(), HomConfig::default());
            let fresh = find_homs(&i, q, &HashMap::new(), HomConfig::default());
            assert_eq!(reused.len(), fresh.len(), "arena reuse skewed {q:?}");
            for (a, b) in reused.iter().zip(&fresh) {
                assert_eq!(a.fact_ids, b.fact_ids);
                assert_eq!(a.map, b.map);
            }
        }
    }

    #[test]
    fn delta_search_reports_each_hom_once() {
        // Both atoms can match delta facts — the anchored strata must not
        // double-report the homomorphism that uses two delta facts.
        let mut i = Instance::new();
        let c = |v: i64| Elem::of(v);
        i.insert(Symbol::intern("R"), vec![c(1), c(2)]); // old
        let thr = i.advance_epoch();
        i.insert(Symbol::intern("R"), vec![c(2), c(2)]); // new, self-loop
        let atoms = vec![
            atom("R", vec![Term::var(0), Term::var(1)]),
            atom("R", vec![Term::var(1), Term::var(2)]),
        ];
        let delta = i.delta_index(thr);
        let dhoms = find_homs_delta(&i, &atoms, &HashMap::new(), HomConfig::default(), &delta);
        // New triggers: (1,2)+(2,2) anchored at atom 1, and (2,2)+(2,2)
        // anchored at atom 0 — exactly 2, no duplicates.
        assert_eq!(dhoms.len(), 2);
    }

    #[test]
    fn per_anchor_passes_reassemble_to_the_delta_search() {
        // The parallel trigger phase runs one work item per anchor;
        // concatenating them in anchor order (truncated to the limit) must
        // reproduce the serial search exactly, including hom order.
        let mut i = Instance::new();
        let c = |v: i64| Elem::of(v);
        i.insert(Symbol::intern("R"), vec![c(1), c(2)]);
        i.insert(Symbol::intern("S"), vec![c(2)]);
        let thr = i.advance_epoch();
        i.insert(Symbol::intern("R"), vec![c(2), c(2)]);
        i.insert(Symbol::intern("R"), vec![c(2), c(3)]);
        i.insert(Symbol::intern("S"), vec![c(3)]);
        let atoms = vec![
            atom("R", vec![Term::var(0), Term::var(1)]),
            atom("R", vec![Term::var(1), Term::var(2)]),
            atom("S", vec![Term::var(2)]),
        ];
        let delta = i.delta_index(thr);
        for limit in [1, 2, usize::MAX] {
            let cfg = HomConfig { limit };
            let serial = find_homs_delta(&i, &atoms, &HashMap::new(), cfg, &delta);
            let mut reassembled = Vec::new();
            for anchor in 0..atoms.len() {
                let pass = find_homs_delta_anchor_in(
                    &mut HomArena::new(),
                    &i,
                    &atoms,
                    &HashMap::new(),
                    cfg,
                    &delta,
                    anchor,
                );
                for h in pass {
                    if reassembled.len() >= limit {
                        break;
                    }
                    reassembled.push(h);
                }
            }
            assert_eq!(serial.len(), reassembled.len(), "limit {limit}");
            for (a, b) in serial.iter().zip(&reassembled) {
                assert_eq!(a.fact_ids, b.fact_ids, "limit {limit}");
                assert_eq!(a.map, b.map, "limit {limit}");
            }
        }
    }
}
