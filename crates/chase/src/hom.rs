//! Homomorphism search: matching conjunctions of atoms into instances.
//!
//! This is the workhorse of the chase (trigger finding), of containment
//! checks (query images in chased canonical databases) and of the backchase
//! (finding images of the original query with their provenance).

use crate::instance::{Elem, Instance};
use estocada_pivot::{Atom, Term, Var};
use std::collections::HashMap;

/// A homomorphism: a variable assignment plus the ids of the facts each atom
/// was matched to (parallel to the atom list it was searched for).
#[derive(Debug, Clone)]
pub struct Hom {
    /// Variable assignment.
    pub map: HashMap<Var, Elem>,
    /// Matched fact id per atom, in atom order.
    pub fact_ids: Vec<u32>,
}

impl Hom {
    /// Image of a term under the homomorphism (constants map to
    /// themselves).
    pub fn apply(&self, t: &Term) -> Option<Elem> {
        match t {
            Term::Const(v) => Some(Elem::Const(v.clone())),
            Term::Var(v) => self.map.get(v).cloned(),
        }
    }
}

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct HomConfig {
    /// Stop after this many homomorphisms (guards exponential blowups).
    pub limit: usize,
}

impl Default for HomConfig {
    fn default() -> Self {
        HomConfig { limit: 1_000_000 }
    }
}

/// Find homomorphisms from `atoms` into `instance`, extending the partial
/// assignment `fixed`. Returns at most `cfg.limit` results.
///
/// The search backtracks over atoms, at each step choosing the most
/// selective remaining atom (fewest candidate facts under the current
/// partial assignment, using the instance's positional indexes).
pub fn find_homs(
    instance: &Instance,
    atoms: &[Atom],
    fixed: &HashMap<Var, Elem>,
    cfg: HomConfig,
) -> Vec<Hom> {
    let mut results = Vec::new();
    let mut map: HashMap<Var, Elem> = fixed
        .iter()
        .map(|(v, e)| (*v, instance.resolve(e)))
        .collect();
    let mut fact_ids = vec![u32::MAX; atoms.len()];
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    search(
        instance,
        atoms,
        &mut map,
        &mut fact_ids,
        &mut remaining,
        &mut results,
        cfg.limit,
    );
    results
}

/// Find one homomorphism, if any (cheaper early exit).
pub fn find_one_hom(
    instance: &Instance,
    atoms: &[Atom],
    fixed: &HashMap<Var, Elem>,
) -> Option<Hom> {
    find_homs(instance, atoms, fixed, HomConfig { limit: 1 })
        .into_iter()
        .next()
}

/// Candidate fact ids for `atom` under `map`: uses the most selective bound
/// position, falling back to the whole predicate list.
fn candidates(instance: &Instance, atom: &Atom, map: &HashMap<Var, Elem>) -> Vec<u32> {
    let mut best: Option<Vec<u32>> = None;
    for (i, t) in atom.args.iter().enumerate() {
        let elem = match t {
            Term::Const(v) => Some(Elem::Const(v.clone())),
            Term::Var(v) => map.get(v).cloned(),
        };
        if let Some(e) = elem {
            let hits = instance.facts_with(atom.pred, i as u32, &e);
            if best.as_ref().map(|b| hits.len() < b.len()).unwrap_or(true) {
                best = Some(hits);
            }
        }
    }
    best.unwrap_or_else(|| instance.facts_of(atom.pred).collect())
}

fn search(
    instance: &Instance,
    atoms: &[Atom],
    map: &mut HashMap<Var, Elem>,
    fact_ids: &mut Vec<u32>,
    remaining: &mut Vec<usize>,
    results: &mut Vec<Hom>,
    limit: usize,
) {
    if results.len() >= limit {
        return;
    }
    if remaining.is_empty() {
        results.push(Hom {
            map: map.clone(),
            fact_ids: fact_ids.clone(),
        });
        return;
    }
    // Most selective remaining atom first.
    let (pos, _) = remaining
        .iter()
        .enumerate()
        .map(|(i, &ai)| (i, candidates(instance, &atoms[ai], map).len()))
        .min_by_key(|(_, n)| *n)
        .unwrap();
    let atom_idx = remaining.remove(pos);
    let atom = &atoms[atom_idx];
    for fid in candidates(instance, atom, map) {
        let fact = instance.fact(fid);
        if fact.args.len() != atom.args.len() {
            continue;
        }
        // Try to unify atom args against the fact, recording new bindings.
        let mut new_bindings: Vec<Var> = Vec::new();
        let mut ok = true;
        for (t, e) in atom.args.iter().zip(fact.args.iter()) {
            match t {
                Term::Const(v) => {
                    if Elem::Const(v.clone()) != *e {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match map.get(v) {
                    Some(bound) => {
                        if bound != e {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        map.insert(*v, e.clone());
                        new_bindings.push(*v);
                    }
                },
            }
        }
        if ok {
            fact_ids[atom_idx] = fid;
            search(instance, atoms, map, fact_ids, remaining, results, limit);
            fact_ids[atom_idx] = u32::MAX;
        }
        for v in new_bindings {
            map.remove(&v);
        }
        if results.len() >= limit {
            break;
        }
    }
    remaining.insert(pos, atom_idx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_pivot::{Symbol, Value};

    fn setup() -> Instance {
        // R(1,2), R(2,3), S(3)
        let mut i = Instance::new();
        let c = |v: i64| Elem::Const(Value::Int(v));
        i.insert(Symbol::intern("R"), vec![c(1), c(2)]);
        i.insert(Symbol::intern("R"), vec![c(2), c(3)]);
        i.insert(Symbol::intern("S"), vec![c(3)]);
        i
    }

    fn atom(pred: &str, args: Vec<Term>) -> Atom {
        Atom::new(pred, args)
    }

    #[test]
    fn path_query_finds_single_match() {
        let i = setup();
        // R(x,y), R(y,z), S(z)
        let atoms = vec![
            atom("R", vec![Term::var(0), Term::var(1)]),
            atom("R", vec![Term::var(1), Term::var(2)]),
            atom("S", vec![Term::var(2)]),
        ];
        let homs = find_homs(&i, &atoms, &HashMap::new(), HomConfig::default());
        assert_eq!(homs.len(), 1);
        let h = &homs[0];
        assert_eq!(h.map[&Var(0)], Elem::Const(Value::Int(1)));
        assert_eq!(h.map[&Var(2)], Elem::Const(Value::Int(3)));
        assert_eq!(h.fact_ids.len(), 3);
    }

    #[test]
    fn all_matches_enumerated() {
        let i = setup();
        let atoms = vec![atom("R", vec![Term::var(0), Term::var(1)])];
        let homs = find_homs(&i, &atoms, &HashMap::new(), HomConfig::default());
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn fixed_bindings_restrict_matches() {
        let i = setup();
        let atoms = vec![atom("R", vec![Term::var(0), Term::var(1)])];
        let mut fixed = HashMap::new();
        fixed.insert(Var(0), Elem::Const(Value::Int(2)));
        let homs = find_homs(&i, &atoms, &fixed, HomConfig::default());
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].map[&Var(1)], Elem::Const(Value::Int(3)));
    }

    #[test]
    fn constants_in_atoms_must_match() {
        let i = setup();
        let atoms = vec![atom("R", vec![Term::constant(7i64), Term::var(0)])];
        assert!(find_one_hom(&i, &atoms, &HashMap::new()).is_none());
        let atoms = vec![atom("R", vec![Term::constant(1i64), Term::var(0)])];
        assert!(find_one_hom(&i, &atoms, &HashMap::new()).is_some());
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut i = setup();
        i.insert(
            Symbol::intern("R"),
            vec![Elem::Const(Value::Int(5)), Elem::Const(Value::Int(5))],
        );
        let atoms = vec![atom("R", vec![Term::var(0), Term::var(0)])];
        let homs = find_homs(&i, &atoms, &HashMap::new(), HomConfig::default());
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].map[&Var(0)], Elem::Const(Value::Int(5)));
    }

    #[test]
    fn limit_caps_result_count() {
        let i = setup();
        let atoms = vec![atom("R", vec![Term::var(0), Term::var(1)])];
        let homs = find_homs(&i, &atoms, &HashMap::new(), HomConfig { limit: 1 });
        assert_eq!(homs.len(), 1);
    }

    #[test]
    fn empty_atom_list_yields_identity() {
        let i = setup();
        let homs = find_homs(&i, &[], &HashMap::new(), HomConfig::default());
        assert_eq!(homs.len(), 1);
        assert!(homs[0].map.is_empty());
    }
}
