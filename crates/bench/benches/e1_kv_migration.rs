//! E1 — §II claim: migrating user-preference and shopping-cart fragments to
//! a key-value store improves the application workload by ≈20%.
//!
//! Compares workload-W1 execution time (stores + mediator runtime, with the
//! datacenter latency calibration) under the baseline deployment vs the
//! KV-migrated deployment. See EXPERIMENTS.md for paper-vs-measured.

use criterion::{criterion_group, criterion_main, Criterion};
use estocada::Latencies;
use estocada_workloads::marketplace::{generate, w1_workload, MarketplaceConfig};
use estocada_workloads::scenarios::{deploy_baseline, deploy_kv_migrated, run_w1_exec_time};
use std::time::Duration;

fn config() -> MarketplaceConfig {
    MarketplaceConfig {
        users: 400,
        products: 150,
        orders: 2_000,
        log_entries: 4_000,
        skew: 0.9,
        seed: 42,
    }
}

fn bench(c: &mut Criterion) {
    let cfg = config();
    let m = generate(cfg);
    let workload = w1_workload(&cfg, 40, 7);

    // One-shot headline measurement (printed into bench_output.txt).
    {
        let base = deploy_baseline(&m, Latencies::datacenter());
        let kv = deploy_kv_migrated(&m, Latencies::datacenter());
        // Warm up both (first run pays cache warmup).
        run_w1_exec_time(&base, &workload);
        run_w1_exec_time(&kv, &workload);
        let t_base = run_w1_exec_time(&base, &workload);
        let t_kv = run_w1_exec_time(&kv, &workload);
        let gain = 100.0 * (1.0 - t_kv.as_secs_f64() / t_base.as_secs_f64());
        println!("== E1 summary ==");
        println!(
            "workload W1 ({} queries), datacenter latencies",
            workload.len()
        );
        println!("  baseline (Postgres+Mongo-like): {t_base:?}");
        println!("  kv-migrated (Voldemort-like):   {t_kv:?}");
        println!("  improvement: {gain:.1}%  (paper: ~20%)");
    }

    let mut group = c.benchmark_group("e1_kv_migration");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    group.bench_function("baseline", |b| {
        let est = deploy_baseline(&m, Latencies::datacenter());
        run_w1_exec_time(&est, &workload); // warm
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += run_w1_exec_time(&est, &workload);
            }
            total
        })
    });

    group.bench_function("kv_migrated", |b| {
        let est = deploy_kv_migrated(&m, Latencies::datacenter());
        run_w1_exec_time(&est, &workload);
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += run_w1_exec_time(&est, &workload);
            }
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
