//! E9 — the shared-read query API (PR 5): N client threads drive one
//! shared `&Estocada` through a repeated-shape marketplace workload, with
//! the rewrite-plan cache on and off.
//!
//! Two effects are measured:
//!
//! - **plan-cache speedup**: with repeated query shapes, cache-on runs
//!   skip the chase & backchase for every repeat — the serial cache-on
//!   arm vs the serial cache-off arm isolates it;
//! - **shared-engine scaling**: the `threadsN` arms split the same
//!   workload over N clients of one engine (`&self` query path, engine is
//!   `Sync`). On a single-core host the expectation is parity, never skew.
//!
//! **Identity is asserted inside every measurement**: each timed run
//! compares every query's rows and chosen delegation against the serial
//! cache-off reference, so a stale cached plan or a shared-state race
//! fails the bench instead of skewing its numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada::{Estocada, Latencies};
use estocada_workloads::marketplace::{generate, MarketplaceConfig};
use estocada_workloads::scenarios::{
    cart_pattern, deploy_kv_migrated, personalized_sql, pref_sql, user_orders_sql,
};
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Clone)]
enum Q {
    Sql(String),
    Doc(i64),
}

/// Five query shapes, each repeated — the regime the plan cache targets
/// (an application replays its templates with varying parameters; repeats
/// of one parameterization are verbatim repeats).
fn workload() -> Vec<Q> {
    let mut out = Vec::new();
    for _ in 0..4 {
        for uid in [1i64, 3, 7] {
            out.push(Q::Sql(pref_sql(uid)));
            out.push(Q::Doc(uid));
            out.push(Q::Sql(user_orders_sql(uid)));
        }
        out.push(Q::Sql(personalized_sql(1, "laptop")));
    }
    out
}

fn run_q(est: &Estocada, q: &Q) -> (Vec<Vec<estocada_pivot::Value>>, Vec<String>) {
    let r = match q {
        Q::Sql(sql) => est.query_sql(sql).expect("bench query"),
        Q::Doc(uid) => est
            .query_doc(&cart_pattern(*uid), &["pid", "qty"])
            .expect("bench doc query"),
    };
    (r.rows, r.report.delegated)
}

type Reference = Vec<(Vec<Vec<estocada_pivot::Value>>, Vec<String>)>;

fn engine(cache: bool) -> Estocada {
    let m = generate(MarketplaceConfig {
        users: 60,
        products: 30,
        orders: 200,
        log_entries: 400,
        skew: 0.8,
        seed: 31,
    });
    let mut est = deploy_kv_migrated(&m, Latencies::zero());
    est.set_plan_cache(cache);
    est
}

/// Run the whole workload from `threads` clients of one shared engine
/// (`threads == 1` runs inline) and assert every answer against the
/// reference.
fn run_checked(est: &Estocada, work: &[Q], threads: usize, reference: &Reference) -> Duration {
    let t0 = Instant::now();
    if threads <= 1 {
        for (i, q) in work.iter().enumerate() {
            let got = run_q(est, q);
            assert_eq!(got, reference[i], "serial skew at query {i}");
        }
        return t0.elapsed();
    }
    let slots: Mutex<Vec<bool>> = Mutex::new(vec![false; work.len()]);
    std::thread::scope(|s| {
        for t in 0..threads {
            let slots = &slots;
            s.spawn(move || {
                for (i, q) in work.iter().enumerate() {
                    if i % threads != t {
                        continue;
                    }
                    let got = run_q(est, q);
                    assert_eq!(got, reference[i], "thread {t} skew at query {i}");
                    slots.lock().unwrap()[i] = true;
                }
            });
        }
    });
    assert!(slots.into_inner().unwrap().iter().all(|b| *b));
    t0.elapsed()
}

fn bench(c: &mut Criterion) {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let work = workload();
    // The reference: serial, cache off — ground truth for every arm.
    let reference: Reference = {
        let est = engine(false);
        work.iter().map(|q| run_q(&est, q)).collect()
    };

    println!(
        "== E9 summary (shared engine, {} queries / {} shapes, host cores: {host_cores}) ==",
        work.len(),
        5
    );
    let best = |est: &Estocada, threads: usize| {
        (0..3)
            .map(|_| run_checked(est, &work, threads, &reference))
            .min()
            .unwrap()
    };
    let off = engine(false);
    let on = engine(true);
    let t_off = best(&off, 1);
    let t_on = best(&on, 1);
    let s = on.plan_cache_stats();
    println!(
        "serial: cache-off {t_off:?}, cache-on {t_on:?} ({:.2}x; {} hits / {} misses)",
        t_off.as_secs_f64() / t_on.as_secs_f64().max(1e-12),
        s.hits,
        s.misses,
    );
    assert!(s.hits > 0, "repeated shapes must hit the cache");
    for threads in [2usize, 4, 8] {
        let t_toff = best(&engine(false), threads);
        let t_ton = best(&engine(true), threads);
        println!("threads {threads}: cache-off {t_toff:?}, cache-on {t_ton:?}");
    }
    println!("(identity vs the serial cache-off reference asserted on every run above)");

    let mut group = c.benchmark_group("e9_concurrent_queries");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (name, cache, threads) in [
        ("serial_cache_off", false, 1usize),
        ("serial_cache_on", true, 1),
        ("threads4_cache_off", false, 4),
        ("threads4_cache_on", true, 4),
        ("threads8_cache_on", true, 8),
    ] {
        let est = engine(cache);
        group.bench_with_input(BenchmarkId::new(name, work.len()), &threads, |b, &t| {
            b.iter(|| run_checked(&est, &work, t, &reference))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
