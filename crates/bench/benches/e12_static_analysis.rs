//! E12 — static analysis (PR 8): what the deployment analyzer costs, and
//! what its termination certificate buys.
//!
//! Two questions are measured:
//!
//! - **analyzer cost**: a full `Estocada::analyze` pass (termination
//!   certificate, constraint redundancy, fragment subsumption, schema
//!   hygiene) over the richest builtin catalog — the materialized-join
//!   marketplace deployment. The pass must come back clean, every time:
//!   a lint regression fails the bench instead of its numbers.
//! - **budget-free vs guarded chase**: on a certified weakly-acyclic TGD
//!   chain, the chase with the budget guard lifted by
//!   `ChaseConfig::with_certificate` against the guarded default.
//!   **Identity is asserted inside every measurement**: each timed run's
//!   final instance is compared against a precomputed reference dump —
//!   the certificate may remove bookkeeping, never facts.

use criterion::{criterion_group, criterion_main, Criterion};
use estocada::{Estocada, Latencies};
use estocada_chase::testkit::dump_state;
use estocada_chase::{certify, chase, ChaseConfig, Elem, Instance, TerminationCertificate};
use estocada_pivot::{Atom, Constraint, Symbol, Term, Tgd};
use estocada_workloads::marketplace::{generate, Marketplace, MarketplaceConfig};
use estocada_workloads::scenarios::deploy_materialized_join;
use std::time::{Duration, Instant};

fn market() -> Marketplace {
    generate(MarketplaceConfig {
        users: 60,
        products: 30,
        orders: 200,
        log_entries: 400,
        skew: 0.8,
        seed: 12,
    })
}

/// A weakly acyclic existential chain `C_i(x, y) → ∃z. C_{i+1}(y, z)`:
/// every TGD is existential, none cycles, so `certify` issues a
/// `WeaklyAcyclic` certificate and the budget-free chase is safe.
fn chain_constraints(len: usize) -> Vec<Constraint> {
    (0..len)
        .map(|i| {
            Tgd::new(
                format!("chain{i}").as_str(),
                vec![Atom::new(
                    format!("C{i}").as_str(),
                    vec![Term::var(0), Term::var(1)],
                )],
                vec![Atom::new(
                    format!("C{}", i + 1).as_str(),
                    vec![Term::var(1), Term::var(2)],
                )],
            )
            .into()
        })
        .collect()
}

fn chain_seed(rows: usize) -> Instance {
    let mut inst = Instance::new();
    for r in 0..rows {
        inst.insert(
            Symbol::intern("C0"),
            vec![Elem::of(r as i64), Elem::of((r + 1_000) as i64)],
        );
    }
    inst
}

fn best_of<F: FnMut() -> Duration>(n: usize, mut f: F) -> Duration {
    (0..n).map(|_| f()).min().unwrap()
}

fn bench(c: &mut Criterion) {
    let m = market();
    let est: Estocada = deploy_materialized_join(&m, Latencies::zero());
    println!(
        "== E12 summary (materialized-join deployment: {} fragments, {} schema constraints) ==",
        est.catalog().fragments().len(),
        est.schema().constraints.len(),
    );

    // --- analyzer cost on the largest builtin catalog ----------------
    let t_analyze = best_of(5, || {
        let t0 = Instant::now();
        let diags = est.analyze();
        let dt = t0.elapsed();
        assert!(diags.is_empty(), "deployment must analyze clean: {diags:?}");
        dt
    });
    println!("analyze(materialized-join deployment): {t_analyze:?} (clean, asserted every run)");

    // --- certified vs guarded chase ----------------------------------
    const CHAIN: usize = 8;
    const ROWS: usize = 64;
    let cs = chain_constraints(CHAIN);
    let cert = certify(&cs);
    assert!(
        matches!(cert, TerminationCertificate::WeaklyAcyclic { .. }),
        "chain must certify weakly acyclic"
    );
    let guarded_cfg = ChaseConfig::default();
    let free_cfg = ChaseConfig::default().with_certificate(&cert);
    assert_eq!(free_cfg.max_rounds, usize::MAX, "certificate lifts budget");

    // Reference fixpoint, computed once (untimed).
    let reference = {
        let mut inst = chain_seed(ROWS);
        chase(&mut inst, &cs, &guarded_cfg).expect("reference chase");
        dump_state(&inst)
    };
    let run = |cfg: &ChaseConfig| {
        let mut inst = chain_seed(ROWS);
        let t0 = Instant::now();
        chase(&mut inst, &cs, cfg).expect("chase");
        let dt = t0.elapsed();
        assert_eq!(
            dump_state(&inst),
            reference,
            "certified run must reach the identical fixpoint"
        );
        dt
    };
    let t_guarded = best_of(5, || run(&guarded_cfg));
    let t_free = best_of(5, || run(&free_cfg));
    println!(
        "chase (chain {CHAIN}, {ROWS} seed rows): guarded {t_guarded:?} vs certified \
         budget-free {t_free:?} (identical fixpoint asserted every run)"
    );

    // --- criterion arms ----------------------------------------------
    let mut group = c.benchmark_group("e12_static_analysis");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("analyze_deployment", |b| {
        b.iter(|| {
            let diags = est.analyze();
            assert!(diags.is_empty(), "lint regression: {diags:?}");
            diags.len()
        })
    });
    group.bench_function("certify_chain", |b| {
        b.iter(|| {
            let cert = certify(&cs);
            assert!(matches!(cert, TerminationCertificate::WeaklyAcyclic { .. }));
            cert
        })
    });
    group.bench_function("chase_guarded", |b| b.iter(|| run(&guarded_cfg)));
    group.bench_function("chase_certified_budget_free", |b| b.iter(|| run(&free_cfg)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
