//! E13 — vectorized columnar executor vs tuple-at-a-time (PR 9).
//!
//! Two pipelines, both executed by the tuple oracle and by the vectorized
//! executor at batch sizes 256 / 1024 / 4096:
//!
//! - **filter + project scan**: a selective predicate and an arithmetic
//!   projection over a wide in-memory scan — the pure runtime kernel,
//!   no store in the loop;
//! - **BindJoin-backed aggregate**: an event stream probing a key-value
//!   profile namespace through batched MGETs, grouped and aggregated
//!   (COUNT / SUM / MAX) on the far side of the join.
//!
//! **Identity is asserted on every measured run**: the vectorized output
//! must equal the tuple oracle's rows exactly (same order) — the
//! comparison sits outside the timed window in the single-shot section
//! and inside the iteration (symmetrically for both arms) in the
//! criterion section.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada_engine::{
    execute, execute_with, AggFun, AggSpec, ArithOp, BindSource, CmpOp, ExecOptions, Expr, Plan,
    RowBatch, Tuple,
};
use estocada_kvstore::KvStore;
use estocada_pivot::Value;
use estocada_simkit::LatencyModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_SIZES: [usize; 3] = [256, 1024, 4096];

// ---------------------------------------------------------------------
// Pipeline 1: filter + project scan.
// ---------------------------------------------------------------------

const SCAN_ROWS: usize = 200_000;

fn scan_input() -> RowBatch {
    let mut rng = StdRng::seed_from_u64(13);
    RowBatch::new(
        vec!["k".into(), "a".into(), "b".into()],
        (0..SCAN_ROWS)
            .map(|i| {
                vec![
                    Value::Int((i % 64) as i64),
                    Value::Int(rng.random_range(-1_000..1_000)),
                    Value::Int(rng.random_range(-1_000..1_000)),
                ]
            })
            .collect(),
    )
}

/// `SELECT k, a + b FROM scan WHERE a < 0` — roughly half the rows pass.
fn scan_plan(input: RowBatch) -> Plan {
    Plan::Project {
        input: Box::new(Plan::Filter {
            input: Box::new(Plan::Values(input)),
            pred: Expr::col(1).cmp(CmpOp::Lt, Expr::lit(0i64)),
        }),
        exprs: vec![
            ("k".into(), Expr::col(0)),
            (
                "s".into(),
                Expr::Arith(Box::new(Expr::col(1)), ArithOp::Add, Box::new(Expr::col(2))),
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// Pipeline 2: BindJoin-backed aggregate.
// ---------------------------------------------------------------------

const USERS: i64 = 8_192;
const EVENTS: usize = 50_000;

fn kv_profiles() -> Arc<KvStore> {
    let kv = Arc::new(KvStore::with_latency(LatencyModel {
        per_request_ns: 25_000,
        per_tuple_ns: 100,
        per_byte_ns: 1,
        per_scan_ns: 0,
    }));
    for uid in 0..USERS {
        kv.put(
            "profiles",
            Value::Int(uid),
            &[Value::Int(uid % 97), Value::Int(uid % 7)],
        );
    }
    kv
}

struct ProfileBind(Arc<KvStore>);
impl BindSource for ProfileBind {
    fn out_columns(&self) -> Vec<String> {
        vec!["score".into(), "region".into()]
    }
    fn fetch(&self, key: &[Value]) -> Vec<Tuple> {
        self.0.get("profiles", &key[0]).into_iter().collect()
    }
    fn fetch_batch(&self, keys: &[Vec<Value>]) -> Vec<Vec<Tuple>> {
        // Pipelined MGET: one simulated round-trip per key batch.
        let flat: Vec<Value> = keys.iter().map(|k| k[0].clone()).collect();
        self.0
            .mget("profiles", &flat)
            .into_iter()
            .map(|hit| hit.into_iter().collect())
            .collect()
    }
    fn label(&self) -> String {
        "kv profiles".into()
    }
}

fn event_input() -> RowBatch {
    let mut rng = StdRng::seed_from_u64(31);
    RowBatch::new(
        vec!["uid".into(), "amount".into()],
        (0..EVENTS)
            .map(|_| {
                vec![
                    Value::Int(rng.random_range(0..USERS)),
                    Value::Int(rng.random_range(1..500)),
                ]
            })
            .collect(),
    )
}

/// `SELECT region, COUNT(uid), SUM(amount), MAX(score) FROM events
///  BINDJOIN profiles GROUP BY region` — the join output is
/// `(uid, amount, score, region)`.
fn agg_plan(kv: Arc<KvStore>, events: RowBatch) -> Plan {
    Plan::Aggregate {
        input: Box::new(Plan::BindJoin {
            left: Box::new(Plan::Values(events)),
            key_cols: vec![0],
            source: Arc::new(ProfileBind(kv)),
        }),
        group_by: vec![3],
        aggs: vec![
            AggSpec {
                fun: AggFun::Count,
                col: 0,
                name: "n".into(),
            },
            AggSpec {
                fun: AggFun::Sum,
                col: 1,
                name: "total".into(),
            },
            AggSpec {
                fun: AggFun::Max,
                col: 2,
                name: "hi".into(),
            },
        ],
    }
}

// ---------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------

fn best_of<F: FnMut() -> Duration>(n: usize, mut f: F) -> Duration {
    (0..n).map(|_| f()).min().unwrap()
}

/// Time one tuple-path run; assert (untimed) that it equals the reference.
fn timed_tuple(plan: &Plan, reference: &RowBatch) -> Duration {
    let t0 = Instant::now();
    let (out, _) = execute(plan).expect("tuple exec");
    let dt = t0.elapsed();
    assert_eq!(
        out.rows, reference.rows,
        "tuple run diverged from reference"
    );
    dt
}

/// Time one vectorized run; assert (untimed) identity with the reference.
fn timed_vec(plan: &Plan, bs: usize, reference: &RowBatch) -> Duration {
    let opts = ExecOptions {
        vectorized: true,
        batch_size: bs,
    };
    let t0 = Instant::now();
    let (out, _) = execute_with(plan, &opts).expect("vectorized exec");
    let dt = t0.elapsed();
    assert_eq!(out.columns, reference.columns, "columns @ {bs}");
    assert_eq!(out.rows, reference.rows, "rows @ {bs}");
    dt
}

fn report(name: &str, plan: &Plan) -> (Duration, Duration) {
    let reference = execute(plan).expect("reference").0;
    let t_tuple = best_of(5, || timed_tuple(plan, &reference));
    println!("{name}: tuple {t_tuple:?} ({} rows)", reference.rows.len());
    let mut at_1024 = t_tuple;
    for bs in BATCH_SIZES {
        let t_vec = best_of(5, || timed_vec(plan, bs, &reference));
        let speedup = t_tuple.as_secs_f64() / t_vec.as_secs_f64();
        println!("{name}: vectorized@{bs} {t_vec:?} ({speedup:.2}x, identity asserted every run)");
        if bs == 1024 {
            at_1024 = t_vec;
        }
    }
    (t_tuple, at_1024)
}

fn bench(c: &mut Criterion) {
    println!(
        "== E13 summary (scan {SCAN_ROWS} rows; bindjoin {EVENTS} events over {USERS} profiles) =="
    );
    let scan = scan_plan(scan_input());
    let (scan_tuple, scan_vec) = report("filter+project scan", &scan);
    println!(
        "filter+project scan: batch@1024 speedup {:.2}x",
        scan_tuple.as_secs_f64() / scan_vec.as_secs_f64()
    );

    let agg = agg_plan(kv_profiles(), event_input());
    let (agg_tuple, agg_vec) = report("bindjoin aggregate", &agg);
    println!(
        "bindjoin aggregate: batch@1024 speedup {:.2}x",
        agg_tuple.as_secs_f64() / agg_vec.as_secs_f64()
    );

    // --- criterion arms (identity asserted inside every iteration, the
    // same full-row comparison in both arms) ---------------------------
    let scan_ref = execute(&scan).expect("scan reference").0;
    let agg_ref = execute(&agg).expect("agg reference").0;
    let mut group = c.benchmark_group("e13_vectorized_scan_agg");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("scan_tuple", |b| {
        b.iter(|| {
            let (out, _) = execute(&scan).expect("exec");
            assert_eq!(out.rows, scan_ref.rows);
            out.rows.len()
        })
    });
    for bs in BATCH_SIZES {
        group.bench_function(BenchmarkId::new("scan_vectorized", bs), |b| {
            let opts = ExecOptions {
                vectorized: true,
                batch_size: bs,
            };
            b.iter(|| {
                let (out, _) = execute_with(&scan, &opts).expect("exec");
                assert_eq!(out.rows, scan_ref.rows);
                out.rows.len()
            })
        });
    }
    group.bench_function("bindjoin_agg_tuple", |b| {
        b.iter(|| {
            let (out, _) = execute(&agg).expect("exec");
            assert_eq!(out.rows, agg_ref.rows);
            out.rows.len()
        })
    });
    for bs in BATCH_SIZES {
        group.bench_function(BenchmarkId::new("bindjoin_agg_vectorized", bs), |b| {
            let opts = ExecOptions {
                vectorized: true,
                batch_size: bs,
            };
            b.iter(|| {
                let (out, _) = execute_with(&agg, &opts).expect("exec");
                assert_eq!(out.rows, agg_ref.rows);
                out.rows.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
