//! E11 — incremental maintenance (PR 7): the price of keeping every
//! fragment fresh through the DML path, against the drop-and-rematerialize
//! alternative.
//!
//! Two questions are measured on the kv-migrated marketplace deployment:
//!
//! - **small-delta advantage**: applying a K-row order batch through the
//!   semi-naive delta chase touches only the facts and fragment rows the
//!   batch derives, while the drop-and-rematerialize alternative replays
//!   the whole deployment (register + chase-materialize every fragment).
//!   The single-shot gate asserts the incremental path beats a full
//!   rematerialization on small deltas (K = 1 and K = 8).
//! - **steady-state write cost**: criterion arms time an insert+delete
//!   cycle per batch size, plus the full-remat baseline.
//!
//! **Identity is asserted inside every measurement**: each timed
//! incremental application is followed (clock stopped) by a full
//! byte-level comparison of all five stores against a fresh engine
//! deployed from the mutated datasets — a maintenance bug that skews any
//! store fails the bench instead of its numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada::{Estocada, Latencies};
use estocada_pivot::Value;
use estocada_workloads::marketplace::{generate, Marketplace, MarketplaceConfig};
use estocada_workloads::readwrite::stale_fragments;
use estocada_workloads::scenarios::deploy_kv_migrated;
use std::time::{Duration, Instant};

fn cfg() -> MarketplaceConfig {
    MarketplaceConfig {
        users: 60,
        products: 30,
        orders: 200,
        log_entries: 400,
        skew: 0.8,
        seed: 31,
    }
}

fn market() -> Marketplace {
    generate(cfg())
}

/// Canonical rendering of every store's full content (sorted rows per
/// container; the rendered bytes must match exactly).
fn snapshot(est: &Estocada) -> Vec<(String, String)> {
    let s = &est.stores;
    let mut out = Vec::new();
    for t in s.rel.table_names() {
        let mut rows = s.rel.scan(&t).unwrap_or_default();
        rows.sort();
        out.push((format!("rel:{t}"), format!("{rows:?}")));
    }
    for ns in s.kv.namespace_names() {
        let mut entries = s.kv.scan(&ns);
        entries.sort();
        out.push((format!("kv:{ns}"), format!("{entries:?}")));
    }
    for c in s.doc.collection_names() {
        let mut docs = s.doc.scan(&c);
        docs.sort();
        out.push((format!("doc:{c}"), format!("{docs:?}")));
    }
    for d in s.par.dataset_names() {
        let mut rows = s.par.scan(&d, &[], None);
        rows.sort();
        out.push((format!("par:{d}"), format!("{rows:?}")));
    }
    let mut docs = s.text.documents("Products");
    docs.sort();
    out.push(("text:Products".into(), format!("{docs:?}")));
    out.sort();
    out
}

/// Fresh engine deployed from the incremental engine's current (mutated)
/// datasets — the drop-and-rematerialize twin.
fn remat_twin(est: &Estocada) -> Estocada {
    let m = Marketplace {
        sales: est.datasets()["sales"].clone(),
        carts: est.datasets()["Carts"].clone(),
        config: cfg(),
    };
    deploy_kv_migrated(&m, Latencies::zero())
}

fn assert_identical(est: &Estocada, what: &str) {
    assert!(
        stale_fragments(est).is_empty(),
        "{what}: stale fragments after maintenance"
    );
    let a = snapshot(est);
    let b = snapshot(&remat_twin(est));
    assert_eq!(a, b, "{what}: stores diverged from the remat twin");
}

/// A K-row order batch with oids from `base`.
fn order_batch(base: i64, k: usize) -> Vec<Vec<Value>> {
    (0..k as i64)
        .map(|i| {
            vec![
                Value::Int(base + i),
                Value::Int(i % 7),
                Value::Int(i % 5),
                Value::str(if i % 2 == 0 { "laptop" } else { "mouse" }),
                Value::Double(10.0 + i as f64),
            ]
        })
        .collect()
}

fn best_of<F: FnMut() -> Duration>(n: usize, mut f: F) -> Duration {
    (0..n).map(|_| f()).min().unwrap()
}

fn bench(c: &mut Criterion) {
    let m = market();
    println!(
        "== E11 summary (kv-migrated deployment, {} seed orders) ==",
        cfg().orders
    );

    // --- small-delta gate: incremental must beat full remat ---------
    let mut est = deploy_kv_migrated(&m, Latencies::zero());
    let mut next_oid = 500_000i64;
    for k in [1usize, 8] {
        let t_inc = best_of(5, || {
            let batch = order_batch(next_oid, k);
            next_oid += k as i64;
            let t0 = Instant::now();
            let rep = est
                .insert_rows("sales", "Orders", batch.clone())
                .expect("incremental insert");
            let dt = t0.elapsed();
            assert_eq!(rep.inserted, k);
            assert_identical(&est, "after incremental insert");
            // Restore (also through the maintenance path, untimed).
            est.delete_rows("sales", "Orders", batch)
                .expect("restore delete");
            dt
        });
        let t_remat = best_of(3, || {
            let batch = order_batch(next_oid, k);
            next_oid += k as i64;
            est.insert_rows("sales", "Orders", batch.clone())
                .expect("pre-remat insert");
            // Timed: replay the whole deployment from the mutated data.
            let t0 = Instant::now();
            let twin = remat_twin(&est);
            let dt = t0.elapsed();
            assert_eq!(
                snapshot(&est),
                snapshot(&twin),
                "remat twin diverged from the incremental engine"
            );
            est.delete_rows("sales", "Orders", batch)
                .expect("restore delete");
            dt
        });
        println!(
            "delta k={k}: incremental {t_inc:?} vs drop-and-rematerialize {t_remat:?} \
             ({:.1}x)",
            t_remat.as_secs_f64() / t_inc.as_secs_f64().max(1e-12)
        );
        assert!(
            t_inc < t_remat,
            "incremental maintenance of a {k}-row delta ({t_inc:?}) must beat a full \
             rematerialization ({t_remat:?})"
        );
    }
    println!("(store-level identity vs the remat twin asserted in every measurement above)");

    // --- criterion arms ---------------------------------------------
    let mut group = c.benchmark_group("e11_incremental_maintenance");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for k in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("insert_delete_cycle", k), &k, |b, &k| {
            b.iter(|| {
                let batch = order_batch(next_oid, k);
                next_oid += k as i64;
                let rep = est
                    .insert_rows("sales", "Orders", batch.clone())
                    .expect("insert");
                assert_eq!(rep.inserted, k, "short insert");
                assert!(stale_fragments(&est).is_empty(), "stale after insert");
                let rep = est.delete_rows("sales", "Orders", batch).expect("delete");
                assert_eq!(rep.deleted, k, "short delete");
            });
            // Identity after every measured arm pass.
            assert_identical(&est, "after insert/delete cycles");
        });
    }
    group.bench_with_input(BenchmarkId::new("full_rematerialize", 0), &(), |b, _| {
        b.iter(|| {
            let twin = remat_twin(&est);
            assert!(
                !twin.catalog().fragments().is_empty(),
                "remat built no fragments"
            );
            twin
        });
        assert_identical(&est, "after remat baseline");
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
