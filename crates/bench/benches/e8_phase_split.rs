//! E8 — the phase-split chase (PR 4): scaling of the read-only
//! trigger-search phase over `ChaseConfig::search_workers` (1/2/4/8), and
//! the applicability memo on/off, on the probe-heavy closure workload
//! shared with the differential suite
//! (`testkit::phase_split_workload`: independent relation families whose
//! transitive closures re-derive every pair through each midpoint —
//! trigger counts cubic, distinct applicability keys quadratic).
//!
//! The phase-split contract is asserted **inside every measurement**:
//! each timed run's final instance and full `ChaseStats` are compared
//! against the serial memo-on reference (core counters only when the
//! memo differs), so a fan-in or memo bug fails the bench rather than
//! skewing its numbers. Worker speedups are bounded by host cores —
//! on a single-core runner the expectation is parity, never skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada_chase::testkit::{dump_state as dump, phase_split_workload};
use estocada_chase::{chase, ChaseConfig, ChaseStats, Instance};
use estocada_pivot::Constraint;
use std::time::{Duration, Instant};

fn cfg(search_workers: usize, memo: bool) -> ChaseConfig {
    ChaseConfig {
        search_workers,
        // Zero the fan-out size gate so every multi-worker arm measures
        // the genuine parallel search branch, not the inline fallback the
        // production default would take on the smaller workloads.
        search_min_facts: 0,
        memo,
        ..ChaseConfig::default()
    }
}

struct Reference {
    stats: ChaseStats,
    state: Vec<(u32, String, String, u64)>,
}

/// Run one configuration and assert identity against the reference —
/// full stats when the memo setting matches the reference's (memo on),
/// core counters plus zeroed memo counters otherwise.
fn run_checked(
    seed: &Instance,
    constraints: &[Constraint],
    c: &ChaseConfig,
    reference: &Reference,
) -> Duration {
    let mut work = seed.clone();
    let t = Instant::now();
    let stats = chase(&mut work, constraints, c).unwrap();
    let elapsed = t.elapsed();
    if c.memo {
        assert_eq!(stats, reference.stats, "stats skew vs serial reference");
    } else {
        assert_eq!(stats.core(), reference.stats.core(), "core-counter skew");
        assert_eq!((stats.memo_hits, stats.memo_misses), (0, 0));
    }
    assert_eq!(
        dump(&work),
        reference.state,
        "end-state skew vs serial reference"
    );
    elapsed
}

fn bench(c: &mut Criterion) {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== E8 summary (phase-split chase, host cores: {host_cores}) ==");
    for (rels, chain) in [(4usize, 12usize), (8, 14), (8, 18)] {
        let (seed, constraints) = phase_split_workload(rels, chain);
        let reference = {
            let mut work = seed.clone();
            let stats = chase(&mut work, &constraints, &cfg(1, true)).unwrap();
            Reference {
                stats,
                state: dump(&work),
            }
        };
        let mut line = format!(
            "rels={rels} chain={chain}: {} fires, {} rounds, memo {}/{} hit/miss —",
            reference.stats.tgd_fires,
            reference.stats.rounds,
            reference.stats.memo_hits,
            reference.stats.memo_misses,
        );
        for workers in [1usize, 2, 4, 8] {
            // Best of 3 (scheduling noise dominates at these sizes).
            let best = (0..3)
                .map(|_| run_checked(&seed, &constraints, &cfg(workers, true), &reference))
                .min()
                .unwrap();
            line.push_str(&format!(" {workers}w {best:?}"));
        }
        let memo_off = (0..3)
            .map(|_| run_checked(&seed, &constraints, &cfg(1, false), &reference))
            .min()
            .unwrap();
        line.push_str(&format!(" | memo-off {memo_off:?}"));
        println!("{line}");
    }
    println!("(identity vs the serial memo-on reference asserted on every run above)");

    let mut group = c.benchmark_group("e8_phase_split");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (rels, chain) in [(4usize, 12usize), (8, 14)] {
        let (seed, constraints) = phase_split_workload(rels, chain);
        let reference = {
            let mut work = seed.clone();
            let stats = chase(&mut work, &constraints, &cfg(1, true)).unwrap();
            Reference {
                stats,
                state: dump(&work),
            }
        };
        let label = format!("{rels}x{chain}");
        for (name, c) in [
            ("memo_on", cfg(1, true)),
            ("memo_off", cfg(1, false)),
            ("workers2", cfg(2, true)),
            ("workers4", cfg(4, true)),
            ("workers8", cfg(8, true)),
        ] {
            group.bench_with_input(BenchmarkId::new(name, &label), &c, |b, c| {
                b.iter(|| run_checked(&seed, &constraints, c, &reference))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
