//! E5 — §IV demo step 4: "request fragment recommendations from the
//! storage advisor, materialize them and observe the impact on the
//! selection of a query plan".
//!
//! The workload shifts to heavy preference lookups plus personalized
//! searches over the *baseline* deployment; the advisor recommends a
//! key-value point-access fragment and a materialized indexed join
//! fragment, both are applied, and the workload is re-measured.

use criterion::{criterion_group, criterion_main, Criterion};
use estocada::advisor::{apply, recommend, WorkloadQuery};
use estocada::frontends::parse_sql;
use estocada::{Estocada, Latencies};
use estocada_workloads::marketplace::{generate, MarketplaceConfig, CATEGORIES};
use estocada_workloads::scenarios::{deploy_baseline, personalized_sql, pref_sql};
use std::time::Duration;

fn config() -> MarketplaceConfig {
    MarketplaceConfig {
        users: 300,
        products: 120,
        orders: 2_000,
        log_entries: 5_000,
        skew: 0.9,
        seed: 42,
    }
}

/// The shifted workload W2: SQL texts with frequencies.
fn w2_sql() -> Vec<(String, f64)> {
    let mut out = vec![(pref_sql(3), 50.0), (pref_sql(11), 30.0)];
    out.push((personalized_sql(3, CATEGORIES[0]), 20.0));
    out
}

fn parse_workload(est: &Estocada) -> Vec<WorkloadQuery> {
    let catalog = est.sql_catalog();
    w2_sql()
        .into_iter()
        .enumerate()
        .map(|(i, (sql, weight))| {
            let p = parse_sql(&sql, &catalog).expect("workload query parses");
            WorkloadQuery {
                name: format!("w2q{i}"),
                cq: p.cq,
                head_names: p.head_names,
                residuals: p.residuals,
                weight,
            }
        })
        .collect()
}

fn run_w2(est: &mut Estocada) -> Duration {
    let mut total = Duration::ZERO;
    for (sql, weight) in w2_sql() {
        let r = est.query_sql(&sql).expect("workload query failed");
        // Weight approximates frequency: scale the per-execution time.
        total += r.report.exec.total_time.mul_f64(weight / 10.0);
    }
    total
}

fn bench(c: &mut Criterion) {
    let cfg = config();
    let m = generate(cfg);

    {
        let mut est = deploy_baseline(&m, Latencies::datacenter());
        let workload = parse_workload(&est);
        run_w2(&mut est);
        let before = run_w2(&mut est);
        let recs = recommend(&est, &workload).expect("advisor");
        println!("== E5 summary ==");
        println!("advisor produced {} recommendations:", recs.len());
        for r in &recs {
            println!("  [benefit {:10.1}] {}", r.benefit, r.reason);
        }
        let adds = recs
            .iter()
            .filter(|r| matches!(r.action, estocada::advisor::Action::Add(_)))
            .count();
        assert!(adds >= 1, "advisor must recommend at least one fragment");
        apply(&mut est, recs, false).expect("apply recommendations");
        run_w2(&mut est);
        let after = run_w2(&mut est);
        println!("workload W2 before: {before:?}");
        println!("workload W2 after:  {after:?}");
        println!(
            "improvement: {:.1}%  (paper: demo shows plan-selection impact)",
            100.0 * (1.0 - after.as_secs_f64() / before.as_secs_f64())
        );
    }

    let mut group = c.benchmark_group("e5_advisor");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    group.bench_function("w2_before_advice", |b| {
        let mut est = deploy_baseline(&m, Latencies::datacenter());
        run_w2(&mut est);
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += run_w2(&mut est);
            }
            total
        })
    });

    group.bench_function("w2_after_advice", |b| {
        let mut est = deploy_baseline(&m, Latencies::datacenter());
        let workload = parse_workload(&est);
        let recs = recommend(&est, &workload).unwrap();
        apply(&mut est, recs, false).unwrap();
        run_w2(&mut est);
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += run_w2(&mut est);
            }
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
