//! E2 — §II claim: materializing the join of past purchases and browsing
//! history as a relation in the parallel store, indexed by (user ID,
//! product category), brings an extra ≈40% on the personalized item search
//! query.
//!
//! Compares the personalized-search execution time before (live cross-store
//! join: relational Orders × parallel WebLog, joined in the mediator
//! runtime) and after (single indexed lookup in the parallel store).

use criterion::{criterion_group, criterion_main, Criterion};
use estocada::{Estocada, Latencies};
use estocada_workloads::marketplace::{generate, MarketplaceConfig, CATEGORIES};
use estocada_workloads::scenarios::{
    deploy_kv_migrated, deploy_materialized_join, personalized_sql,
};
use estocada_workloads::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn config() -> MarketplaceConfig {
    MarketplaceConfig {
        users: 300,
        products: 150,
        orders: 3_000,
        log_entries: 8_000,
        skew: 0.9,
        seed: 42,
    }
}

/// A mix of personalized searches for hot users across categories.
fn search_mix(cfg: &MarketplaceConfig, n: usize) -> Vec<(i64, &'static str)> {
    let mut rng = StdRng::seed_from_u64(99);
    let zipf = Zipf::new(cfg.users, cfg.skew);
    (0..n)
        .map(|i| {
            (
                zipf.sample(&mut rng) as i64,
                CATEGORIES[i % CATEGORIES.len()],
            )
        })
        .collect()
}

fn run_mix(est: &mut Estocada, mix: &[(i64, &'static str)]) -> Duration {
    let mut total = Duration::ZERO;
    for (uid, cat) in mix {
        let r = est
            .query_sql(&personalized_sql(*uid, cat))
            .expect("personalized search failed");
        total += r.report.exec.total_time;
    }
    total
}

fn bench(c: &mut Criterion) {
    let cfg = config();
    let m = generate(cfg);
    let mix = search_mix(&cfg, 12);

    {
        let mut before = deploy_kv_migrated(&m, Latencies::datacenter());
        let mut after = deploy_materialized_join(&m, Latencies::datacenter());
        run_mix(&mut before, &mix);
        run_mix(&mut after, &mix);
        let t_before = run_mix(&mut before, &mix);
        let t_after = run_mix(&mut after, &mix);
        let gain = 100.0 * (1.0 - t_after.as_secs_f64() / t_before.as_secs_f64());
        println!("== E2 summary ==");
        println!("personalized item search ({} queries)", mix.len());
        println!("  before (live Orders ⋈ WebLog across stores): {t_before:?}");
        println!("  after (materialized indexed join in Spark-like store): {t_after:?}");
        println!("  improvement: {gain:.1}%  (paper: extra ~40%)");
    }

    let mut group = c.benchmark_group("e2_materialized_join");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    group.bench_function("live_cross_store_join", |b| {
        let mut est = deploy_kv_migrated(&m, Latencies::datacenter());
        run_mix(&mut est, &mix);
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += run_mix(&mut est, &mix);
            }
            total
        })
    });

    group.bench_function("materialized_indexed_join", |b| {
        let mut est = deploy_materialized_join(&m, Latencies::datacenter());
        run_mix(&mut est, &mix);
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += run_mix(&mut est, &mix);
            }
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
