//! A1 — ablation of the design choices DESIGN.md calls out:
//!
//! 1. **Candidate verification** (the safety net around the conservative
//!    EGD-provenance treatment): how much rewriting time does re-verifying
//!    every candidate cost, and does disabling it ever change the output on
//!    EGD-free problems? (It must not.)
//! 2. **Provenance clause cap**: the minimized-DNF cap trades completeness
//!    flags for memory; measure its timing effect at small caps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada_chase::{pacb_rewrite, ProvChaseConfig, RewriteConfig, RewriteProblem};
use estocada_pivot::{Cq, CqBuilder, ViewDef};
use std::time::Duration;

/// Chain problem with redundant views (same shape as E3).
fn chain_problem(k: usize) -> RewriteProblem {
    let mut qb = CqBuilder::new("Q").head_vars(["x0"]);
    let mut q = {
        for i in 0..k {
            let a = format!("x{i}");
            let b = format!("x{}", i + 1);
            qb = qb.atom(format!("R{i}").as_str(), move |ab| ab.v(&a).v(&b));
        }
        qb.build()
    };
    let last = q.body[k - 1].args[1].clone();
    q.head.push(last);
    let mut views = Vec::new();
    for i in 0..k {
        views.push(ViewDef::new(
            CqBuilder::new(format!("V{i}").as_str())
                .head_vars(["a", "b"])
                .atom(format!("R{i}").as_str(), |x| x.v("a").v("b"))
                .build(),
        ));
        views.push(ViewDef::new(
            CqBuilder::new(format!("W{i}").as_str())
                .head_vars(["a", "b"])
                .atom(format!("R{i}").as_str(), |x| x.v("a").v("b"))
                .build(),
        ));
    }
    RewriteProblem::new(q, views)
}

fn canon(rws: &[Cq]) -> Vec<String> {
    let mut v: Vec<String> = rws
        .iter()
        .map(|r| format!("{}", r.canonicalize()))
        .collect();
    v.sort();
    v
}

fn bench(c: &mut Criterion) {
    println!("== A1 summary ==");
    for k in [4usize, 6, 8] {
        let problem = chain_problem(k);
        let with = pacb_rewrite(&problem, &RewriteConfig::default()).unwrap();
        let without = pacb_rewrite(
            &problem,
            &RewriteConfig {
                verify: false,
                ..RewriteConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            canon(&with.rewritings),
            canon(&without.rewritings),
            "verification must not change output on EGD-free problems"
        );
        let t = std::time::Instant::now();
        pacb_rewrite(&problem, &RewriteConfig::default()).unwrap();
        let t_with = t.elapsed();
        let t = std::time::Instant::now();
        pacb_rewrite(
            &problem,
            &RewriteConfig {
                verify: false,
                ..RewriteConfig::default()
            },
        )
        .unwrap();
        let t_without = t.elapsed();
        println!(
            "chain k={k}: verify-on {t_with:?}, verify-off {t_without:?} \
             (overhead {:.0}%), {} rewritings",
            100.0 * (t_with.as_secs_f64() / t_without.as_secs_f64() - 1.0),
            with.rewritings.len()
        );
    }
    // Clause-cap sweep: tiny caps may flag incompleteness but never emit
    // wrong rewritings.
    for cap in [4usize, 64, 2048] {
        let problem = chain_problem(6);
        let out = pacb_rewrite(
            &problem,
            &RewriteConfig {
                prov: ProvChaseConfig {
                    clause_cap: cap,
                    ..ProvChaseConfig::default()
                },
                ..RewriteConfig::default()
            },
        )
        .unwrap();
        println!(
            "clause cap {cap}: {} rewritings, complete={}",
            out.rewritings.len(),
            out.complete
        );
    }

    let mut group = c.benchmark_group("a1_pacb_ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for k in [4usize, 6] {
        let problem = chain_problem(k);
        group.bench_with_input(BenchmarkId::new("verify_on", k), &problem, |b, p| {
            b.iter(|| pacb_rewrite(p, &RewriteConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("verify_off", k), &problem, |b, p| {
            b.iter(|| {
                pacb_rewrite(
                    p,
                    &RewriteConfig {
                        verify: false,
                        ..RewriteConfig::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
