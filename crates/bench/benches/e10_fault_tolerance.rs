//! E10 — fault tolerance (PR 6): the cost of the resilience layer and the
//! price of surviving an outage.
//!
//! Three questions are measured on the kv-migrated marketplace deployment:
//!
//! - **fault-free overhead**: the retry wrapper + breaker admission are
//!   always on; arming a fault plan whose windows never fire additionally
//!   consults the injection hook on every simulated request. Both arms
//!   must stay within noise of each other — the single-shot gate asserts
//!   the armed-but-quiescent arm is ≤ 2% over the disarmed arm.
//! - **recovery latency**: a transient key-value outage (first two GETs
//!   fail) absorbed by the retry loop — the extra latency over the
//!   fault-free run is the price of recovery without failover.
//! - **failover vs fail-fast**: under a full key-value outage, the default
//!   retry policy burns its attempts before failing over, while
//!   `RetryPolicy::fail_fast` jumps to the surviving relational rewriting
//!   immediately; once the breaker is open, subsequent queries are steered
//!   at plan time and pay neither.
//!
//! **Identity is asserted inside every measurement**: every timed run
//! compares its rows against the fault-free reference (sorted where a
//! different plan may legitimately reorder), so a fault that silently
//! truncates or skews an answer fails the bench instead of its numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada::{Estocada, FaultKind, FaultPlan, Latencies, RetryPolicy};
use estocada_pivot::Value;
use estocada_workloads::marketplace::{generate, Marketplace, MarketplaceConfig};
use estocada_workloads::scenarios::{
    cart_pattern, deploy_kv_migrated, personalized_sql, pref_sql, user_orders_sql,
};
use std::time::{Duration, Instant};

#[derive(Clone)]
enum Q {
    Sql(String),
    Doc(i64),
}

fn workload() -> Vec<Q> {
    let mut out = Vec::new();
    for uid in [1i64, 3, 7, 9] {
        out.push(Q::Sql(pref_sql(uid)));
        out.push(Q::Doc(uid));
        out.push(Q::Sql(user_orders_sql(uid)));
    }
    out.push(Q::Sql(personalized_sql(1, "laptop")));
    out
}

fn market() -> Marketplace {
    generate(MarketplaceConfig {
        users: 60,
        products: 30,
        orders: 200,
        log_entries: 400,
        skew: 0.8,
        seed: 31,
    })
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_micros(5),
        max_backoff: Duration::from_micros(20),
        jitter: true,
    }
}

fn engine(m: &Marketplace) -> Estocada {
    let mut est = deploy_kv_migrated(m, Latencies::zero());
    let opts = est.default_query_options().with_retry_policy(fast_retry());
    est.set_default_query_options(opts);
    est
}

/// A fault plan that is armed (the hook fires on every simulated request)
/// but whose rules never inject: the pure cost of consulting the layer.
fn quiescent_plan() -> FaultPlan {
    FaultPlan::new(11)
        .random_errors("key-value", 0.0, FaultKind::Timeout)
        .fail_ops(
            "relational",
            "sql",
            1 << 40,
            (1 << 40) + 1,
            FaultKind::Unavailable,
        )
        .random_errors("document", 0.0, FaultKind::PartialResponse)
}

fn run_q(est: &Estocada, q: &Q) -> Vec<Vec<Value>> {
    match q {
        Q::Sql(sql) => est.query_sql(sql).expect("bench query").rows,
        Q::Doc(uid) => {
            est.query_doc(&cart_pattern(*uid), &["pid", "qty"])
                .expect("bench doc query")
                .rows
        }
    }
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// Run the workload and assert per-query identity against the reference.
/// `exact` compares row order too (same plan expected); otherwise rows are
/// compared as sets (a failover plan may reorder).
fn run_checked(est: &Estocada, work: &[Q], reference: &[Vec<Vec<Value>>], exact: bool) -> Duration {
    let t0 = Instant::now();
    for (i, q) in work.iter().enumerate() {
        let got = run_q(est, q);
        if exact {
            assert_eq!(got, reference[i], "row skew at query {i}");
        } else {
            assert_eq!(
                sorted(got),
                sorted(reference[i].clone()),
                "row-set skew at query {i}"
            );
        }
    }
    t0.elapsed()
}

fn best_of<F: FnMut() -> Duration>(n: usize, mut f: F) -> Duration {
    (0..n).map(|_| f()).min().unwrap()
}

fn bench(c: &mut Criterion) {
    let m = market();
    let work = workload();
    let reference: Vec<Vec<Vec<Value>>> = {
        let est = engine(&m);
        work.iter().map(|q| run_q(&est, q)).collect()
    };

    println!(
        "== E10 summary ({} queries, kv-migrated deployment) ==",
        work.len()
    );

    // --- fault-free overhead gate -----------------------------------
    // The true per-operation cost is ~tens of ns (one atomic bump + a
    // precomputed-rule scan), far below host noise on a ms-scale workload.
    // Each session interleaves the arms in alternating order and keeps the
    // minimum burst per arm; the gate takes the best of several sessions,
    // so a >2% verdict requires the overhead to show up consistently, not
    // one scheduler hiccup.
    let disarmed = engine(&m);
    let mut armed = engine(&m);
    armed.set_fault_plan(Some(quiescent_plan()));
    let burst = |est: &Estocada| {
        let t0 = Instant::now();
        for _ in 0..4 {
            run_checked(est, &work, &reference, true);
        }
        t0.elapsed()
    };
    burst(&disarmed);
    burst(&armed);
    let session = || {
        let (mut t_off, mut t_arm) = (Duration::MAX, Duration::MAX);
        for round in 0..10 {
            if round % 2 == 0 {
                t_off = t_off.min(burst(&disarmed));
                t_arm = t_arm.min(burst(&armed));
            } else {
                t_arm = t_arm.min(burst(&armed));
                t_off = t_off.min(burst(&disarmed));
            }
        }
        let pct = (t_arm.as_secs_f64() / t_off.as_secs_f64().max(1e-12) - 1.0) * 100.0;
        (t_off, t_arm, pct)
    };
    let (mut t_off, mut t_arm, mut overhead_pct) = session();
    for _ in 0..4 {
        if overhead_pct <= 2.0 {
            break;
        }
        let s = session();
        if s.2 < overhead_pct {
            (t_off, t_arm, overhead_pct) = s;
        }
    }
    println!(
        "fault-free: disarmed {t_off:?}, armed-quiescent {t_arm:?} ({overhead_pct:+.2}% overhead)"
    );
    assert!(
        overhead_pct <= 2.0,
        "quiescent fault layer overhead {overhead_pct:.2}% exceeds the 2% budget"
    );

    // --- recovery latency (transient outage, retries absorb it) -----
    let probe = Q::Sql(pref_sql(3));
    let t_clean = best_of(3, || {
        let est = engine(&m);
        let t0 = Instant::now();
        let rows = run_q(&est, &probe);
        let dt = t0.elapsed();
        assert_eq!(rows, reference[3], "clean probe skew");
        dt
    });
    let t_recover = best_of(3, || {
        let mut est = engine(&m);
        est.set_fault_plan(Some(FaultPlan::new(9).fail_ops(
            "key-value",
            "get",
            1,
            2,
            FaultKind::Timeout,
        )));
        let t0 = Instant::now();
        let r = match &probe {
            Q::Sql(sql) => est.query_sql(sql).expect("retries must recover"),
            Q::Doc(_) => unreachable!(),
        };
        let dt = t0.elapsed();
        assert_eq!(r.rows, reference[3], "recovered rows skew");
        let res = r.report.resilience.expect("events reported");
        assert_eq!(res.retries, 2, "two retries absorb the two-op window");
        assert!(!res.failed_over());
        dt
    });
    println!(
        "recovery: clean {t_clean:?}, 2-retry recovery {t_recover:?} (+{:?} recovery latency)",
        t_recover.saturating_sub(t_clean)
    );

    // --- failover vs fail-fast under a full kv outage ---------------
    let outage = FaultPlan::new(7).down("key-value", FaultKind::Unavailable);
    let run_outage = |policy: RetryPolicy| {
        best_of(3, || {
            let mut est = deploy_kv_migrated(&m, Latencies::zero());
            let opts = est.default_query_options().with_retry_policy(policy);
            est.set_default_query_options(opts);
            est.set_fault_plan(Some(outage.clone()));
            let t0 = Instant::now();
            let r = match &probe {
                Q::Sql(sql) => est.query_sql(sql).expect("failover must answer"),
                Q::Doc(_) => unreachable!(),
            };
            let dt = t0.elapsed();
            assert_eq!(
                sorted(r.rows),
                sorted(reference[3].clone()),
                "failover skew"
            );
            assert!(r.report.resilience.expect("chain recorded").failed_over());
            dt
        })
    };
    let t_failover = run_outage(fast_retry());
    let t_fail_fast = run_outage(RetryPolicy::fail_fast());
    println!(
        "kv outage: failover after retries {t_failover:?}, fail-fast failover {t_fail_fast:?}, \
         clean reference {t_clean:?}"
    );

    // Steered steady state: trip the breaker once, then every later query
    // avoids the dead store at plan time (no retries, no errors).
    let mut steered = engine(&m);
    steered.set_fault_plan(Some(outage.clone()));
    let _ = run_q(&steered, &probe); // trips the key-value breaker
    let t_steered = best_of(5, || run_checked(&steered, &work, &reference, false));
    println!(
        "steered (breaker open): workload {t_steered:?} vs disarmed {:?}",
        t_off / 4
    );
    println!("(identity vs the fault-free reference asserted in every run above)");

    // --- criterion arms ---------------------------------------------
    let mut group = c.benchmark_group("e10_fault_tolerance");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_with_input(
        BenchmarkId::new("fault_free_disarmed", work.len()),
        &(),
        |b, _| b.iter(|| run_checked(&disarmed, &work, &reference, true)),
    );
    group.bench_with_input(
        BenchmarkId::new("fault_free_armed", work.len()),
        &(),
        |b, _| b.iter(|| run_checked(&armed, &work, &reference, true)),
    );
    // Degraded mode: 30% of key-value GETs time out; retries absorb most,
    // failover covers the rest — answers stay oracle-identical.
    let mut degraded = engine(&m);
    degraded.set_fault_plan(Some(FaultPlan::new(13).random_errors(
        "key-value",
        0.3,
        FaultKind::Timeout,
    )));
    group.bench_with_input(
        BenchmarkId::new("degraded_kv_p30", work.len()),
        &(),
        |b, _| b.iter(|| run_checked(&degraded, &work, &reference, false)),
    );
    group.bench_with_input(
        BenchmarkId::new("outage_steered", work.len()),
        &(),
        |b, _| b.iter(|| run_checked(&steered, &work, &reference, false)),
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
