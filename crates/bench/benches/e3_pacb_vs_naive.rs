//! E3 — §III claim: the provenance-aware C&B "drastically reduces the
//! back-chase effort … rewriting speedups … of 1–2 orders of magnitude"
//! over the classical Chase & Backchase.
//!
//! Sweeps the number of views for chain- and star-shaped queries and times
//! `pacb_rewrite` against `naive_rewrite` (exhaustive subset backchase).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada_chase::{naive_rewrite, pacb_rewrite, NaiveConfig, RewriteConfig, RewriteProblem};
use estocada_pivot::{Cq, CqBuilder, ViewDef};
use std::time::{Duration, Instant};

/// Chain problem: Q(x0,xk) :- R1(x0,x1), ..., Rk(x(k-1),xk) with one view
/// per edge plus one redundant projection view per edge.
fn chain_problem(k: usize) -> RewriteProblem {
    let mut qb = CqBuilder::new("Q").head_vars(["x0"]);
    // add xk to head
    let mut q = {
        for i in 0..k {
            let a = format!("x{i}");
            let b = format!("x{}", i + 1);
            qb = qb.atom(format!("R{i}").as_str(), move |ab| ab.v(&a).v(&b));
        }
        qb.build()
    };
    // Head: (x0, xk)
    let last = q.body[k - 1].args[1].clone();
    q.head.push(last);

    let mut views = Vec::new();
    for i in 0..k {
        views.push(ViewDef::new(
            CqBuilder::new(format!("V{i}").as_str())
                .head_vars(["a", "b"])
                .atom(format!("R{i}").as_str(), |x| x.v("a").v("b"))
                .build(),
        ));
        // A redundant projection view enlarging the universal plan.
        views.push(ViewDef::new(
            CqBuilder::new(format!("P{i}").as_str())
                .head_vars(["a"])
                .atom(format!("R{i}").as_str(), |x| x.v("a").v("b"))
                .build(),
        ));
    }
    RewriteProblem::new(q, views)
}

/// Star problem: Q(c) :- Hub(c), S1(c,y1), ..., Sk(c,yk) with per-satellite
/// views.
fn star_problem(k: usize) -> RewriteProblem {
    let mut qb = CqBuilder::new("Q").head_vars(["c"]);
    qb = qb.atom("Hub", |a| a.v("c"));
    for i in 0..k {
        let y = format!("y{i}");
        qb = qb.atom(format!("S{i}").as_str(), move |a| a.v("c").v(&y));
    }
    let q = qb.build();
    let mut views = vec![ViewDef::new(
        CqBuilder::new("VHub")
            .head_vars(["c"])
            .atom("Hub", |a| a.v("c"))
            .build(),
    )];
    for i in 0..k {
        views.push(ViewDef::new(
            CqBuilder::new(format!("VS{i}").as_str())
                .head_vars(["c", "y"])
                .atom(format!("S{i}").as_str(), |a| a.v("c").v("y"))
                .build(),
        ));
    }
    RewriteProblem::new(q, views)
}

fn time_once<F: FnOnce()>(f: F) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

fn bench(c: &mut Criterion) {
    println!("== E3 summary (single-shot timings) ==");
    println!(
        "{:<18} {:>12} {:>12} {:>9}",
        "problem", "PACB", "naive C&B", "speedup"
    );
    for k in [2usize, 4, 6, 8] {
        for (name, problem) in [
            (format!("chain k={k}"), chain_problem(k)),
            (format!("star k={k}"), star_problem(k)),
        ] {
            let pacb_out = pacb_rewrite(&problem, &RewriteConfig::default()).unwrap();
            let naive_out = naive_rewrite(&problem, &NaiveConfig::default()).unwrap();
            assert_eq!(
                pacb_out.rewritings.len(),
                naive_out.rewritings.len(),
                "algorithms disagree on {name}"
            );
            let tp = time_once(|| {
                pacb_rewrite(&problem, &RewriteConfig::default()).unwrap();
            });
            let tn = time_once(|| {
                naive_rewrite(&problem, &NaiveConfig::default()).unwrap();
            });
            println!(
                "{:<18} {:>12?} {:>12?} {:>8.1}x",
                name,
                tp,
                tn,
                tn.as_secs_f64() / tp.as_secs_f64()
            );
        }
    }
    println!("(paper: PACB 1-2 orders of magnitude faster than classical C&B)");

    let mut group = c.benchmark_group("e3_pacb_vs_naive");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for k in [4usize, 6] {
        // k=8 only appears in the single-shot summary above: the naive
        // backchase needs ~2s per run there, too slow to sample.
        let problem = chain_problem(k);
        group.bench_with_input(BenchmarkId::new("pacb_chain", k), &problem, |b, p| {
            b.iter(|| pacb_rewrite(p, &RewriteConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive_chain", k), &problem, |b, p| {
            b.iter(|| naive_rewrite(p, &NaiveConfig::default()).unwrap())
        });
    }
    group.finish();

    // Keep the chain/star helpers honest: rewritings must exist.
    let sanity: Cq = pacb_rewrite(&chain_problem(3), &RewriteConfig::default())
        .unwrap()
        .rewritings
        .remove(0);
    assert_eq!(sanity.body.len(), 3);
}

criterion_group!(benches, bench);
criterion_main!(benches);
