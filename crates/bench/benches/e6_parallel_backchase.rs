//! E6 — scaling of the **parallel PACB backchase**: candidate verification
//! fans out over the scoped worker pool (`RewriteConfig::parallelism`), so
//! multi-candidate problems should speed up with workers while producing
//! the *identical* `RewriteOutcome` (the deterministic fan-in contract —
//! asserted on every measurement below, not just tested elsewhere).
//!
//! The workload is the E3 chain/star family widened to two interchangeable
//! views per edge: a chain of length k has 2^k minimal rewritings, i.e.
//! 2^k independent verification chases to fan out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada_chase::testkit::{wide_chain_problem, wide_star_problem};
use estocada_chase::{pacb_rewrite, RewriteConfig, RewriteOutcome, RewriteProblem};
use std::time::{Duration, Instant};

fn run(problem: &RewriteProblem, workers: usize) -> (RewriteOutcome, Duration) {
    let cfg = RewriteConfig::default().with_parallelism(workers);
    let t = Instant::now();
    let out = pacb_rewrite(problem, &cfg).unwrap();
    (out, t.elapsed())
}

fn bench(c: &mut Criterion) {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== E6 summary (single-shot timings, host cores: {host_cores}) ==");
    println!(
        "{:<16} {:>11} {:>11} {:>11} {:>11} {:>9}",
        "problem", "1 worker", "2 workers", "4 workers", "8 workers", "4w spdup"
    );
    for (name, problem) in [
        ("chain k=6".to_string(), wide_chain_problem(6)),
        ("chain k=8".to_string(), wide_chain_problem(8)),
        ("star k=6".to_string(), wide_star_problem(6)),
        ("star k=8".to_string(), wide_star_problem(8)),
    ] {
        let (reference, _) = run(&problem, 1);
        let mut times = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            // Best of 3: scheduling noise matters more than warm-up here.
            let mut best = Duration::MAX;
            for _ in 0..3 {
                let (out, t) = run(&problem, workers);
                assert_eq!(
                    out, reference,
                    "fan-in contract violated at {workers} workers on {name}"
                );
                best = best.min(t);
            }
            times.push(best);
        }
        println!(
            "{:<16} {:>11?} {:>11?} {:>11?} {:>11?} {:>8.2}x  ({} rewritings)",
            name,
            times[0],
            times[1],
            times[2],
            times[3],
            times[0].as_secs_f64() / times[2].as_secs_f64(),
            reference.rewritings.len(),
        );
    }
    println!("(speedup bounded by host cores; outcome identical at every worker count)");

    let mut group = c.benchmark_group("e6_parallel_backchase");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    let problem = wide_chain_problem(8);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("chain8", workers),
            &workers,
            |b, &workers| {
                let cfg = RewriteConfig::default().with_parallelism(workers);
                b.iter(|| pacb_rewrite(&problem, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
