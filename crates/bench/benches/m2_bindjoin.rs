//! M2 — BindJoin vs ship-everything (supports the feasible-rewritings
//! machinery): accessing an access-restricted key-value fragment through
//! BindJoin probes, against the strawman of scanning the whole namespace
//! and hash-joining in the mediator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada_engine::{execute, BindSource, Plan, RowBatch, Tuple};
use estocada_kvstore::KvStore;
use estocada_pivot::Value;
use estocada_simkit::LatencyModel;
use std::sync::Arc;
use std::time::Duration;

const STORE_SIZE: i64 = 20_000;

fn kv_store() -> Arc<KvStore> {
    let kv = Arc::new(KvStore::with_latency(LatencyModel {
        per_request_ns: 25_000,
        per_tuple_ns: 100,
        per_byte_ns: 1,
        per_scan_ns: 0,
    }));
    for i in 0..STORE_SIZE {
        kv.put(
            "profiles",
            Value::Int(i),
            &[Value::str(format!("user{i}")), Value::Int(i % 97)],
        );
    }
    kv
}

struct KvBind(Arc<KvStore>);
impl BindSource for KvBind {
    fn out_columns(&self) -> Vec<String> {
        vec!["name".into(), "score".into()]
    }
    fn fetch(&self, key: &[Value]) -> Vec<Tuple> {
        self.0.get("profiles", &key[0]).into_iter().collect()
    }
    fn fetch_batch(&self, keys: &[Vec<Value>]) -> Vec<Vec<Tuple>> {
        // Pipelined MGET: one simulated round-trip for the whole batch.
        let flat: Vec<Value> = keys.iter().map(|k| k[0].clone()).collect();
        self.0
            .mget("profiles", &flat)
            .into_iter()
            .map(|hit| hit.into_iter().collect())
            .collect()
    }
    fn label(&self) -> String {
        "kv profiles".into()
    }
}

fn left_batch(probes: i64) -> RowBatch {
    RowBatch::new(
        vec!["uid".into()],
        (0..probes).map(|i| vec![Value::Int(i * 3)]).collect(),
    )
}

fn bindjoin_plan(kv: Arc<KvStore>, probes: i64) -> Plan {
    Plan::BindJoin {
        left: Box::new(Plan::Values(left_batch(probes))),
        key_cols: vec![0],
        source: Arc::new(KvBind(kv)),
    }
}

/// Strawman: fetch the whole namespace (admin scan, one request per 1000
/// records to model pagination) and hash-join locally.
fn ship_all_plan(kv: Arc<KvStore>, probes: i64) -> Plan {
    let all: Vec<Tuple> = kv
        .scan("profiles")
        .into_iter()
        .map(|(k, mut v)| {
            let mut row = vec![k];
            row.append(&mut v);
            row
        })
        .collect();
    // Model the transfer cost of shipping the full namespace.
    let latency = LatencyModel {
        per_request_ns: 25_000,
        per_tuple_ns: 100,
        per_byte_ns: 1,
        per_scan_ns: 0,
    };
    let rows = all.len() as u64;
    let bytes: u64 = all
        .iter()
        .map(|r| r.iter().map(Value::approx_size).sum::<usize>() as u64)
        .sum();
    let shipped = Plan::Delegated {
        label: "kv full scan".into(),
        runner: Arc::new(move || {
            latency.charge(rows, bytes, rows);
            Ok(RowBatch::new(
                vec!["k".into(), "name".into(), "score".into()],
                all.clone(),
            ))
        }),
    };
    Plan::HashJoin {
        left: Box::new(Plan::Values(left_batch(probes))),
        right: Box::new(shipped),
        left_keys: vec![0],
        right_keys: vec![0],
    }
}

fn bench(c: &mut Criterion) {
    let kv = kv_store();

    println!("== M2 summary ==");
    for probes in [10i64, 100, 1000] {
        let bj = bindjoin_plan(kv.clone(), probes);
        let sa = ship_all_plan(kv.clone(), probes);
        let (rb, sb) = execute(&bj).unwrap();
        let (ra, ss) = execute(&sa).unwrap();
        assert_eq!(rb.len(), ra.len(), "strategies disagree");
        println!(
            "probes={probes}: bindjoin {:?} ({} probes) vs ship-all {:?}",
            sb.total_time, sb.bind_probes, ss.total_time
        );
    }

    let mut group = c.benchmark_group("m2_bindjoin");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for probes in [10i64, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("bindjoin", probes), &probes, |b, &p| {
            let plan = bindjoin_plan(kv.clone(), p);
            b.iter(|| execute(&plan).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ship_all", probes), &probes, |b, &p| {
            let plan = ship_all_plan(kv.clone(), p);
            b.iter(|| execute(&plan).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
