//! E7 — incremental EGD normalization: merge-heavy chase time with the
//! incremental occurrence-index rewrite ([`Instance::merge`]) vs the
//! O(instance) full-rebuild baseline (`Instance::merge_full_rebuild`).
//!
//! The workload (shared with the differential merge suite through
//! `testkit::egd_merge_instance`) is a functional dependency firing
//! `keys × (dups − 1)` merges over an instance padded with ballast facts
//! the merges never touch: the full rebuild re-walks the ballast on every
//! merge (quadratic overall), the incremental path only rewrites the two
//! facts per merge. Both drivers run the identical trigger/merge schedule
//! and the end states are asserted equal before any timing is reported.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada_chase::testkit::egd_merge_instance;
use estocada_chase::{chase, find_homs, ChaseConfig, Elem, HomConfig, Instance};
use estocada_pivot::{Constraint, Egd, Term};
use std::collections::HashMap;
use std::time::Duration;

/// A minimal EGD-only chase loop, generic over the merge strategy: find the
/// FD's trigger homomorphisms, merge every equality, repeat to fixpoint.
/// Identical schedules for both strategies — the one variable is the merge.
fn egd_chase(inst: &mut Instance, fd: &Egd, full_rebuild: bool) -> usize {
    let mut merges = 0;
    loop {
        let homs = find_homs(inst, &fd.premise, &HashMap::new(), HomConfig::default());
        let mut changed = false;
        for h in homs {
            let resolve = |t: &Term, inst: &Instance| match t {
                Term::Const(v) => Elem::constant(v),
                Term::Var(v) => inst.resolve(&h.map[v]),
            };
            let a = resolve(&fd.equal.0, inst);
            let b = resolve(&fd.equal.1, inst);
            let merged = if full_rebuild {
                inst.merge_full_rebuild(&a, &b).unwrap()
            } else {
                inst.merge(&a, &b).unwrap()
            };
            if merged {
                merges += 1;
                changed = true;
            }
        }
        if !changed {
            return merges;
        }
    }
}

fn same_state(a: &Instance, b: &Instance) -> bool {
    let dump = |i: &Instance| -> Vec<(u32, String, u64)> {
        i.fact_ids()
            .map(|id| (id, i.format_fact(id), i.fact_epoch(id)))
            .collect()
    };
    a.len() == b.len() && dump(a) == dump(b)
}

fn bench(c: &mut Criterion) {
    println!("== E7 summary (incremental merge vs full-rebuild baseline) ==");
    for (keys, dups, ballast) in [
        (20usize, 4usize, 1_000usize),
        (40, 4, 4_000),
        (60, 5, 8_000),
    ] {
        let (inst, fd) = egd_merge_instance(keys, dups, ballast);

        let mut inc = inst.clone();
        let t = std::time::Instant::now();
        let m1 = egd_chase(&mut inc, &fd, false);
        let t_inc = t.elapsed();

        let mut full = inst.clone();
        let t = std::time::Instant::now();
        let m2 = egd_chase(&mut full, &fd, true);
        let t_full = t.elapsed();

        assert_eq!(m1, m2, "merge schedules diverged");
        assert!(
            same_state(&inc, &full),
            "incremental and full-rebuild end states differ"
        );

        // The production chase loop on the same workload (incremental path).
        let mut prod = inst.clone();
        let constraint: Constraint = fd.clone().into();
        let t = std::time::Instant::now();
        let stats = chase(
            &mut prod,
            std::slice::from_ref(&constraint),
            &ChaseConfig::default(),
        )
        .unwrap();
        let t_chase = t.elapsed();
        assert!(same_state(&prod, &inc), "chase() end state differs");

        let speedup = t_full.as_secs_f64() / t_inc.as_secs_f64().max(1e-12);
        println!(
            "keys={keys} dups={dups} ballast={ballast}: {m1} merges — incremental {t_inc:?}, \
             full-rebuild {t_full:?} ({speedup:.1}x), chase() {t_chase:?} \
             ({} egd_merges, {} rounds)",
            stats.egd_merges, stats.rounds
        );
    }

    let mut group = c.benchmark_group("e7_egd_merge");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (keys, dups, ballast) in [(20usize, 4usize, 1_000usize), (40, 4, 4_000)] {
        let (inst, fd) = egd_merge_instance(keys, dups, ballast);
        let label = format!("{keys}x{dups}+{ballast}");
        group.bench_with_input(
            BenchmarkId::new("incremental", &label),
            &(inst.clone(), fd.clone()),
            |b, (inst, fd)| {
                b.iter(|| {
                    let mut work = inst.clone();
                    egd_chase(&mut work, fd, false)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_rebuild", &label),
            &(inst, fd),
            |b, (inst, fd)| {
                b.iter(|| {
                    let mut work = inst.clone();
                    egd_chase(&mut work, fd, true)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
