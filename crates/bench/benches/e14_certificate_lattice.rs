//! E14 — the certificate lattice: what each rung costs to certify, and
//! what the stratified executor buys over the budget-guarded whole-set
//! chase.
//!
//! Three questions are measured:
//!
//! - **certify cost per rung**: `certify` over one representative
//!   constraint family per lattice rung (weakly acyclic, super-weakly
//!   acyclic, stratified, non-terminating, unknown). Each measurement
//!   asserts the family still certifies at its rung — a lattice
//!   regression fails the bench instead of its numbers.
//! - **guarded vs certified stratified chase**: the whole-set chase under
//!   the default budget guard against the stratum-by-stratum chase with
//!   per-stratum certificates lifting the guard. **Fixpoint identity is
//!   asserted inside every measurement** on (insertion id, resolved
//!   fact); the per-fact round epoch is executor bookkeeping.
//! - **the key-EGD upgrade** (the acceptance pin's bench twin, test twin
//!   in `analyzer_scenarios`): the kv-migrated marketplace deployment
//!   mixes declared-key EGDs with view TGDs — the shape the pre-lattice
//!   analyzer degraded to `Unknown`. EGD-aware contraction certifies it
//!   `WeaklyAcyclic`, and the budget-free chase of the deployment's own
//!   constraint set must reproduce the guarded fixpoint bit-identically,
//!   asserted every run.

use criterion::{criterion_group, criterion_main, Criterion};
use estocada::{Estocada, Latencies};
use estocada_chase::testkit::dump_state;
use estocada_chase::{
    certify, chase, chase_stratified, ChaseConfig, Elem, Instance, TerminationCertificate,
};
use estocada_pivot::{Atom, Constraint, Egd, Symbol, Term, Tgd};
use estocada_workloads::marketplace::{generate, MarketplaceConfig};
use estocada_workloads::scenarios::deploy_kv_migrated;
use std::time::{Duration, Instant};

/// Weakly acyclic: an existential chain `L_i(x, y) → ∃z. L_{i+1}(y, z)`.
fn wa_family(k: usize) -> Vec<Constraint> {
    (0..k)
        .map(|i| {
            Tgd::new(
                format!("chain{i}").as_str(),
                vec![Atom::new(
                    format!("L{i}").as_str(),
                    vec![Term::var(0), Term::var(1)],
                )],
                vec![Atom::new(
                    format!("L{}", i + 1).as_str(),
                    vec![Term::var(1), Term::var(2)],
                )],
            )
            .into()
        })
        .collect()
}

/// Super-weakly acyclic: `Sw_i(x, x) → ∃y. Sw_i(x, y)` — a special
/// self-edge in the plain graph whose null can never reach the premise.
fn swa_family(k: usize) -> Vec<Constraint> {
    (0..k)
        .map(|i| {
            let r = format!("Sw{i}");
            Tgd::new(
                format!("swa{i}").as_str(),
                vec![Atom::new(r.as_str(), vec![Term::var(0), Term::var(0)])],
                vec![Atom::new(r.as_str(), vec![Term::var(0), Term::var(1)])],
            )
            .into()
        })
        .collect()
}

/// Stratified: feeder TGDs whose nulls an EGD pins across positions, so
/// contraction closes a cycle but the firing graph is acyclic.
fn stratified_family(k: usize) -> Vec<Constraint> {
    let mut cs: Vec<Constraint> = Vec::new();
    for i in 0..k {
        let a = format!("Af{i}");
        let b = format!("Bf{i}");
        cs.push(
            Tgd::new(
                format!("feed{i}").as_str(),
                vec![Atom::new(a.as_str(), vec![Term::var(0)])],
                vec![Atom::new(b.as_str(), vec![Term::var(0), Term::var(1)])],
            )
            .into(),
        );
        cs.push(
            Egd::new(
                format!("pin{i}").as_str(),
                vec![
                    Atom::new(b.as_str(), vec![Term::var(0), Term::var(1)]),
                    Atom::new(a.as_str(), vec![Term::var(0)]),
                ],
                (Term::var(1), Term::var(0)),
            )
            .into(),
        );
    }
    cs
}

/// Non-terminating: the divergent pair `T → ∃ U`, `U → ∃ T`.
fn divergent_family() -> Vec<Constraint> {
    vec![
        Tgd::new(
            "cyc_fwd",
            vec![Atom::new("T", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("U", vec![Term::var(1), Term::var(2)])],
        )
        .into(),
        Tgd::new(
            "cyc_bwd",
            vec![Atom::new("U", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("T", vec![Term::var(1), Term::var(2)])],
        )
        .into(),
    ]
}

/// Unknown: contraction closes a cycle *and* the firing graph is one SCC.
fn unknown_family() -> Vec<Constraint> {
    vec![
        Tgd::new(
            "t",
            vec![Atom::new("A", vec![Term::var(0)])],
            vec![Atom::new("B", vec![Term::var(0), Term::var(1)])],
        )
        .into(),
        Tgd::new(
            "t2",
            vec![Atom::new("B", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("A", vec![Term::var(0)])],
        )
        .into(),
        Egd::new(
            "e",
            vec![Atom::new("B", vec![Term::var(0), Term::var(1)])],
            (Term::var(0), Term::var(1)),
        )
        .into(),
    ]
}

fn best_of<F: FnMut() -> Duration>(n: usize, mut f: F) -> Duration {
    (0..n).map(|_| f()).min().unwrap()
}

/// `(insertion id, resolved fact)` — the fixpoint modulo round epochs.
fn facts(i: &Instance) -> Vec<(u32, String)> {
    dump_state(i)
        .into_iter()
        .map(|(id, f, _, _)| (id, f))
        .collect()
}

fn bench(c: &mut Criterion) {
    const K: usize = 8;
    let families: Vec<(&str, Vec<Constraint>, &str)> = vec![
        ("weakly acyclic", wa_family(K), "weakly acyclic"),
        (
            "super-weakly acyclic",
            swa_family(K),
            "super-weakly acyclic",
        ),
        ("stratified", stratified_family(K), "stratified"),
        ("non-terminating", divergent_family(), "non-terminating"),
        ("unknown", unknown_family(), "unknown"),
    ];
    println!("== E14 summary (families of ~{K} constraints per rung) ==");
    for (name, cs, rung) in &families {
        let t = best_of(5, || {
            let t0 = Instant::now();
            let cert = certify(cs);
            let dt = t0.elapsed();
            assert_eq!(cert.rung(), *rung, "{name}: lattice regression");
            dt
        });
        println!("certify[{name}]: {t:?} ({} constraints)", cs.len());
    }

    // --- guarded whole-set vs certified stratified chase -------------
    let strat_cs = stratified_family(K);
    let strat_cert = certify(&strat_cs);
    assert_eq!(strat_cert.rung(), "stratified");
    let seed = || {
        let mut inst = Instance::new();
        for i in 0..K {
            for row in 0..16i64 {
                inst.insert(Symbol::intern(&format!("Af{i}")), vec![Elem::of(row)]);
            }
        }
        inst
    };
    let reference = {
        let mut inst = seed();
        chase(&mut inst, &strat_cs, &ChaseConfig::default()).expect("reference chase");
        facts(&inst)
    };
    let run_guarded = || {
        let mut inst = seed();
        let t0 = Instant::now();
        chase(&mut inst, &strat_cs, &ChaseConfig::default()).expect("guarded chase");
        let dt = t0.elapsed();
        assert_eq!(facts(&inst), reference, "guarded fixpoint drifted");
        dt
    };
    let run_stratified = || {
        let mut inst = seed();
        let t0 = Instant::now();
        chase_stratified(&mut inst, &strat_cs, &ChaseConfig::default(), &strat_cert)
            .expect("stratified chase");
        let dt = t0.elapsed();
        assert_eq!(
            facts(&inst),
            reference,
            "stratified executor must reach the identical fixpoint"
        );
        dt
    };
    let t_guarded = best_of(5, run_guarded);
    let t_strat = best_of(5, run_stratified);
    println!(
        "chase (stratified family, {} constraints, {}-row seeds): guarded whole-set \
         {t_guarded:?} vs certified stratified {t_strat:?} (identical fixpoint asserted every run)",
        strat_cs.len(),
        16
    );

    // --- the key-EGD upgrade on a builtin deployment -----------------
    let m = generate(MarketplaceConfig {
        users: 60,
        products: 30,
        orders: 200,
        log_entries: 400,
        skew: 0.8,
        seed: 12,
    });
    let est: Estocada = deploy_kv_migrated(&m, Latencies::zero());
    let cert = est.termination_certificate();
    assert!(
        matches!(cert, TerminationCertificate::WeaklyAcyclic { .. }),
        "key EGDs must not degrade the builtin deployment: {cert}"
    );
    let cs = est.constraint_set();
    let deploy_seed = || {
        let mut inst = Instance::new();
        for uid in 0..8i64 {
            inst.insert(
                Symbol::intern("Users"),
                vec![Elem::of(uid), Elem::of(100 + uid), Elem::of(1i64)],
            );
            inst.insert(
                Symbol::intern("Prefs"),
                vec![
                    Elem::of(uid),
                    Elem::of(200 + uid),
                    Elem::of(300 + uid),
                    Elem::of(uid % 2),
                ],
            );
            inst.insert(
                Symbol::intern("Orders"),
                vec![
                    Elem::of(500 + uid),
                    Elem::of(uid),
                    Elem::of(700 + uid),
                    Elem::of(800 + uid),
                    Elem::of(2 * uid),
                ],
            );
        }
        inst
    };
    let guarded_cfg = ChaseConfig::default();
    let free_cfg = guarded_cfg.with_certificate(&cert);
    assert_eq!(free_cfg.max_rounds, usize::MAX, "certificate lifts budget");
    let deploy_reference = {
        let mut inst = deploy_seed();
        chase(&mut inst, &cs, &guarded_cfg).expect("reference chase");
        dump_state(&inst)
    };
    let run_deploy = |cfg: &ChaseConfig| {
        let mut inst = deploy_seed();
        let t0 = Instant::now();
        chase(&mut inst, &cs, cfg).expect("deployment chase");
        let dt = t0.elapsed();
        assert_eq!(
            dump_state(&inst),
            deploy_reference,
            "budget-free run must reach the bit-identical fixpoint"
        );
        dt
    };
    let t_dep_guarded = best_of(5, || run_deploy(&guarded_cfg));
    let t_dep_free = best_of(5, || run_deploy(&free_cfg));
    println!(
        "chase (kv-migrated deployment set, {} constraints incl. key EGDs): guarded \
         {t_dep_guarded:?} vs certified budget-free {t_dep_free:?} (bit-identical, asserted)",
        cs.len()
    );

    // --- criterion arms ----------------------------------------------
    let mut group = c.benchmark_group("e14_certificate_lattice");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (name, cs, rung) in &families {
        let id = format!("certify/{}", name.replace(' ', "_"));
        group.bench_function(id.as_str(), |b| {
            b.iter(|| {
                let cert = certify(cs);
                assert_eq!(cert.rung(), *rung, "lattice regression");
                cert
            })
        });
    }
    group.bench_function("chase_guarded_whole_set", |b| b.iter(run_guarded));
    group.bench_function("chase_certified_stratified", |b| b.iter(run_stratified));
    group.bench_function("deployment_chase_guarded", |b| {
        b.iter(|| run_deploy(&guarded_cfg))
    });
    group.bench_function("deployment_chase_budget_free", |b| {
        b.iter(|| run_deploy(&free_cfg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
