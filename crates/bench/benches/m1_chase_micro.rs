//! M1 — chase-engine microbenchmark (supports E3): chase time vs instance
//! size and constraint mix, on the document-model constraint set
//! (transitivity TGDs + functional-dependency EGDs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estocada_chase::{chase, ChaseConfig, Elem, Instance};
use estocada_pivot::encoding::document::DocRelations;
use estocada_pivot::{Constraint, Value};
use std::time::Duration;

/// A forest of `docs` documents, each a chain of `depth` nodes — the chase
/// must derive the full descendant closure (depth² per doc).
fn doc_instance(docs: u64, depth: u64) -> (Instance, Vec<Constraint>) {
    let rels = DocRelations::for_collection("M1");
    let mut inst = Instance::new();
    let mut next_id = 0u64;
    for d in 0..docs {
        let root = next_id;
        next_id += 1;
        inst.insert(
            rels.root,
            vec![Elem::of(Value::Id(d)), Elem::of(Value::Id(root))],
        );
        let mut prev = root;
        for i in 0..depth {
            let node = next_id;
            next_id += 1;
            inst.insert(
                rels.child,
                vec![Elem::of(Value::Id(prev)), Elem::of(Value::Id(node))],
            );
            inst.insert(
                rels.node,
                vec![
                    Elem::of(Value::Id(node)),
                    Elem::of(Value::str(format!("tag{i}"))),
                ],
            );
            prev = node;
        }
    }
    (inst, rels.constraints())
}

fn bench(c: &mut Criterion) {
    println!("== M1 summary ==");
    for (docs, depth) in [(20u64, 6u64), (50, 8), (100, 10)] {
        let (inst, constraints) = doc_instance(docs, depth);
        let before = inst.len();
        let mut work = inst.clone();
        let t = std::time::Instant::now();
        let stats = chase(&mut work, &constraints, &ChaseConfig::default()).unwrap();
        println!(
            "docs={docs} depth={depth}: {} → {} facts, {} TGD fires, {} rounds in {:?}",
            before,
            work.len(),
            stats.tgd_fires,
            stats.rounds,
            t.elapsed()
        );
    }

    let mut group = c.benchmark_group("m1_chase_micro");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (docs, depth) in [(20u64, 6u64), (50, 8)] {
        let (inst, constraints) = doc_instance(docs, depth);
        group.bench_with_input(
            BenchmarkId::new("doc_closure", format!("{docs}x{depth}")),
            &(inst, constraints),
            |b, (inst, constraints)| {
                b.iter(|| {
                    let mut work = inst.clone();
                    chase(&mut work, constraints, &ChaseConfig::default()).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
