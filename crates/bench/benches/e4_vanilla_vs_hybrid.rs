//! E4 — §IV demo step 3: "comparing performance between the vanilla
//! (one-store) execution and the one enabled by multiple stores", on the
//! Big Data Benchmark queries Q1 (scan/filter), Q2 (aggregation) and Q3
//! (join), with per-query statistics split across the DMSs and the
//! ESTOCADA runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use estocada::{Estocada, FragmentSpec, Latencies, QueryResult};
use estocada_engine::{execute, AggFun, AggSpec, Expr, Plan, RowBatch};
use estocada_pivot::CqBuilder;
use estocada_workloads::bigdata::{generate, q1_sql, q2_fetch_sql, q3_sql, BigDataConfig};
use std::time::Duration;

fn config() -> BigDataConfig {
    BigDataConfig {
        pages: 1_500,
        visits: 15_000,
        seed: 7,
    }
}

/// Vanilla: everything in the relational store.
fn vanilla(cfg: BigDataConfig) -> Estocada {
    let mut est = Estocada::new(Latencies::datacenter());
    est.register_dataset(generate(cfg)).unwrap();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "bigdata".into(),
        only: None,
    })
    .unwrap();
    est
}

/// Hybrid: relational tables PLUS parallel-store fragments (UserVisits for
/// bulk scans, the Rankings⋈UserVisits join materialized) — ESTOCADA picks
/// per query.
fn hybrid(cfg: BigDataConfig) -> Estocada {
    let mut est = vanilla(cfg);
    est.add_fragment(FragmentSpec::ParRows {
        view: CqBuilder::new("VisitsPar")
            .head_vars(["vid", "sourceIP", "destURL", "visitDate", "adRevenue"])
            .atom("UserVisits", |a| {
                a.v("vid")
                    .v("sourceIP")
                    .v("destURL")
                    .v("visitDate")
                    .v("adRevenue")
                    .v("cc")
                    .v("dur")
            })
            .build(),
        index_on: vec![],
        partitions: 0,
    })
    .unwrap();
    est.add_fragment(FragmentSpec::ParRows {
        view: CqBuilder::new("RankVisits")
            .head_vars(["vid", "sourceIP", "adRevenue", "visitDate", "pageRank"])
            .atom("Rankings", |a| a.v("url").v("pageRank").v("avg"))
            .atom("UserVisits", |a| {
                a.v("vid")
                    .v("sourceIP")
                    .v("url")
                    .v("visitDate")
                    .v("adRevenue")
                    .v("cc")
                    .v("dur")
            })
            .build(),
        index_on: vec![],
        partitions: 0,
    })
    .unwrap();
    est
}

/// Q2's aggregation (SUBSTR(sourceIP, 1, 7), SUM(adRevenue)) runs in the
/// mediator runtime over the fetched conjunctive core.
fn q2_aggregate(r: &QueryResult) -> (usize, Duration) {
    let batch = RowBatch {
        columns: r.columns.clone(),
        rows: r.rows.clone(),
    };
    let ip_col = batch.column_index("v.sourceIP").expect("sourceIP column");
    let rev_col = batch.column_index("v.adRevenue").expect("adRevenue column");
    let plan = Plan::Aggregate {
        input: Box::new(Plan::Project {
            input: Box::new(Plan::Values(batch)),
            exprs: vec![
                (
                    "prefix".into(),
                    Expr::Prefix(Box::new(Expr::col(ip_col)), 7),
                ),
                ("rev".into(), Expr::col(rev_col)),
            ],
        }),
        group_by: vec![0],
        aggs: vec![AggSpec {
            fun: AggFun::Sum,
            col: 1,
            name: "sum_rev".into(),
        }],
    };
    let (out, stats) = execute(&plan).unwrap();
    (out.len(), stats.total_time)
}

struct QueryRun {
    exec: Duration,
    rows: usize,
    systems: String,
}

fn run_q(est: &mut Estocada, sql: &str, aggregate: bool) -> QueryRun {
    let r = est.query_sql(sql).expect("query failed");
    let mut exec = r.report.exec.total_time;
    let mut rows = r.rows.len();
    if aggregate {
        let (groups, agg_time) = q2_aggregate(&r);
        exec += agg_time;
        rows = groups;
    }
    let systems: Vec<String> = r
        .report
        .per_store
        .iter()
        .filter(|(_, m)| m.requests > 0)
        .map(|(s, m)| format!("{s}({} req, {} out)", m.requests, m.tuples_out))
        .collect();
    QueryRun {
        exec,
        rows,
        systems: systems.join(" + "),
    }
}

fn bench(c: &mut Criterion) {
    let cfg = config();
    let queries: Vec<(&str, String, bool)> = vec![
        ("Q1 scan (pageRank > 2000)", q1_sql(2_000), false),
        ("Q2 aggregation", q2_fetch_sql(), true),
        (
            "Q3 join (date range)",
            q3_sql(19_900_000, 20_100_000),
            false,
        ),
    ];

    println!("== E4 summary: vanilla (one store) vs ESTOCADA hybrid ==");
    let mut v = vanilla(cfg);
    let mut h = hybrid(cfg);
    for (name, sql, agg) in &queries {
        // Warm both.
        run_q(&mut v, sql, *agg);
        run_q(&mut h, sql, *agg);
        let rv = run_q(&mut v, sql, *agg);
        let rh = run_q(&mut h, sql, *agg);
        println!("{name}:");
        println!(
            "  vanilla: {:?} ({} rows) via {}",
            rv.exec, rv.rows, rv.systems
        );
        println!(
            "  hybrid:  {:?} ({} rows) via {}",
            rh.exec, rh.rows, rh.systems
        );
        println!(
            "  hybrid/vanilla: {:.2}x",
            rv.exec.as_secs_f64() / rh.exec.as_secs_f64().max(1e-12)
        );
        assert_eq!(rv.rows, rh.rows, "{name}: configurations disagree");
    }

    let mut group = c.benchmark_group("e4_vanilla_vs_hybrid");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    for (name, sql, agg) in &queries {
        let label = name.split_whitespace().next().unwrap().to_lowercase();
        group.bench_function(format!("{label}_vanilla"), |b| {
            let mut est = vanilla(cfg);
            run_q(&mut est, sql, *agg);
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += run_q(&mut est, sql, *agg).exec;
                }
                total
            })
        });
        group.bench_function(format!("{label}_hybrid"), |b| {
            let mut est = hybrid(cfg);
            run_q(&mut est, sql, *agg);
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += run_q(&mut est, sql, *agg).exec;
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
