//! Benchmark helper crate; see benches/.
