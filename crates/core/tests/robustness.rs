//! Failure-injection and edge-case tests of the mediator: malformed
//! queries, untranslatable rewritings, empty datasets, unicode payloads,
//! and error surfacing.

use estocada::{Dataset, DocData, Error, Estocada, FragmentSpec, TableData};
use estocada_pivot::encoding::document::{PatternStep, TreePattern};
use estocada_pivot::encoding::relational::TableEncoding;
use estocada_pivot::{CqBuilder, Value};

fn tiny() -> Estocada {
    let mut est = Estocada::in_memory();
    est.register_dataset(Dataset::relational(
        "d",
        vec![TableData {
            encoding: TableEncoding::new("T", &["k", "v"], Some(&["k"])),
            rows: vec![
                vec![Value::Int(1), Value::str("héllo wörld")],
                vec![Value::Int(2), Value::str("")],
            ],
            text_columns: vec![],
        }],
    ))
    .unwrap();
    est
}

#[test]
fn parse_errors_are_reported_not_panicked() {
    let est = tiny();
    for bad in [
        "",
        "SELECT",
        "SELECT x FROM T t",                            // unqualified column
        "SELECT t.k FROM T",                            // missing alias
        "SELECT t.k FROM T t WHERE t.k =",              // dangling operator
        "SELECT t.k FROM T t WHERE t.k ~ 1",            // unknown operator
        "SELECT t.k FROM T t WHERE CONTAINS(t.v, 'x')", // no text columns
    ] {
        let r = est.query_sql(bad);
        assert!(
            matches!(r, Err(Error::Parse(_)) | Err(Error::UnknownName(_))),
            "expected parse/name error for {bad:?}, got {r:?}"
        );
    }
}

#[test]
fn unknown_fragment_drop_errors() {
    let mut est = tiny();
    assert!(matches!(
        est.drop_fragment("nope"),
        Err(Error::UnknownName(_))
    ));
}

#[test]
fn empty_dataset_round_trips() {
    let mut est = Estocada::in_memory();
    est.register_dataset(Dataset::relational(
        "empty",
        vec![TableData {
            encoding: TableEncoding::new("E", &["a"], Some(&["a"])),
            rows: vec![],
            text_columns: vec![],
        }],
    ))
    .unwrap();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "empty".into(),
        only: None,
    })
    .unwrap();
    let r = est.query_sql("SELECT e.a FROM E e").unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn unicode_and_empty_strings_survive_all_stores() {
    let mut est = tiny();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "d".into(),
        only: None,
    })
    .unwrap();
    est.add_fragment(FragmentSpec::KeyValue {
        view: CqBuilder::new("TKV")
            .head_vars(["k", "v"])
            .atom("T", |a| a.v("k").v("v"))
            .build(),
    })
    .unwrap();
    let r = est.query_sql("SELECT t.v FROM T t WHERE t.k = 1").unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("héllo wörld")]]);
    assert!(r.report.delegated[0].starts_with("key-value:"));
    let r = est.query_sql("SELECT t.v FROM T t WHERE t.k = 2").unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("")]]);
}

#[test]
fn doc_pattern_against_relational_dataset_has_no_rewriting() {
    let mut est = tiny();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "d".into(),
        only: None,
    })
    .unwrap();
    // Pattern over a non-existent document collection: the pivot atoms
    // reference unknown relations, so no view can cover them.
    let pattern = TreePattern::new("Ghost").with_step(PatternStep::child("user").bind("u"));
    let r = est.query_doc(&pattern, &["u"]);
    assert!(matches!(r, Err(Error::NoRewriting { .. })), "got {r:?}");
}

#[test]
fn duplicate_fragment_view_names_panic_cleanly() {
    let mut est = tiny();
    est.add_fragment(FragmentSpec::KeyValue {
        view: CqBuilder::new("DupKV")
            .head_vars(["k", "v"])
            .atom("T", |a| a.v("k").v("v"))
            .build(),
    })
    .unwrap();
    // Registering the same relation name twice is a programming error the
    // catalog refuses loudly.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = est.add_fragment(FragmentSpec::KeyValue {
            view: CqBuilder::new("DupKV")
                .head_vars(["k", "v"])
                .atom("T", |a| a.v("k").v("v"))
                .build(),
        });
    }));
    assert!(result.is_err());
}

#[test]
fn deep_document_nesting_is_encoded_and_queried() {
    let mut est = Estocada::in_memory();
    // 6 levels of nesting.
    let mut body = Value::object([("leaf", Value::Int(42))]);
    for i in (0..6).rev() {
        body = Value::object_owned([(format!("level{i}"), body)]);
    }
    est.register_dataset(Dataset::documents(
        "Deep",
        vec![DocData {
            id: Value::Id(0),
            name: "deep".into(),
            body,
        }],
    ))
    .unwrap();
    est.add_fragment(FragmentSpec::NativeDoc {
        dataset: "Deep".into(),
    })
    .unwrap();
    let pattern = TreePattern::new("Deep").with_step(PatternStep::descendant("leaf").bind("x"));
    let r = est.query_doc(&pattern, &["x"]).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(42)]]);
}

#[test]
fn residual_on_projected_away_variable_is_untranslatable() {
    use estocada::{ResOp, Residual};
    let mut est = tiny();
    est.add_fragment(FragmentSpec::KeyValue {
        view: CqBuilder::new("OnlyK")
            .head_vars(["k"])
            .atom("T", |a| a.v("k").v("v"))
            .build(),
    })
    .unwrap();
    // Query: T(k, v) with k=1, asking k, but residual on v — the only
    // fragment projects v away, so every rewriting fails translation or
    // rewriting entirely.
    let q = CqBuilder::new("Q")
        .head_vars(["k"])
        .atom("T", |a| a.v("k").v("v"))
        .build();
    let v_var = q.body[0].args[1].as_var().unwrap();
    let r = est.query_cq(
        q,
        vec!["k".into()],
        vec![Residual {
            var: v_var,
            op: ResOp::Gt,
            value: Value::Int(0),
        }],
    );
    assert!(r.is_err(), "got {r:?}");
}

#[test]
fn query_over_two_datasets_in_one_sql() {
    // The pivot schema is global: FROM may mix tables of different
    // datasets (the GAV-combination case of §III handled natively).
    let mut est = tiny();
    est.register_dataset(Dataset::relational(
        "d2",
        vec![TableData {
            encoding: TableEncoding::new("U", &["k", "w"], Some(&["k"])),
            rows: vec![vec![Value::Int(1), Value::Int(100)]],
            text_columns: vec![],
        }],
    ))
    .unwrap();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "d".into(),
        only: None,
    })
    .unwrap();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "d2".into(),
        only: None,
    })
    .unwrap();
    let r = est
        .query_sql("SELECT t.v, u.w FROM T t, U u WHERE t.k = u.k")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][1], Value::Int(100));
}

#[test]
fn advisor_budget_limits_recommendations() {
    use estocada::advisor::{recommend_under_budget, Action, WorkloadQuery};
    let mut est = tiny();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "d".into(),
        only: None,
    })
    .unwrap();
    let catalog = est.sql_catalog();
    let p = estocada::frontends::parse_sql("SELECT t.v FROM T t WHERE t.k = 1", &catalog).unwrap();
    let workload = vec![WorkloadQuery {
        name: "w".into(),
        cq: p.cq,
        head_names: p.head_names,
        residuals: p.residuals,
        weight: 100.0,
    }];
    // Generous budget: the candidate fits.
    let recs = recommend_under_budget(&est, &workload, 1_000_000).unwrap();
    assert!(recs.iter().any(|r| matches!(r.action, Action::Add(_))));
    // Zero budget: only drop suggestions can remain.
    let recs = recommend_under_budget(&est, &workload, 0).unwrap();
    assert!(recs.iter().all(|r| matches!(r.action, Action::Drop(_))));
}
