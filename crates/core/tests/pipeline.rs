//! End-to-end pipeline tests: datasets → fragments → native queries →
//! PACB rewriting → translation → execution, checked against the
//! ground-truth oracle.

use estocada::{Dataset, DocData, Estocada, FragmentSpec, TableData};
use estocada_pivot::encoding::document::{PatternStep, TreePattern};
use estocada_pivot::encoding::relational::TableEncoding;
use estocada_pivot::{CqBuilder, Value};

fn marketplace() -> Estocada {
    let mut est = Estocada::in_memory();
    est.register_dataset(Dataset::relational(
        "sales",
        vec![
            TableData {
                encoding: TableEncoding::new("Users", &["uid", "name", "tier"], Some(&["uid"])),
                rows: (0..50)
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            Value::str(format!("user{i}")),
                            Value::str(if i % 5 == 0 { "gold" } else { "free" }),
                        ]
                    })
                    .collect(),
                text_columns: vec![],
            },
            TableData {
                encoding: TableEncoding::new(
                    "Orders",
                    &["oid", "uid", "sku", "total"],
                    Some(&["oid"]),
                ),
                rows: (0..200)
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            Value::Int(i % 50),
                            Value::str(format!("sku{}", i % 20)),
                            Value::Int((i * 7) % 100),
                        ]
                    })
                    .collect(),
                text_columns: vec![],
            },
            TableData {
                encoding: TableEncoding::new("Products", &["pid", "title"], Some(&["pid"])),
                rows: vec![
                    vec![Value::Int(1), Value::str("Wireless Mouse Pro")],
                    vec![Value::Int(2), Value::str("Mechanical Keyboard")],
                    vec![Value::Int(3), Value::str("Wireless Keyboard Combo")],
                ],
                text_columns: vec!["title".into()],
            },
        ],
    ))
    .unwrap();
    est.register_dataset(Dataset::documents(
        "Carts",
        (0..30)
            .map(|i| DocData {
                id: Value::Id(i),
                name: format!("cart{i}"),
                body: Value::object_owned([
                    ("user".to_string(), Value::Int(i as i64 % 50)),
                    (
                        "items".to_string(),
                        Value::array(
                            (0..(i % 4))
                                .map(|j| Value::object([("sku", Value::str(format!("sku{j}")))])),
                        ),
                    ),
                ]),
            })
            .collect(),
    ))
    .unwrap();
    est
}

#[test]
fn sql_point_query_over_native_tables() {
    let mut est = marketplace();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "sales".into(),
        only: None,
    })
    .unwrap();
    let r = est
        .query_sql("SELECT u.name FROM Users u WHERE u.uid = 7")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("user7")]]);
    assert_eq!(r.columns, vec!["u.name"]);
    // The whole query was delegated to the relational store.
    assert_eq!(r.report.delegated.len(), 1);
    assert!(r.report.delegated[0].starts_with("relational:"));
}

#[test]
fn sql_join_delegated_as_one_block() {
    let mut est = marketplace();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "sales".into(),
        only: None,
    })
    .unwrap();
    let r = est
        .query_sql(
            "SELECT u.name, o.total FROM Users u, Orders o \
             WHERE u.uid = o.uid AND u.tier = 'gold' AND o.total > 50",
        )
        .unwrap();
    // Oracle: DISTINCT (name, total) of orders of gold users with
    // total > 50 (the pivot model has set semantics).
    let expected: std::collections::HashSet<(i64, i64)> = (0..200i64)
        .filter(|i| (i % 50) % 5 == 0 && (i * 7) % 100 > 50)
        .map(|i| (i % 50, (i * 7) % 100))
        .collect();
    assert_eq!(r.rows.len(), expected.len());
    assert_eq!(r.report.delegated.len(), 1, "largest delegable subquery");
}

#[test]
fn kv_fragment_wins_for_point_lookups() {
    let mut est = marketplace();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "sales".into(),
        only: None,
    })
    .unwrap();
    est.add_fragment(FragmentSpec::KeyValue {
        view: CqBuilder::new("UserKV")
            .head_vars(["uid", "name", "tier"])
            .atom("Users", |a| a.v("uid").v("name").v("tier"))
            .build(),
    })
    .unwrap();
    let r = est
        .query_sql("SELECT u.name FROM Users u WHERE u.uid = 7")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("user7")]]);
    // Both rewritings considered; the KV one must win on cost.
    assert!(r.report.alternatives.len() >= 2);
    assert!(
        r.report.delegated[0].starts_with("key-value:"),
        "expected the key-value fragment to win, got {:?}",
        r.report.delegated
    );
    // And the KV store actually served it.
    let kv = r
        .report
        .per_store
        .iter()
        .find(|(s, _)| *s == estocada::SystemId::KeyValue)
        .unwrap();
    assert_eq!(kv.1.requests, 1);
}

#[test]
fn doc_pattern_query_over_native_documents() {
    let mut est = marketplace();
    est.add_fragment(FragmentSpec::NativeDoc {
        dataset: "Carts".into(),
    })
    .unwrap();
    let pattern = TreePattern::new("Carts").with_step(
        PatternStep::child("user").eq(Value::Int(7)), // sku values live under items/$item/sku; descendant reaches them.
    );
    let pattern = {
        let mut p = pattern;
        p.steps.push(PatternStep::descendant("sku").bind("s"));
        p
    };
    let r = est.query_doc(&pattern, &["s"]).unwrap();
    // Cart 7 has 7 % 4 = 3 items: sku0, sku1, sku2.
    let mut skus: Vec<String> = r
        .rows
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string())
        .collect();
    skus.sort();
    assert_eq!(skus, vec!["sku0", "sku1", "sku2"]);
    assert!(r.report.delegated[0].starts_with("document: TREE-QUERY"));
}

#[test]
fn cross_model_join_runs_in_mediator_runtime() {
    let mut est = marketplace();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "sales".into(),
        only: None,
    })
    .unwrap();
    est.add_fragment(FragmentSpec::NativeDoc {
        dataset: "Carts".into(),
    })
    .unwrap();
    // Pivot query joining relational Users with document Carts on user id.
    let q = {
        let mut next = 0u32;
        let pattern = TreePattern::new("Carts")
            .with_step(PatternStep::child("user").bind("u"))
            .with_step(PatternStep::descendant("sku").bind("s"));
        let (mut atoms, bindings) = pattern.to_atoms(&mut next);
        let u_var = bindings[0].1.clone();
        let s_var = bindings[1].1.clone();
        // Users(u, name, 'gold')
        let name_var = estocada_pivot::Term::var(next);
        atoms.push(estocada_pivot::Atom::new(
            "Users",
            vec![
                u_var,
                name_var.clone(),
                estocada_pivot::Term::constant("gold"),
            ],
        ));
        estocada_pivot::Cq::new("CrossQ", vec![name_var, s_var], atoms)
    };
    let r = est
        .query_cq(q, vec!["name".into(), "sku".into()], vec![])
        .unwrap();
    // Oracle: carts of gold users (uid % 5 == 0, uid < 30) with i % 4 > 0 items.
    let expected: usize = (0..30u64)
        .filter(|i| (i % 50) % 5 == 0)
        .map(|i| (i % 4) as usize)
        .sum();
    assert_eq!(r.rows.len(), expected);
    // Two systems participated.
    assert!(r.report.delegated.len() >= 2);
}

#[test]
fn full_text_contains_query() {
    let mut est = marketplace();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "sales".into(),
        only: None,
    })
    .unwrap();
    est.add_fragment(FragmentSpec::TextIndex {
        table: "Products".into(),
    })
    .unwrap();
    let r = est
        .query_sql("SELECT p.title FROM Products p WHERE CONTAINS(p.title, 'wireless')")
        .unwrap();
    let mut titles: Vec<String> = r
        .rows
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string())
        .collect();
    titles.sort();
    assert_eq!(
        titles,
        vec!["Wireless Keyboard Combo", "Wireless Mouse Pro"]
    );
    assert!(r
        .report
        .delegated
        .iter()
        .any(|l| l.starts_with("text: SEARCH")));
}

#[test]
fn no_rewriting_without_fragments() {
    let est = marketplace();
    let r = est.query_sql("SELECT u.name FROM Users u WHERE u.uid = 7");
    assert!(matches!(r, Err(estocada::Error::NoRewriting { .. })));
}

#[test]
fn kv_only_catalog_cannot_answer_scans() {
    let mut est = marketplace();
    est.add_fragment(FragmentSpec::KeyValue {
        view: CqBuilder::new("UserKV2")
            .head_vars(["uid", "name", "tier"])
            .atom("Users", |a| a.v("uid").v("name").v("tier"))
            .build(),
    })
    .unwrap();
    // Point lookup: fine.
    assert!(est
        .query_sql("SELECT u.name FROM Users u WHERE u.uid = 3")
        .is_ok());
    // Full scan: infeasible under the access pattern.
    let r = est.query_sql("SELECT u.name FROM Users u");
    assert!(r.is_err());
}

#[test]
fn drop_fragment_changes_plans() {
    let mut est = marketplace();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "sales".into(),
        only: None,
    })
    .unwrap();
    let kv_id = est
        .add_fragment(FragmentSpec::KeyValue {
            view: CqBuilder::new("UserKV3")
                .head_vars(["uid", "name", "tier"])
                .atom("Users", |a| a.v("uid").v("name").v("tier"))
                .build(),
        })
        .unwrap();
    let r1 = est
        .query_sql("SELECT u.name FROM Users u WHERE u.uid = 7")
        .unwrap();
    assert!(r1.report.delegated[0].starts_with("key-value:"));
    est.drop_fragment(&kv_id).unwrap();
    let r2 = est
        .query_sql("SELECT u.name FROM Users u WHERE u.uid = 7")
        .unwrap();
    assert!(r2.report.delegated[0].starts_with("relational:"));
    assert_eq!(r1.rows, r2.rows);
}

#[test]
fn materialized_join_fragment_answers_join_query() {
    let mut est = marketplace();
    // Only the materialized join fragment is available: the rewriting must
    // go through it (single indexed parallel lookup).
    est.add_fragment(FragmentSpec::ParRows {
        view: CqBuilder::new("UserOrders")
            .head_vars(["uid", "name", "sku", "total"])
            .atom("Users", |a| a.v("uid").v("name").v("tier"))
            .atom("Orders", |a| a.v("oid").v("uid").v("sku").v("total"))
            .build(),
        index_on: vec!["uid".into()],
        partitions: 2,
    })
    .unwrap();
    let r = est
        .query_sql(
            "SELECT u.name, o.total FROM Users u, Orders o WHERE u.uid = o.uid AND u.uid = 7",
        )
        .unwrap();
    // Distinct (name, total) pairs for user 7: orders 7,57,107,157 give
    // totals 49,99,49,99 → two distinct pairs under set semantics.
    assert_eq!(r.rows.len(), 2);
    assert!(
        r.report.delegated[0].starts_with("parallel: LOOKUP"),
        "got {:?}",
        r.report.delegated
    );
}

#[test]
fn explain_reports_alternatives_without_executing() {
    let mut est = marketplace();
    est.add_fragment(FragmentSpec::NativeTables {
        dataset: "sales".into(),
        only: None,
    })
    .unwrap();
    let before = est.stores.rel.metrics.snapshot().requests;
    let report = est
        .explain_sql("SELECT u.name FROM Users u WHERE u.uid = 7")
        .unwrap();
    assert!(!report.alternatives.is_empty());
    assert!(report.plan.contains("Delegated"));
    assert_eq!(est.stores.rel.metrics.snapshot().requests, before);
}
