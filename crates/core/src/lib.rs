//! # estocada
//!
//! A reproduction of **ESTOCADA** (Bugiotti et al., ICDE 2016): a flexible
//! hybrid-store mediator that stores one application dataset as a set of
//! possibly overlapping fragments across heterogeneous DMSs — relational,
//! key-value, document, full-text, parallel nested-relational — while the
//! application keeps querying in the native language of each dataset.
//!
//! Internally every fragment is a materialized view described in a
//! relational pivot model with constraints; query answering is view-based
//! rewriting with the provenance-aware Chase & Backchase (`estocada-chase`),
//! translated back into native subqueries per store plus a residual plan
//! executed by the nested-relational runtime (`estocada-engine`).
//!
//! Entry point: [`Estocada`].

#![warn(missing_docs)]

pub mod advisor;
pub mod analyze;
pub mod catalog;
pub mod connector;
pub mod cost;
pub mod dataset;
pub mod dml;
pub mod error;
pub mod evaluator;
pub mod frontends;
pub mod materialize;
pub mod plancache;
pub mod report;
pub mod resilience;
pub mod system;
pub mod translate;

pub use advisor::{recommend, recommend_under_budget, Action, Recommendation, WorkloadQuery};
pub use analyze::{Code, Diagnostic, Severity, ValidationMode};
pub use catalog::{Catalog, FragmentMeta, FragmentSpec};
pub use connector::{ResOp, Residual};
pub use cost::CostModel;
pub use dataset::{Dataset, DatasetContent, DocData, TableData};
pub use dml::{DmlReport, FragmentDelta, MaintenanceState};
pub use error::{Error, PlanFailure, Result};
pub use evaluator::{Estocada, QueryOptions, QueryRequest};
pub use plancache::{EpochCache, LintCache, PlanCache, PlanCacheStats};
pub use report::{PlanCacheActivity, QueryResult, Report};
pub use resilience::{
    BackendHealth, BreakerConfig, BreakerState, BreakerTransition, HealthTracker, PlanAttempt,
    QueryResilience, ResilienceReport, RetryPolicy,
};
pub use system::{Latencies, Stores, SystemId};

pub use estocada_simkit::{
    FaultKind, FaultPlan, FaultRule, Injection, SimClock, StoreError, StoreErrorKind,
};
