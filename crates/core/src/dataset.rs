//! Application datasets: the logical data the application works with, in
//! its native data model. ESTOCADA stores datasets *only* as fragments; the
//! registered content here is the staging source for fragment
//! materialization (and the ground truth oracle in tests).

use estocada_pivot::encoding::document::DocRelations;
use estocada_pivot::encoding::relational::TableEncoding;
use estocada_pivot::{Fact, IdGen, Schema, Symbol, Value};
use estocada_textstore::tokenize;

/// One relational table of a dataset: declaration + rows + optional text
/// columns (tokenized into a `{table}_Terms(term, key)` source relation, the
/// pivot view of full-text search over the table).
#[derive(Debug, Clone)]
pub struct TableData {
    /// Table encoding (name, columns, key).
    pub encoding: TableEncoding,
    /// Row data.
    pub rows: Vec<Vec<Value>>,
    /// Columns whose text participates in full-text search.
    pub text_columns: Vec<String>,
}

impl TableData {
    /// Tokenized `{table}_Terms(term, key)` facts of one row — empty when
    /// the table declares no text columns. Shared by full-content encoding
    /// ([`Dataset::pivot_facts`]) and the incremental DML fact-delta
    /// computation, so the two can never drift.
    pub fn term_facts(&self, row: &[Value]) -> Vec<Fact> {
        if self.text_columns.is_empty() {
            return Vec::new();
        }
        let rel = Dataset::terms_relation(&self.encoding.relation.as_str());
        let key = self
            .encoding
            .key
            .as_ref()
            .and_then(|k| k.first())
            .and_then(|k| self.encoding.columns.iter().position(|c| c == k))
            .map(|k| row[k].clone())
            .unwrap_or(Value::Null);
        let mut out = Vec::new();
        for tc in &self.text_columns {
            let Some(pos) = self.encoding.columns.iter().position(|c| c == tc) else {
                continue;
            };
            if let Some(text) = row[pos].as_str() {
                for term in tokenize(text) {
                    out.push(Fact::new(rel, vec![Value::str(&term), key.clone()]));
                }
            }
        }
        out
    }

    /// All pivot facts one row contributes: the base tuple plus its term
    /// facts. The unit of incremental DML maintenance — deleting or
    /// inserting a row changes exactly these facts' multiplicities.
    pub fn row_facts(&self, row: &[Value]) -> Vec<Fact> {
        let mut out = vec![self.encoding.encode_row(row.to_vec())];
        out.extend(self.term_facts(row));
        out
    }
}

/// One document of a document dataset.
#[derive(Debug, Clone)]
pub struct DocData {
    /// Document id (application-level key).
    pub id: Value,
    /// Document name.
    pub name: String,
    /// Document body (object/array tree).
    pub body: Value,
}

/// Dataset content in its native model.
#[derive(Debug, Clone)]
pub enum DatasetContent {
    /// Relational dataset: a set of tables.
    Relational(Vec<TableData>),
    /// Document dataset: one collection of documents.
    Documents(Vec<DocData>),
}

/// A named application dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name; document datasets use it as the encoding prefix.
    pub name: String,
    /// Content.
    pub content: DatasetContent,
}

impl Dataset {
    /// Relational dataset constructor.
    pub fn relational(name: &str, tables: Vec<TableData>) -> Dataset {
        Dataset {
            name: name.to_string(),
            content: DatasetContent::Relational(tables),
        }
    }

    /// Document dataset constructor.
    pub fn documents(name: &str, docs: Vec<DocData>) -> Dataset {
        Dataset {
            name: name.to_string(),
            content: DatasetContent::Documents(docs),
        }
    }

    /// The document-encoding relation names (document datasets only).
    pub fn doc_relations(&self) -> Option<DocRelations> {
        match &self.content {
            DatasetContent::Documents(_) => Some(DocRelations::for_collection(&self.name)),
            DatasetContent::Relational(_) => None,
        }
    }

    /// The `{table}_Terms` relation name for a text-searchable table.
    pub fn terms_relation(table: &str) -> Symbol {
        Symbol::intern(&format!("{table}_Terms"))
    }

    /// Declare this dataset's pivot relations and model constraints into
    /// `schema`.
    pub fn declare(&self, schema: &mut Schema) {
        match &self.content {
            DatasetContent::Relational(tables) => {
                for t in tables {
                    t.encoding.declare(schema);
                    if !t.text_columns.is_empty() {
                        // Terms(term, key): derived source relation for
                        // full-text predicates over this table.
                        schema.add_relation(estocada_pivot::RelationDecl::new(
                            Self::terms_relation(&t.encoding.relation.as_str()),
                            &["term", "key"],
                        ));
                    }
                }
            }
            DatasetContent::Documents(_) => {
                self.doc_relations()
                    .expect("document dataset")
                    .declare(schema);
            }
        }
    }

    /// Encode the full content as pivot ground facts (used by fragment
    /// materialization). Node ids are drawn from `ids`.
    pub fn pivot_facts(&self, ids: &mut IdGen) -> Vec<Fact> {
        let mut out = Vec::new();
        match &self.content {
            DatasetContent::Relational(tables) => {
                // Base tuples of a table first, then its term facts — the
                // same fact order a row-at-a-time encoding would interleave
                // differently, so keep the two passes distinct.
                for t in tables {
                    for row in &t.rows {
                        out.push(t.encoding.encode_row(row.clone()));
                    }
                    for row in &t.rows {
                        out.extend(t.term_facts(row));
                    }
                }
            }
            DatasetContent::Documents(docs) => {
                let rels = self.doc_relations().expect("document dataset");
                for d in docs {
                    rels.encode_document(d.id.clone(), &d.name, &d.body, ids, &mut out);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_dataset() -> Dataset {
        Dataset::relational(
            "sales",
            vec![TableData {
                encoding: TableEncoding::new(
                    "Products",
                    &["pid", "title", "price"],
                    Some(&["pid"]),
                ),
                rows: vec![
                    vec![Value::Int(1), Value::str("Wireless Mouse"), Value::Int(20)],
                    vec![Value::Int(2), Value::str("USB Keyboard"), Value::Int(30)],
                ],
                text_columns: vec!["title".to_string()],
            }],
        )
    }

    #[test]
    fn relational_declaration_includes_terms_relation() {
        let d = rel_dataset();
        let mut s = Schema::new();
        d.declare(&mut s);
        assert!(s.relation(Symbol::intern("Products")).is_some());
        assert!(s.relation(Symbol::intern("Products_Terms")).is_some());
    }

    #[test]
    fn relational_facts_include_tokenized_terms() {
        let d = rel_dataset();
        let mut ids = IdGen::new();
        let facts = d.pivot_facts(&mut ids);
        let terms: Vec<&Fact> = facts
            .iter()
            .filter(|f| f.pred == Symbol::intern("Products_Terms"))
            .collect();
        assert!(terms
            .iter()
            .any(|f| f.args[0] == Value::str("mouse") && f.args[1] == Value::Int(1)));
        assert!(terms
            .iter()
            .any(|f| f.args[0] == Value::str("usb") && f.args[1] == Value::Int(2)));
    }

    #[test]
    fn document_dataset_encodes_trees() {
        let d = Dataset::documents(
            "Carts",
            vec![DocData {
                id: Value::Id(1),
                name: "cart1".into(),
                body: Value::object([("user", Value::Int(7))]),
            }],
        );
        let mut s = Schema::new();
        d.declare(&mut s);
        let rels = d.doc_relations().unwrap();
        assert!(s.relation(rels.child).is_some());
        let mut ids = IdGen::new();
        let facts = d.pivot_facts(&mut ids);
        assert!(facts.iter().any(|f| f.pred == rels.val));
    }
}
