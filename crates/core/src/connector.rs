//! Per-DMS connectors: translate a group of rewriting atoms that live in a
//! single fragment/store into a native query, packaged as an executable
//! *unit* — either a `Delegated` plan leaf (runs eagerly) or a
//! [`BindSource`] (probed by BindJoin when the fragment has an access
//! pattern).

use crate::catalog::{DocRole, FragmentRelation, FragmentStats, WhereSpec};
use crate::error::{Error, Result};
use crate::system::{Stores, SystemId};
use estocada_docstore::{DocQuery, QueryNode};
use estocada_engine::{BindSource, RowBatch, StoreError, Tuple};
use estocada_pivot::{Atom, Term, Value, Var};
use estocada_relstore::{CmpOp as RelOp, ColRef, Pred, SqlQuery};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of a fallible store call (the crate-level [`Result`] alias
/// carries [`Error`], so store-error results spell their type out).
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// Column name carrying variable `v` through engine plans.
pub fn var_col(v: Var) -> String {
    format!("?{}", v.0)
}

/// Comparison operators of residual predicates (the non-equality
/// conditions that ride along the conjunctive rewriting core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<>`
    Ne,
}

impl ResOp {
    /// Relational-store operator.
    pub fn to_rel(self) -> RelOp {
        match self {
            ResOp::Lt => RelOp::Lt,
            ResOp::Le => RelOp::Le,
            ResOp::Gt => RelOp::Gt,
            ResOp::Ge => RelOp::Ge,
            ResOp::Ne => RelOp::Ne,
        }
    }

    /// Parallel-store operator (`<>` is not delegable there).
    pub fn to_par(self) -> Option<estocada_parstore::ParOp> {
        use estocada_parstore::ParOp;
        match self {
            ResOp::Lt => Some(ParOp::Lt),
            ResOp::Le => Some(ParOp::Le),
            ResOp::Gt => Some(ParOp::Gt),
            ResOp::Ge => Some(ParOp::Ge),
            ResOp::Ne => None,
        }
    }

    /// Engine operator.
    pub fn to_engine(self) -> estocada_engine::CmpOp {
        use estocada_engine::CmpOp;
        match self {
            ResOp::Lt => CmpOp::Lt,
            ResOp::Le => CmpOp::Le,
            ResOp::Gt => CmpOp::Gt,
            ResOp::Ge => CmpOp::Ge,
            ResOp::Ne => CmpOp::Ne,
        }
    }
}

/// A residual comparison `var op constant`.
#[derive(Debug, Clone)]
pub struct Residual {
    /// The compared variable.
    pub var: Var,
    /// Operator.
    pub op: ResOp,
    /// Constant.
    pub value: Value,
}

/// Tracks which residual predicates were pushed into delegated units; the
/// rest run as a runtime filter on top of the plan.
#[derive(Debug, Default)]
pub struct ResidualTracker {
    /// All residuals of the query.
    pub items: Vec<Residual>,
    used: Vec<bool>,
}

impl ResidualTracker {
    /// Track `items`.
    pub fn new(items: Vec<Residual>) -> ResidualTracker {
        let used = vec![false; items.len()];
        ResidualTracker { items, used }
    }

    /// Mark residual `i` as pushed down.
    pub fn mark_used(&mut self, i: usize) {
        self.used[i] = true;
    }

    /// Residuals not yet pushed down, with their indices.
    pub fn remaining(&self) -> Vec<(usize, Residual)> {
        self.items
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.used[*i])
            .map(|(i, r)| (i, r.clone()))
            .collect()
    }
}

/// An executable unit of a translated rewriting.
pub struct Unit {
    /// Display label (store + native query).
    pub label: String,
    /// Variables the unit outputs (for `Bind` units: *excluding* inputs).
    pub out_vars: Vec<Var>,
    /// Variables that must be bound before the unit can run.
    pub inputs: Vec<Var>,
    /// Executable form.
    pub kind: UnitKind,
    /// Estimated output cardinality.
    pub est_rows: f64,
    /// Estimated tuples scanned inside the store (0 for point accesses).
    pub est_scanned: f64,
    /// The store the unit runs on.
    pub system: SystemId,
}

/// Executable form of a unit.
pub enum UnitKind {
    /// Runs standalone (free access). The runner is fallible: a store
    /// failure propagates as [`StoreError`] instead of decaying to an
    /// empty row set.
    Run(Arc<dyn Fn() -> StoreResult<RowBatch> + Send + Sync>),
    /// Must be probed with bound inputs.
    Bind(Arc<dyn BindSource>),
}

/// Bind `terms` against `values` under pre-bound `pre`; returns the values
/// of `out_vars` when constants match and repeated variables agree.
fn bind_row(
    terms: &[Term],
    values: &[Value],
    pre: &HashMap<Var, Value>,
    out_vars: &[Var],
) -> Option<Vec<Value>> {
    debug_assert_eq!(terms.len(), values.len());
    let mut local: HashMap<Var, &Value> = HashMap::new();
    for (t, v) in terms.iter().zip(values) {
        match t {
            Term::Const(c) => {
                if c != v {
                    return None;
                }
            }
            Term::Var(var) => {
                if let Some(p) = pre.get(var) {
                    if p != v {
                        return None;
                    }
                } else if let Some(prev) = local.get(var) {
                    if *prev != v {
                        return None;
                    }
                } else {
                    local.insert(*var, v);
                }
            }
        }
    }
    Some(
        out_vars
            .iter()
            .map(|v| (*local.get(v).expect("out var not bound by row")).clone())
            .collect(),
    )
}

/// Distinct variables of `atoms` in first-occurrence order.
pub fn atom_vars(atoms: &[Atom]) -> Vec<Var> {
    let mut seen = Vec::new();
    for a in atoms {
        for v in a.vars() {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
    }
    seen
}

fn batch_of(out_vars: &[Var], rows: Vec<Tuple>) -> RowBatch {
    RowBatch {
        columns: out_vars.iter().map(|v| var_col(*v)).collect(),
        rows,
    }
}

/// `true` when `terms` are pairwise-distinct variables — rows from the
/// store can then stream through unchanged (no per-row rebinding).
fn is_plain_var_pattern(terms: &[Term]) -> bool {
    let mut seen = std::collections::HashSet::new();
    terms.iter().all(|t| match t {
        Term::Var(v) => seen.insert(*v),
        Term::Const(_) => false,
    })
}

/// Decode the rows stored under one key-value key (the materializer packs
/// every value tuple of a key as one list — see `materialize`).
fn unpack_kv_rows(values: &[Value]) -> Vec<Vec<Value>> {
    match values {
        [Value::Array(rows)] => rows
            .iter()
            .filter_map(|r| r.as_array().map(<[Value]>::to_vec))
            .collect(),
        _ => vec![values.to_vec()],
    }
}

/// Selectivity helper: `1 / distinct` clamped sanely.
fn eq_selectivity(stats: &FragmentStats, col: usize) -> f64 {
    let d = stats.distinct.get(col).copied().unwrap_or(1).max(1);
    1.0 / d as f64
}

/// Build one SQL unit from relational-fragment atoms (the largest subquery
/// delegated to the relational store).
pub fn sql_unit(
    atoms: &[(Atom, FragmentRelation, FragmentStats)],
    residuals: &mut ResidualTracker,
    stores: &Stores,
) -> Result<Unit> {
    let mut q = SqlQuery::new();
    let mut var_ref: HashMap<Var, ColRef> = HashMap::new();
    let mut out_vars: Vec<Var> = Vec::new();
    let mut est = 1.0f64;
    let mut join_sel = 1.0f64;
    let mut est_scanned = 0.0f64;
    let mut has_const = false;
    for (atom, rel, stats) in atoms {
        let table = match &rel.place {
            WhereSpec::Table { table, .. } => table.clone(),
            other => {
                return Err(Error::Untranslatable(format!(
                    "atom {} is not table-placed: {other:?}",
                    atom.pred
                )))
            }
        };
        let t = q.add_table(&table);
        est *= stats.rows.max(1) as f64;
        est_scanned += stats.rows as f64;
        for (pos, term) in atom.args.iter().enumerate() {
            let cr = ColRef {
                table: t,
                column: pos,
            };
            match term {
                Term::Const(c) => {
                    q.predicates.push(Pred::ColConst(cr, RelOp::Eq, c.clone()));
                    est *= eq_selectivity(stats, pos);
                    has_const = true;
                }
                Term::Var(v) => {
                    if let Some(existing) = var_ref.get(v) {
                        q.predicates.push(Pred::ColCol(*existing, RelOp::Eq, cr));
                        join_sel *= eq_selectivity(stats, pos);
                    } else {
                        var_ref.insert(*v, cr);
                        out_vars.push(*v);
                    }
                }
            }
        }
    }
    // Push applicable residual comparisons into the delegated SQL.
    for (i, r) in residuals.remaining() {
        if let Some(cr) = var_ref.get(&r.var) {
            q.predicates
                .push(Pred::ColConst(*cr, r.op.to_rel(), r.value.clone()));
            residuals.mark_used(i);
            est *= 0.33; // textbook range selectivity
        }
    }
    for v in &out_vars {
        q.projection.push(var_ref[v]);
    }
    let label = format!("relational: {q}");
    let rel_store = stores.rel.clone();
    let ov = out_vars.clone();
    // A store failure must propagate — never decay to an empty row set.
    let runner = move || {
        let rows = rel_store.try_query(&q)?;
        Ok(batch_of(&ov, rows))
    };
    Ok(Unit {
        label,
        out_vars,
        inputs: Vec::new(),
        kind: UnitKind::Run(Arc::new(runner)),
        est_rows: (est * join_sel).max(0.0),
        // Keyed tables answer constant predicates through indexes.
        est_scanned: if has_const { 0.0 } else { est_scanned },
        system: SystemId::Relational,
    })
}

/// Build a key-value unit from one atom over a namespace-placed fragment.
/// A constant key delegates a point `get`; a variable key becomes a
/// BindJoin source.
pub fn kv_unit(
    atom: &Atom,
    rel: &FragmentRelation,
    stats: &FragmentStats,
    stores: &Stores,
) -> Result<Unit> {
    let namespace = match &rel.place {
        WhereSpec::Namespace { namespace, .. } => namespace.clone(),
        other => {
            return Err(Error::Untranslatable(format!(
                "kv atom placed at {other:?}"
            )))
        }
    };
    let kv = stores.kv.clone();
    let value_terms: Vec<Term> = atom.args[1..].to_vec();
    match &atom.args[0] {
        Term::Const(key) => {
            let out_vars = atom_vars(&[Atom::new(atom.pred, value_terms.clone())]);
            let label = format!("key-value: GET {namespace}[{key}]");
            let key = key.clone();
            let ov = out_vars.clone();
            let vt = value_terms.clone();
            let runner = move || {
                let rows = match kv.try_get(&namespace, &key)? {
                    Some(values) => unpack_kv_rows(&values)
                        .into_iter()
                        .filter_map(|cells| bind_row(&vt, &cells, &HashMap::new(), &ov))
                        .collect(),
                    None => Vec::new(),
                };
                Ok(batch_of(&ov, rows))
            };
            Ok(Unit {
                label,
                out_vars,
                inputs: Vec::new(),
                kind: UnitKind::Run(Arc::new(runner)),
                est_rows: 1.0,
                est_scanned: 0.0,
                system: SystemId::KeyValue,
            })
        }
        Term::Var(key_var) => {
            // Output vars: value-position vars other than the key var.
            let out_vars: Vec<Var> = atom_vars(&[Atom::new(atom.pred, value_terms.clone())])
                .into_iter()
                .filter(|v| v != key_var)
                .collect();
            let label = format!("key-value: GET {namespace}[?]");
            struct KvSource {
                kv: Arc<estocada_kvstore::KvStore>,
                namespace: String,
                key_var: Var,
                value_terms: Vec<Term>,
                out_vars: Vec<Var>,
                label: String,
            }
            impl KvSource {
                /// Decode one stored payload into bound output tuples.
                fn decode(&self, key: &Value, values: &[Value]) -> Vec<Tuple> {
                    let mut pre = HashMap::new();
                    pre.insert(self.key_var, key.clone());
                    unpack_kv_rows(values)
                        .into_iter()
                        .filter_map(|cells| {
                            bind_row(&self.value_terms, &cells, &pre, &self.out_vars)
                        })
                        .collect()
                }
            }
            impl BindSource for KvSource {
                fn out_columns(&self) -> Vec<String> {
                    self.out_vars.iter().map(|v| var_col(*v)).collect()
                }
                fn fetch(&self, key: &[Value]) -> Vec<Tuple> {
                    let Some(values) = self.kv.get(&self.namespace, &key[0]) else {
                        return Vec::new();
                    };
                    self.decode(&key[0], &values)
                }
                fn fetch_batch(&self, keys: &[Vec<Value>]) -> Vec<Vec<Tuple>> {
                    // Pipelined MGET: the whole probe batch costs one
                    // simulated round-trip instead of one per distinct key.
                    let flat: Vec<Value> = keys.iter().map(|k| k[0].clone()).collect();
                    self.kv
                        .mget(&self.namespace, &flat)
                        .into_iter()
                        .zip(keys)
                        .map(|(hit, key)| match hit {
                            Some(values) => self.decode(&key[0], &values),
                            None => Vec::new(),
                        })
                        .collect()
                }
                fn try_fetch(&self, key: &[Value]) -> StoreResult<Vec<Tuple>> {
                    Ok(match self.kv.try_get(&self.namespace, &key[0])? {
                        Some(values) => self.decode(&key[0], &values),
                        None => Vec::new(),
                    })
                }
                fn try_fetch_batch(&self, keys: &[Vec<Value>]) -> StoreResult<Vec<Vec<Tuple>>> {
                    let flat: Vec<Value> = keys.iter().map(|k| k[0].clone()).collect();
                    Ok(self
                        .kv
                        .try_mget(&self.namespace, &flat)?
                        .into_iter()
                        .zip(keys)
                        .map(|(hit, key)| match hit {
                            Some(values) => self.decode(&key[0], &values),
                            None => Vec::new(),
                        })
                        .collect())
                }
                fn label(&self) -> String {
                    self.label.clone()
                }
            }
            let src = KvSource {
                kv,
                namespace,
                key_var: *key_var,
                value_terms,
                out_vars: out_vars.clone(),
                label: label.clone(),
            };
            let _ = stats;
            Ok(Unit {
                label,
                out_vars,
                inputs: vec![*key_var],
                kind: UnitKind::Bind(Arc::new(src)),
                est_rows: 1.0,
                est_scanned: 0.0,
                system: SystemId::KeyValue,
            })
        }
    }
}

/// Build a full-text unit from one `Contains(term, key)` atom.
pub fn text_unit(
    atom: &Atom,
    rel: &FragmentRelation,
    stats: &FragmentStats,
    stores: &Stores,
) -> Result<Unit> {
    let index = match &rel.place {
        WhereSpec::TextIndex { index } => index.clone(),
        other => {
            return Err(Error::Untranslatable(format!(
                "text atom placed at {other:?}"
            )))
        }
    };
    let text = stores.text.clone();
    let key_term = atom.args[1].clone();
    let avg_postings = (stats.rows.max(1) as f64
        / stats.distinct.first().copied().unwrap_or(1).max(1) as f64)
        .max(1.0);
    match &atom.args[0] {
        Term::Const(term) => {
            let term_s = term
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| Error::Untranslatable("text search term must be a string".into()))?;
            let out_vars = match &key_term {
                Term::Var(v) => vec![*v],
                Term::Const(_) => vec![],
            };
            let label = format!("text: SEARCH {index} \"{term_s}\"");
            let ov = out_vars.clone();
            let kt = key_term.clone();
            let runner = move || {
                let keys = text.try_term_lookup(&index, &term_s)?;
                let rows: Vec<Tuple> = keys
                    .into_iter()
                    .filter_map(|k| bind_row(std::slice::from_ref(&kt), &[k], &HashMap::new(), &ov))
                    .collect();
                Ok(batch_of(&ov, rows))
            };
            Ok(Unit {
                label,
                out_vars,
                inputs: Vec::new(),
                kind: UnitKind::Run(Arc::new(runner)),
                est_rows: avg_postings,
                est_scanned: 0.0,
                system: SystemId::Text,
            })
        }
        Term::Var(term_var) => {
            let out_vars = match &key_term {
                Term::Var(v) if v != term_var => vec![*v],
                _ => vec![],
            };
            let label = format!("text: SEARCH {index} [bound term]");
            struct TextSource {
                text: Arc<estocada_textstore::TextStore>,
                index: String,
                key_term: Term,
                out_vars: Vec<Var>,
                label: String,
            }
            impl BindSource for TextSource {
                fn out_columns(&self) -> Vec<String> {
                    self.out_vars.iter().map(|v| var_col(*v)).collect()
                }
                fn fetch(&self, key: &[Value]) -> Vec<Tuple> {
                    let Some(term) = key[0].as_str() else {
                        return Vec::new();
                    };
                    self.text
                        .term_lookup(&self.index, term)
                        .into_iter()
                        .filter_map(|k| {
                            bind_row(
                                std::slice::from_ref(&self.key_term),
                                &[k],
                                &HashMap::new(),
                                &self.out_vars,
                            )
                        })
                        .collect()
                }
                fn try_fetch(&self, key: &[Value]) -> StoreResult<Vec<Tuple>> {
                    let Some(term) = key[0].as_str() else {
                        return Ok(Vec::new());
                    };
                    Ok(self
                        .text
                        .try_term_lookup(&self.index, term)?
                        .into_iter()
                        .filter_map(|k| {
                            bind_row(
                                std::slice::from_ref(&self.key_term),
                                &[k],
                                &HashMap::new(),
                                &self.out_vars,
                            )
                        })
                        .collect())
                }
                fn try_fetch_batch(&self, keys: &[Vec<Value>]) -> StoreResult<Vec<Vec<Tuple>>> {
                    keys.iter().map(|k| self.try_fetch(k)).collect()
                }
                fn label(&self) -> String {
                    self.label.clone()
                }
            }
            let src = TextSource {
                text,
                index,
                key_term,
                out_vars: out_vars.clone(),
                label: label.clone(),
            };
            Ok(Unit {
                label,
                out_vars,
                inputs: vec![*term_var],
                kind: UnitKind::Bind(Arc::new(src)),
                est_rows: avg_postings,
                est_scanned: 0.0,
                system: SystemId::Text,
            })
        }
    }
}

/// Build a document-store unit from one atom over a row-document fragment.
pub fn doc_rows_unit(
    atom: &Atom,
    rel: &FragmentRelation,
    stats: &FragmentStats,
    stores: &Stores,
) -> Result<Unit> {
    let (collection, columns) = match &rel.place {
        WhereSpec::Collection {
            collection,
            columns,
        } => (collection.clone(), columns.clone()),
        other => {
            return Err(Error::Untranslatable(format!(
                "doc atom placed at {other:?}"
            )))
        }
    };
    let mut filter = estocada_docstore::Filter::all();
    let mut est = stats.rows.max(1) as f64;
    let mut has_const = false;
    for (pos, term) in atom.args.iter().enumerate() {
        if let Term::Const(c) = term {
            filter = filter.eq(&columns[pos], c.clone());
            est *= eq_selectivity(stats, pos);
            has_const = true;
        }
    }
    let out_vars = atom_vars(std::slice::from_ref(atom));
    let label = format!("document: FIND {collection} {:?}", filter.clauses);
    let doc = stores.doc.clone();
    let ov = out_vars.clone();
    let terms = atom.args.clone();
    let runner = move || {
        let paths: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
        let docs = doc.try_find(&collection, &filter, Some(&paths))?;
        let rows: Vec<Tuple> = docs
            .into_iter()
            .filter_map(|d| {
                let values: Vec<Value> = columns
                    .iter()
                    .map(|c| d.get(c).cloned().unwrap_or(Value::Null))
                    .collect();
                bind_row(&terms, &values, &HashMap::new(), &ov)
            })
            .collect();
        Ok(batch_of(&ov, rows))
    };
    Ok(Unit {
        label,
        out_vars,
        inputs: Vec::new(),
        kind: UnitKind::Run(Arc::new(runner)),
        est_rows: est,
        est_scanned: if has_const { 0.0 } else { stats.rows as f64 },
        system: SystemId::Document,
    })
}

/// Build a parallel-store unit from one or two atoms over par-dataset
/// fragments (two atoms sharing a variable delegate a native parallel
/// join — the "largest delegable subquery" on Spark).
pub fn par_unit(
    atoms: &[(Atom, FragmentRelation, FragmentStats)],
    residuals: &mut ResidualTracker,
    stores: &Stores,
) -> Result<Unit> {
    match atoms {
        [one] => par_scan_unit(one, residuals, stores),
        [l, r] => par_join_unit(l, r, stores),
        _ => Err(Error::Untranslatable(
            "parallel units support at most two atoms".into(),
        )),
    }
}

fn par_place(rel: &FragmentRelation) -> Result<(String, Vec<String>, Vec<usize>)> {
    match &rel.place {
        WhereSpec::ParDataset {
            dataset,
            columns,
            indexed,
        } => Ok((dataset.clone(), columns.clone(), indexed.clone())),
        other => Err(Error::Untranslatable(format!(
            "par atom placed at {other:?}"
        ))),
    }
}

fn par_scan_unit(
    (atom, rel, stats): &(Atom, FragmentRelation, FragmentStats),
    residuals: &mut ResidualTracker,
    stores: &Stores,
) -> Result<Unit> {
    use estocada_parstore::{ColPred, ParOp};
    let (dataset, _columns, indexed) = par_place(rel)?;
    let mut preds = Vec::new();
    let mut est = stats.rows.max(1) as f64;
    let mut const_cols = Vec::new();
    for (pos, term) in atom.args.iter().enumerate() {
        if let Term::Const(c) = term {
            preds.push(ColPred {
                col: pos,
                op: ParOp::Eq,
                value: c.clone(),
            });
            const_cols.push(pos);
            est *= eq_selectivity(stats, pos);
        }
    }
    // Push applicable residual comparisons into the delegated scan.
    for (i, r) in residuals.remaining() {
        let Some(op) = r.op.to_par() else { continue };
        if let Some(pos) = atom.args.iter().position(|t| t.as_var() == Some(r.var)) {
            preds.push(ColPred {
                col: pos,
                op,
                value: r.value.clone(),
            });
            residuals.mark_used(i);
            est *= 0.33;
        }
    }
    // Use the key index when every indexed column is bound by a constant.
    let use_index = !indexed.is_empty() && indexed.iter().all(|c| const_cols.contains(c));
    let out_vars = atom_vars(std::slice::from_ref(atom));
    let label = if use_index {
        format!("parallel: LOOKUP {dataset} by key index")
    } else {
        format!("parallel: SCAN {dataset} ({} preds)", preds.len())
    };
    let par = stores.par.clone();
    let ov = out_vars.clone();
    let terms = atom.args.clone();
    let key: Vec<Value> = indexed
        .iter()
        .filter_map(|c| terms.get(*c).and_then(|t| t.as_const().cloned()))
        .collect();
    // Identity scans (distinct variables everywhere) stream rows through
    // without per-row rebinding; constants are already enforced by `preds`.
    let plain = is_plain_var_pattern(
        &terms
            .iter()
            .filter(|t| t.is_var())
            .cloned()
            .collect::<Vec<_>>(),
    );
    let var_positions: Vec<usize> = terms
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_var())
        .map(|(i, _)| i)
        .collect();
    let all_vars = var_positions.len() == terms.len();
    let runner = move || {
        let rows_raw = if use_index {
            par.try_lookup(&dataset, &key, &preds)?
        } else {
            par.try_scan(&dataset, &preds, None)?
        };
        let rows: Vec<Tuple> = if plain && all_vars {
            rows_raw
        } else if plain {
            rows_raw
                .into_iter()
                .map(|r| var_positions.iter().map(|i| r[*i].clone()).collect())
                .collect()
        } else {
            rows_raw
                .into_iter()
                .filter_map(|r| bind_row(&terms, &r, &HashMap::new(), &ov))
                .collect()
        };
        Ok(batch_of(&ov, rows))
    };
    Ok(Unit {
        label,
        out_vars,
        inputs: Vec::new(),
        kind: UnitKind::Run(Arc::new(runner)),
        est_rows: est,
        est_scanned: if use_index { 0.0 } else { stats.rows as f64 },
        system: SystemId::Parallel,
    })
}

fn par_join_unit(
    (latom, lrel, lstats): &(Atom, FragmentRelation, FragmentStats),
    (ratom, rrel, rstats): &(Atom, FragmentRelation, FragmentStats),
    stores: &Stores,
) -> Result<Unit> {
    let (lds, lcols, _) = par_place(lrel)?;
    let (rds, rcols, _) = par_place(rrel)?;
    // Join keys: shared variables.
    let lvars: Vec<Option<Var>> = latom.args.iter().map(Term::as_var).collect();
    let rvars: Vec<Option<Var>> = ratom.args.iter().map(Term::as_var).collect();
    let mut lkeys = Vec::new();
    let mut rkeys = Vec::new();
    for (li, lv) in lvars.iter().enumerate() {
        if let Some(lv) = lv {
            if let Some(ri) = rvars.iter().position(|rv| rv.as_ref() == Some(lv)) {
                lkeys.push(lcols[li].clone());
                rkeys.push(rcols[ri].clone());
            }
        }
    }
    if lkeys.is_empty() {
        return Err(Error::Untranslatable(
            "parallel join unit requires a shared variable".into(),
        ));
    }
    let mut combined_terms = latom.args.clone();
    combined_terms.extend(ratom.args.iter().cloned());
    let out_vars = atom_vars(&[latom.clone(), ratom.clone()]);
    let label = format!("parallel: JOIN {lds} ⋈ {rds} on {lkeys:?}");
    let par = stores.par.clone();
    let ov = out_vars.clone();
    // Joined rows need rebinding only when constants/repeated variables
    // appear beyond the join keys themselves; the join already enforced
    // key equality, so project the first occurrence of each variable.
    let var_first_pos: Vec<usize> = {
        let mut seen = std::collections::HashSet::new();
        combined_terms
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                Term::Var(v) => seen.insert(*v),
                Term::Const(_) => false,
            })
            .map(|(i, _)| i)
            .collect()
    };
    // Rebind when constants appear, or when a variable repeats *within*
    // one atom (the parallel join only enforces cross-atom key equality).
    let within_repeat = |atom: &Atom| {
        let mut seen = std::collections::HashSet::new();
        atom.args
            .iter()
            .filter_map(Term::as_var)
            .any(|v| !seen.insert(v))
    };
    let needs_bind = combined_terms.iter().any(|t| t.as_const().is_some())
        || within_repeat(latom)
        || within_repeat(ratom);
    let runner = move || {
        let lk: Vec<&str> = lkeys.iter().map(|s| s.as_str()).collect();
        let rk: Vec<&str> = rkeys.iter().map(|s| s.as_str()).collect();
        let rows_raw = par.try_join(&lds, &rds, &lk, &rk)?;
        let rows: Vec<Tuple> = if needs_bind {
            rows_raw
                .into_iter()
                .filter_map(|r| bind_row(&combined_terms, &r, &HashMap::new(), &ov))
                .collect()
        } else {
            rows_raw
                .into_iter()
                .map(|r| var_first_pos.iter().map(|i| r[*i].clone()).collect())
                .collect()
        };
        Ok(batch_of(&ov, rows))
    };
    let est = (lstats.rows.max(1) as f64 * rstats.rows.max(1) as f64)
        / lstats
            .distinct
            .first()
            .copied()
            .unwrap_or(1)
            .max(1)
            .max(rstats.distinct.first().copied().unwrap_or(1).max(1)) as f64;
    Ok(Unit {
        label,
        out_vars,
        inputs: Vec::new(),
        kind: UnitKind::Run(Arc::new(runner)),
        est_rows: est,
        est_scanned: (lstats.rows + rstats.rows) as f64,
        system: SystemId::Parallel,
    })
}

/// Build a native-document tree unit from a connected group of
/// document-encoding atoms: "it can be inferred that the atoms … refer to a
/// single document, by following the connections among nodes and knowledge
/// of the JSON data model".
pub fn doc_tree_unit(
    atoms: &[(Atom, FragmentRelation, FragmentStats)],
    stores: &Stores,
) -> Result<Unit> {
    let mut collection = None;
    let mut root_vars: Vec<Var> = Vec::new();
    let mut edges: Vec<(Var, Var, bool)> = Vec::new(); // (parent, child, is_desc)
    let mut tags: HashMap<Var, String> = HashMap::new();
    let mut val_eq: HashMap<Var, Value> = HashMap::new();
    let mut val_bind: Vec<(Var, Var)> = Vec::new(); // (node var, value var)
    let mut doc_count = 0f64;

    for (atom, rel, stats) in atoms {
        let role = match &rel.place {
            WhereSpec::NativeDocs {
                collection: c,
                role,
            } => {
                match &collection {
                    None => collection = Some(c.clone()),
                    Some(existing) if existing == c => {}
                    Some(_) => {
                        return Err(Error::Untranslatable(
                            "tree unit spans two collections".into(),
                        ))
                    }
                }
                *role
            }
            other => {
                return Err(Error::Untranslatable(format!(
                    "doc atom placed at {other:?}"
                )))
            }
        };
        doc_count = doc_count.max(stats.rows as f64);
        let var_at = |i: usize| -> Result<Var> {
            atom.args[i].as_var().ok_or_else(|| {
                Error::Untranslatable(format!("node position of {} must be a variable", atom.pred))
            })
        };
        match role {
            DocRole::Root => root_vars.push(var_at(1)?),
            DocRole::Doc => { /* names are not stored natively; ignore */ }
            DocRole::Child => edges.push((var_at(0)?, var_at(1)?, false)),
            DocRole::Desc => edges.push((var_at(0)?, var_at(1)?, true)),
            DocRole::Node => {
                let tag = atom.args[1]
                    .as_const()
                    .and_then(|c| c.as_str())
                    .ok_or_else(|| {
                        Error::Untranslatable("node tag must be a string constant".into())
                    })?;
                tags.insert(var_at(0)?, tag.to_string());
            }
            DocRole::Val => match &atom.args[1] {
                Term::Const(c) => {
                    val_eq.insert(var_at(0)?, c.clone());
                }
                Term::Var(v) => val_bind.push((var_at(0)?, *v)),
            },
        }
    }
    let collection =
        collection.ok_or_else(|| Error::Untranslatable("empty document unit".into()))?;
    if root_vars.is_empty() {
        return Err(Error::Untranslatable(
            "document pattern has no Root atom".into(),
        ));
    }
    // Build the pattern tree below the root variable(s).
    let mut by_parent: HashMap<Var, Vec<(Var, bool)>> = HashMap::new();
    let mut child_count: HashMap<Var, usize> = HashMap::new();
    for (p, c, d) in &edges {
        by_parent.entry(*p).or_default().push((*c, *d));
        *child_count.entry(*c).or_insert(0) += 1;
        if child_count[c] > 1 {
            return Err(Error::Untranslatable(
                "document pattern is not tree-shaped".into(),
            ));
        }
    }
    fn build(
        node: Var,
        desc: bool,
        by_parent: &HashMap<Var, Vec<(Var, bool)>>,
        tags: &HashMap<Var, String>,
        val_eq: &HashMap<Var, Value>,
        val_bind: &[(Var, Var)],
        out_vars: &mut Vec<Var>,
    ) -> Result<QueryNode> {
        let tag = tags
            .get(&node)
            .ok_or_else(|| Error::Untranslatable(format!("node {node} has no tag atom")))?;
        let mut qn = if desc {
            QueryNode::descendant(tag)
        } else {
            QueryNode::child(tag)
        };
        if let Some(c) = val_eq.get(&node) {
            qn = qn.eq(c.clone());
        }
        for (n, v) in val_bind {
            if *n == node {
                qn = qn.bind(&var_col(*v));
                out_vars.push(*v);
            }
        }
        for (child, d) in by_parent.get(&node).cloned().unwrap_or_default() {
            qn = qn.with(build(
                child, d, by_parent, tags, val_eq, val_bind, out_vars,
            )?);
        }
        Ok(qn)
    }
    let mut out_vars = Vec::new();
    let mut q = DocQuery::new(&collection);
    for root in &root_vars {
        for (child, d) in by_parent.get(root).cloned().unwrap_or_default() {
            q = q.with(build(
                child,
                d,
                &by_parent,
                &tags,
                &val_eq,
                &val_bind,
                &mut out_vars,
            )?);
        }
    }
    // Column order must follow the store's pre-order convention.
    let columns = q.columns();
    let ordered_vars: Vec<Var> = columns
        .iter()
        .map(|c| {
            out_vars
                .iter()
                .copied()
                .find(|v| var_col(*v) == *c)
                .expect("bound column lost")
        })
        .collect();
    let label = format!(
        "document: TREE-QUERY {collection} ({} steps)",
        q.roots.len()
    );
    let doc = stores.doc.clone();
    let ov = ordered_vars.clone();
    let runner = move || {
        let (_cols, rows) = doc.try_query(&q)?;
        Ok(batch_of(&ov, rows))
    };
    // A top-level equality makes the store's path index applicable.
    let indexed = !val_eq.is_empty();
    Ok(Unit {
        label,
        out_vars: ordered_vars,
        inputs: Vec::new(),
        kind: UnitKind::Run(Arc::new(runner)),
        est_rows: doc_count.max(1.0),
        est_scanned: if indexed { 0.0 } else { doc_count },
        system: SystemId::Document,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_row_checks_constants_and_repeats() {
        let terms = vec![Term::constant(1i64), Term::var(0), Term::var(0)];
        let ok = bind_row(
            &terms,
            &[Value::Int(1), Value::Int(5), Value::Int(5)],
            &HashMap::new(),
            &[Var(0)],
        );
        assert_eq!(ok, Some(vec![Value::Int(5)]));
        // Repeated var mismatch.
        assert!(bind_row(
            &terms,
            &[Value::Int(1), Value::Int(5), Value::Int(6)],
            &HashMap::new(),
            &[Var(0)],
        )
        .is_none());
        // Constant mismatch.
        assert!(bind_row(
            &terms,
            &[Value::Int(2), Value::Int(5), Value::Int(5)],
            &HashMap::new(),
            &[Var(0)],
        )
        .is_none());
    }

    #[test]
    fn bind_row_respects_pre_bound_vars() {
        let terms = vec![Term::var(0), Term::var(1)];
        let mut pre = HashMap::new();
        pre.insert(Var(0), Value::Int(9));
        assert!(bind_row(&terms, &[Value::Int(8), Value::Int(1)], &pre, &[Var(1)]).is_none());
        assert_eq!(
            bind_row(&terms, &[Value::Int(9), Value::Int(1)], &pre, &[Var(1)]),
            Some(vec![Value::Int(1)])
        );
    }

    #[test]
    fn atom_vars_first_occurrence_order() {
        let a1 = Atom::new("R", vec![Term::var(3), Term::var(1)]);
        let a2 = Atom::new("S", vec![Term::var(1), Term::var(2)]);
        assert_eq!(atom_vars(&[a1, a2]), vec![Var(3), Var(1), Var(2)]);
    }
}
