//! Mini-SQL frontend: conjunctive SELECT-FROM-WHERE blocks (plus
//! `CONTAINS` full-text predicates), translated into the pivot model.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query    := SELECT sel (',' sel)* FROM tbl (',' tbl)* [WHERE cond (AND cond)*]
//! sel      := alias '.' column
//! tbl      := table alias
//! cond     := ref op (const | ref)
//!           | CONTAINS '(' alias '.' column ',' string ')'
//! op       := '=' | '<>' | '<' | '<=' | '>' | '>='
//! const    := integer | float | string
//! ```
//!
//! Equality conditions fold into the conjunctive query (variable
//! unification / constants in atoms); other comparisons become residual
//! predicates carried alongside the rewriting.

use crate::connector::{ResOp, Residual};
use crate::error::{Error, Result};
use estocada_pivot::{Atom, Cq, Symbol, Term, Value, Var};
use std::collections::HashMap;

/// Schema information the SQL frontend needs per table.
#[derive(Debug, Clone)]
pub struct SqlTable {
    /// Column names.
    pub columns: Vec<String>,
    /// Key column (needed by `CONTAINS`, which joins through the key).
    pub key_column: Option<String>,
    /// Whether the table declared text columns (enables `CONTAINS`).
    pub has_text: bool,
}

/// Table catalog for parsing.
pub type SqlCatalog = HashMap<String, SqlTable>;

/// A parsed query: pivot CQ + column names + residual comparisons.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The conjunctive core.
    pub cq: Cq,
    /// Output column names (`alias.column`).
    pub head_names: Vec<String>,
    /// Residual comparisons.
    pub residuals: Vec<Residual>,
}

// ---------- Lexer ----------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Op(String),
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '=' => {
                out.push(Tok::Op("=".into()));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op("<=".into()));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Tok::Op("<>".into()));
                    i += 2;
                } else {
                    out.push(Tok::Op("<".into()));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(">=".into()));
                    i += 2;
                } else {
                    out.push(Tok::Op(">".into()));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(Error::Parse("unterminated string literal".into()));
                }
                i += 1;
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit() || (chars[i] == '.' && !is_float))
                {
                    // A '.' is part of the number only when followed by a digit
                    // (so `t.c` never lexes as a float).
                    if chars[i] == '.' {
                        if chars.get(i + 1).map(|c| c.is_ascii_digit()) == Some(true) {
                            is_float = true;
                        } else {
                            break;
                        }
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(Tok::Float(text.parse().map_err(|_| {
                        Error::Parse(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|_| {
                        Error::Parse(format!("bad integer literal {text}"))
                    })?));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(Error::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

// ---------- Parser ----------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
struct ColRefAst {
    alias: String,
    column: String,
}

#[derive(Debug, Clone)]
enum CondAst {
    Cmp(ColRefAst, String, RhsAst),
    Contains(ColRefAst, String),
}

#[derive(Debug, Clone)]
enum RhsAst {
    Const(Value),
    Col(ColRefAst),
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.next()? {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(Error::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn colref(&mut self) -> Result<ColRefAst> {
        let alias = self.ident()?;
        match self.next()? {
            Tok::Dot => {}
            other => return Err(Error::Parse(format!("expected '.', found {other:?}"))),
        }
        let column = self.ident()?;
        Ok(ColRefAst { alias, column })
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        let n = self.next()?;
        if n == t {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected {t:?}, found {n:?}")))
        }
    }
}

/// Parse `sql` against `catalog` into a pivot query.
pub fn parse_sql(sql: &str, catalog: &SqlCatalog) -> Result<ParsedQuery> {
    let mut p = Parser {
        toks: lex(sql)?,
        pos: 0,
    };
    p.keyword("SELECT")?;
    let mut selects = vec![p.colref()?];
    while p.peek() == Some(&Tok::Comma) {
        p.next()?;
        selects.push(p.colref()?);
    }
    p.keyword("FROM")?;
    let mut tables: Vec<(String, String)> = Vec::new(); // (table, alias)
    loop {
        let table = p.ident()?;
        let alias = p.ident()?;
        tables.push((table, alias));
        if p.peek() == Some(&Tok::Comma) {
            p.next()?;
        } else {
            break;
        }
    }
    let mut conds: Vec<CondAst> = Vec::new();
    if p.at_keyword("WHERE") {
        p.keyword("WHERE")?;
        loop {
            if p.at_keyword("CONTAINS") {
                p.keyword("CONTAINS")?;
                p.expect(Tok::LParen)?;
                let c = p.colref()?;
                p.expect(Tok::Comma)?;
                let term = match p.next()? {
                    Tok::Str(s) => s,
                    other => {
                        return Err(Error::Parse(format!(
                            "CONTAINS needs a string term, found {other:?}"
                        )))
                    }
                };
                p.expect(Tok::RParen)?;
                conds.push(CondAst::Contains(c, term));
            } else {
                let l = p.colref()?;
                let op = match p.next()? {
                    Tok::Op(o) => o,
                    other => {
                        return Err(Error::Parse(format!("expected operator, found {other:?}")))
                    }
                };
                let rhs = match p.peek() {
                    Some(Tok::Int(_)) | Some(Tok::Float(_)) | Some(Tok::Str(_)) => {
                        match p.next()? {
                            Tok::Int(i) => RhsAst::Const(Value::Int(i)),
                            Tok::Float(f) => RhsAst::Const(Value::Double(f)),
                            Tok::Str(s) => RhsAst::Const(Value::str(s)),
                            _ => unreachable!(),
                        }
                    }
                    _ => RhsAst::Col(p.colref()?),
                };
                conds.push(CondAst::Cmp(l, op, rhs));
            }
            if p.at_keyword("AND") {
                p.keyword("AND")?;
            } else {
                break;
            }
        }
    }
    if p.peek().is_some() {
        return Err(Error::Parse(format!(
            "trailing tokens after query: {:?}",
            p.peek()
        )));
    }
    build_cq(selects, tables, conds, catalog)
}

/// Union-find over (alias, column) cells plus constant binding.
struct Cells {
    parent: Vec<usize>,
    constant: Vec<Option<Value>>,
    index: HashMap<(String, String), usize>,
}

impl Cells {
    fn new() -> Cells {
        Cells {
            parent: Vec::new(),
            constant: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn cell(&mut self, alias: &str, col: &str) -> usize {
        let key = (alias.to_string(), col.to_string());
        if let Some(i) = self.index.get(&key) {
            return *i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.constant.push(None);
        self.index.insert(key, i);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) -> Result<()> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return Ok(());
        }
        let merged = match (&self.constant[ra], &self.constant[rb]) {
            (Some(x), Some(y)) if x != y => {
                return Err(Error::Parse(
                    "contradictory equality constants in WHERE clause".into(),
                ))
            }
            (Some(x), _) => Some(x.clone()),
            (_, y) => y.clone(),
        };
        self.parent[rb] = ra;
        self.constant[ra] = merged;
        Ok(())
    }

    fn bind_const(&mut self, i: usize, v: Value) -> Result<()> {
        let r = self.find(i);
        match &self.constant[r] {
            Some(existing) if *existing != v => Err(Error::Parse(
                "contradictory equality constants in WHERE clause".into(),
            )),
            _ => {
                self.constant[r] = Some(v);
                Ok(())
            }
        }
    }
}

fn build_cq(
    selects: Vec<ColRefAst>,
    tables: Vec<(String, String)>,
    conds: Vec<CondAst>,
    catalog: &SqlCatalog,
) -> Result<ParsedQuery> {
    let alias_table: HashMap<String, String> =
        tables.iter().map(|(t, a)| (a.clone(), t.clone())).collect();
    let resolve = |c: &ColRefAst| -> Result<(String, String)> {
        let table = alias_table
            .get(&c.alias)
            .ok_or_else(|| Error::UnknownName(format!("alias {}", c.alias)))?;
        let info = catalog
            .get(table)
            .ok_or_else(|| Error::UnknownName(format!("table {table}")))?;
        if !info.columns.contains(&c.column) {
            return Err(Error::UnknownName(format!("column {}.{}", table, c.column)));
        }
        Ok((table.clone(), c.column.clone()))
    };

    let mut cells = Cells::new();
    // Materialize every column cell of every alias.
    for (table, alias) in &tables {
        let info = catalog
            .get(table)
            .ok_or_else(|| Error::UnknownName(format!("table {table}")))?;
        for col in &info.columns {
            cells.cell(alias, col);
        }
    }

    // First pass: fold equalities.
    let mut residual_asts = Vec::new();
    let mut contains_asts = Vec::new();
    for cond in conds {
        match cond {
            CondAst::Cmp(l, op, rhs) if op == "=" => {
                resolve(&l)?;
                let li = cells.cell(&l.alias, &l.column);
                match rhs {
                    RhsAst::Const(v) => cells.bind_const(li, v)?,
                    RhsAst::Col(r) => {
                        resolve(&r)?;
                        let ri = cells.cell(&r.alias, &r.column);
                        cells.union(li, ri)?;
                    }
                }
            }
            CondAst::Cmp(l, op, rhs) => {
                resolve(&l)?;
                match rhs {
                    RhsAst::Const(v) => residual_asts.push((l, op, v)),
                    RhsAst::Col(_) => {
                        return Err(Error::Parse(
                            "non-equality column-column comparisons are not supported".into(),
                        ))
                    }
                }
            }
            CondAst::Contains(c, term) => {
                resolve(&c)?;
                contains_asts.push((c, term));
            }
        }
    }

    // Assign variables per cell class without a constant.
    let mut class_var: HashMap<usize, Var> = HashMap::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut term_of = |cells: &mut Cells, alias: &str, col: &str| -> Term {
        let i = cells.cell(alias, col);
        let r = cells.find(i);
        if let Some(c) = &cells.constant[r] {
            return Term::Const(c.clone());
        }
        let next_id = class_var.len() as u32;
        let v = *class_var.entry(r).or_insert_with(|| {
            var_names.push(format!("{alias}_{col}"));
            Var(next_id)
        });
        Term::Var(v)
    };

    // Body atoms.
    let mut body = Vec::new();
    for (table, alias) in &tables {
        let info = &catalog[table];
        let args: Vec<Term> = info
            .columns
            .iter()
            .map(|col| term_of(&mut cells, alias, col))
            .collect();
        body.push(Atom::new(table.as_str(), args));
    }
    // CONTAINS atoms join through the table key.
    for (c, term) in contains_asts {
        let table = &alias_table[&c.alias];
        let info = &catalog[table];
        if !info.has_text {
            return Err(Error::Parse(format!(
                "table {table} has no text columns for CONTAINS"
            )));
        }
        let key_col = info
            .key_column
            .as_ref()
            .ok_or_else(|| Error::Parse(format!("table {table} needs a key for CONTAINS")))?;
        let key_term = term_of(&mut cells, &c.alias, key_col);
        // Terms are stored lowercase by the tokenizer.
        let normalized = term.to_lowercase();
        body.push(Atom::new(
            crate::dataset::Dataset::terms_relation(table),
            vec![Term::Const(Value::str(normalized)), key_term],
        ));
    }

    // Head and residuals.
    let mut head = Vec::new();
    let mut head_names = Vec::new();
    for s in &selects {
        resolve(s)?;
        head.push(term_of(&mut cells, &s.alias, &s.column));
        head_names.push(format!("{}.{}", s.alias, s.column));
    }
    let mut residuals = Vec::new();
    for (l, op, v) in residual_asts {
        let t = term_of(&mut cells, &l.alias, &l.column);
        let var = match t {
            Term::Var(var) => var,
            Term::Const(c) => {
                // The column was pinned by an equality; evaluate statically.
                let holds = match op.as_str() {
                    "<" => c < v,
                    "<=" => c <= v,
                    ">" => c > v,
                    ">=" => c >= v,
                    "<>" => c != v,
                    _ => unreachable!(),
                };
                if holds {
                    continue;
                }
                return Err(Error::Parse(
                    "WHERE clause is statically unsatisfiable".into(),
                ));
            }
        };
        let op = match op.as_str() {
            "<" => ResOp::Lt,
            "<=" => ResOp::Le,
            ">" => ResOp::Gt,
            ">=" => ResOp::Ge,
            "<>" => ResOp::Ne,
            other => return Err(Error::Parse(format!("unknown operator {other}"))),
        };
        residuals.push(Residual { var, op, value: v });
    }

    let mut cq = Cq::new(Symbol::intern("Q"), head, body);
    cq.var_names = var_names;
    Ok(ParsedQuery {
        cq,
        head_names,
        residuals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> SqlCatalog {
        let mut c = SqlCatalog::new();
        c.insert(
            "Users".into(),
            SqlTable {
                columns: vec!["uid".into(), "name".into(), "tier".into()],
                key_column: Some("uid".into()),
                has_text: false,
            },
        );
        c.insert(
            "Orders".into(),
            SqlTable {
                columns: vec!["oid".into(), "uid".into(), "total".into()],
                key_column: Some("oid".into()),
                has_text: false,
            },
        );
        c.insert(
            "Products".into(),
            SqlTable {
                columns: vec!["pid".into(), "title".into()],
                key_column: Some("pid".into()),
                has_text: true,
            },
        );
        c
    }

    #[test]
    fn single_table_with_constant() {
        let p = parse_sql("SELECT u.name FROM Users u WHERE u.uid = 7", &catalog()).unwrap();
        assert_eq!(p.cq.body.len(), 1);
        assert_eq!(p.cq.body[0].args[0], Term::Const(Value::Int(7)));
        assert_eq!(p.head_names, vec!["u.name"]);
        assert!(p.residuals.is_empty());
        assert!(p.cq.is_safe());
    }

    #[test]
    fn join_unifies_variables() {
        let p = parse_sql(
            "SELECT u.name, o.total FROM Users u, Orders o WHERE u.uid = o.uid",
            &catalog(),
        )
        .unwrap();
        assert_eq!(p.cq.body.len(), 2);
        // Users.uid (pos 0) and Orders.uid (pos 1) share one variable.
        assert_eq!(p.cq.body[0].args[0], p.cq.body[1].args[1]);
    }

    #[test]
    fn range_predicate_becomes_residual() {
        let p = parse_sql("SELECT o.oid FROM Orders o WHERE o.total > 100", &catalog()).unwrap();
        assert_eq!(p.residuals.len(), 1);
        assert_eq!(p.residuals[0].op, ResOp::Gt);
        assert_eq!(p.residuals[0].value, Value::Int(100));
    }

    #[test]
    fn contains_adds_terms_atom() {
        let p = parse_sql(
            "SELECT p.pid FROM Products p WHERE CONTAINS(p.title, 'Mouse')",
            &catalog(),
        )
        .unwrap();
        assert_eq!(p.cq.body.len(), 2);
        let terms_atom = &p.cq.body[1];
        assert_eq!(
            terms_atom.args[0],
            Term::Const(Value::str("mouse")) // normalized
        );
        // Joined through the key variable.
        assert_eq!(terms_atom.args[1], p.cq.body[0].args[0]);
    }

    #[test]
    fn string_and_float_literals() {
        let p = parse_sql(
            "SELECT u.uid FROM Users u WHERE u.tier = 'gold' AND u.uid >= 1.5",
            &catalog(),
        )
        .unwrap();
        assert_eq!(p.cq.body[0].args[2], Term::Const(Value::str("gold")));
        assert_eq!(p.residuals[0].value, Value::Double(1.5));
    }

    #[test]
    fn contradictory_equalities_rejected() {
        let r = parse_sql(
            "SELECT u.uid FROM Users u WHERE u.uid = 1 AND u.uid = 2",
            &catalog(),
        );
        assert!(matches!(r, Err(Error::Parse(_))));
    }

    #[test]
    fn unknown_table_and_column_rejected() {
        assert!(matches!(
            parse_sql("SELECT x.a FROM Ghost x", &catalog()),
            Err(Error::UnknownName(_))
        ));
        assert!(matches!(
            parse_sql("SELECT u.ghost FROM Users u", &catalog()),
            Err(Error::UnknownName(_))
        ));
    }

    #[test]
    fn static_residual_on_pinned_constant() {
        // uid pinned to 7 and 7 > 5 holds: residual disappears.
        let p = parse_sql(
            "SELECT u.name FROM Users u WHERE u.uid = 7 AND u.uid > 5",
            &catalog(),
        )
        .unwrap();
        assert!(p.residuals.is_empty());
        // 7 > 9 fails statically.
        assert!(parse_sql(
            "SELECT u.name FROM Users u WHERE u.uid = 7 AND u.uid > 9",
            &catalog(),
        )
        .is_err());
    }

    #[test]
    fn self_join_with_two_aliases() {
        let p = parse_sql(
            "SELECT a.uid, b.uid FROM Users a, Users b WHERE a.tier = b.tier",
            &catalog(),
        )
        .unwrap();
        assert_eq!(p.cq.body.len(), 2);
        assert_eq!(p.cq.body[0].args[2], p.cq.body[1].args[2]);
        assert_ne!(p.cq.body[0].args[0], p.cq.body[1].args[0]);
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_sql("SELECT u.uid FROM Users u garbage", &catalog()).is_err());
    }
}
