//! Mini-SQL frontend: conjunctive SELECT-FROM-WHERE blocks (plus
//! `CONTAINS` full-text predicates and GROUP BY / HAVING aggregation),
//! translated into the pivot model.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query    := SELECT item (',' item)* FROM tbl (',' tbl)*
//!             [WHERE cond (AND cond)*]
//!             [GROUP BY sel (',' sel)*]
//!             [HAVING hcond (AND hcond)*]
//! item     := (sel | agg) [AS ident]
//! agg      := (COUNT | SUM | AVG | MIN | MAX) '(' (sel | '*') ')'
//! sel      := alias '.' column
//! tbl      := table alias
//! cond     := sel op (const | sel)
//!           | CONTAINS '(' alias '.' column ',' string ')'
//! hcond    := (agg | sel) op const
//! op       := '=' | '<>' | '<' | '<=' | '>' | '>='
//! const    := integer | float | string
//! ```
//!
//! Equality conditions fold into the conjunctive query (variable
//! unification / constants in atoms); other comparisons become residual
//! predicates carried alongside the rewriting.
//!
//! ## Aggregation semantics
//!
//! An aggregate query keeps the *conjunctive core* (FROM + WHERE)
//! rewritable: the core's head is the GROUP BY columns followed by the
//! distinct aggregate argument columns, and the grouping/aggregation runs
//! in the mediator on top of whatever rewriting the planner picked. The
//! mediator evaluates conjunctive queries under **set semantics** (every
//! rewriting is wrapped in a duplicate-eliminating projection), so
//! aggregates range over the *distinct* core tuples — `COUNT`/`SUM` over a
//! column with duplicates across the grouped rows count each distinct
//! `(group key, argument)` combination once. Aggregate over a key column
//! (e.g. `COUNT(o.oid)`) to count underlying rows. This makes results
//! independent of which rewriting executes. Bare (non-aggregated) columns
//! in SELECT or HAVING must appear in GROUP BY; violations are typed
//! [`Error::Parse`] errors, not panics.

use crate::connector::{ResOp, Residual};
use crate::error::{Error, Result};
use estocada_engine::{AggFun, AggSpec, CmpOp};
use estocada_pivot::{Atom, Cq, Symbol, Term, Value, Var};
use std::collections::HashMap;

/// Schema information the SQL frontend needs per table.
#[derive(Debug, Clone)]
pub struct SqlTable {
    /// Column names.
    pub columns: Vec<String>,
    /// Key column (needed by `CONTAINS`, which joins through the key).
    pub key_column: Option<String>,
    /// Whether the table declared text columns (enables `CONTAINS`).
    pub has_text: bool,
}

/// Table catalog for parsing.
pub type SqlCatalog = HashMap<String, SqlTable>;

/// A parsed query: pivot CQ + column names + residual comparisons.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The conjunctive core.
    pub cq: Cq,
    /// Output column names of the conjunctive core (`alias.column`). For an
    /// aggregate query these are the *inner* head columns (group keys then
    /// aggregate arguments), not the final output columns.
    pub head_names: Vec<String>,
    /// Residual comparisons.
    pub residuals: Vec<Residual>,
    /// Grouping/aggregation to run on top of the rewritten core, if the
    /// query used aggregate functions, GROUP BY, or HAVING.
    pub aggregate: Option<AggregateSpec>,
}

/// Aggregation layered over the conjunctive core of a parsed SQL query.
///
/// Column indexes are positional: the core's head lays out the GROUP BY
/// columns first (`0..group_cols`), then the deduplicated aggregate
/// argument columns. The aggregate operator's *output* lays out the group
/// keys first, then `aggs` in order — `having` and `select` index into
/// that output.
#[derive(Debug, Clone)]
pub struct AggregateSpec {
    /// Number of GROUP BY columns (a prefix of the core head; empty for a
    /// global aggregate).
    pub group_cols: usize,
    /// Aggregates, deduplicated by `(function, argument column)`.
    pub aggs: Vec<AggSpec>,
    /// HAVING conjuncts: `(aggregate-output column, op, constant)`.
    pub having: Vec<(usize, CmpOp, Value)>,
    /// Final projection: `(display name, aggregate-output column)` per
    /// SELECT item, in SELECT order.
    pub select: Vec<(String, usize)>,
}

// ---------- Lexer ----------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Op(String),
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '=' => {
                out.push(Tok::Op("=".into()));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op("<=".into()));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Tok::Op("<>".into()));
                    i += 2;
                } else {
                    out.push(Tok::Op("<".into()));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(">=".into()));
                    i += 2;
                } else {
                    out.push(Tok::Op(">".into()));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(Error::Parse("unterminated string literal".into()));
                }
                i += 1;
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit() || (chars[i] == '.' && !is_float))
                {
                    // A '.' is part of the number only when followed by a digit
                    // (so `t.c` never lexes as a float).
                    if chars[i] == '.' {
                        if chars.get(i + 1).map(|c| c.is_ascii_digit()) == Some(true) {
                            is_float = true;
                        } else {
                            break;
                        }
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(Tok::Float(text.parse().map_err(|_| {
                        Error::Parse(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|_| {
                        Error::Parse(format!("bad integer literal {text}"))
                    })?));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(Error::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

// ---------- Parser ----------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
struct ColRefAst {
    alias: String,
    column: String,
}

#[derive(Debug, Clone)]
enum CondAst {
    Cmp(ColRefAst, String, RhsAst),
    Contains(ColRefAst, String),
}

/// One SELECT-list item: a plain column or an aggregate call, each with an
/// optional `AS` alias. `Agg(Count, None, _)` is `COUNT(*)`.
#[derive(Debug, Clone)]
enum SelectItemAst {
    Col(ColRefAst, Option<String>),
    Agg(AggFun, Option<ColRefAst>, Option<String>),
}

/// Left-hand side of a HAVING conjunct.
#[derive(Debug, Clone)]
enum HavingLhsAst {
    Col(ColRefAst),
    Agg(AggFun, Option<ColRefAst>),
}

#[derive(Debug, Clone)]
enum RhsAst {
    Const(Value),
    Col(ColRefAst),
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.next()? {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(Error::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn colref(&mut self) -> Result<ColRefAst> {
        let alias = self.ident()?;
        match self.next()? {
            Tok::Dot => {}
            other => return Err(Error::Parse(format!("expected '.', found {other:?}"))),
        }
        let column = self.ident()?;
        Ok(ColRefAst { alias, column })
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        let n = self.next()?;
        if n == t {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected {t:?}, found {n:?}")))
        }
    }

    /// Aggregate function at the cursor? Requires the identifier to be
    /// immediately followed by `(`, so a column alias named `count` still
    /// parses as a plain column reference.
    fn agg_fun_at(&self) -> Option<AggFun> {
        let Some(Tok::Ident(s)) = self.peek() else {
            return None;
        };
        if self.toks.get(self.pos + 1) != Some(&Tok::LParen) {
            return None;
        }
        match s.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFun::Count),
            "SUM" => Some(AggFun::Sum),
            "AVG" => Some(AggFun::Avg),
            "MIN" => Some(AggFun::Min),
            "MAX" => Some(AggFun::Max),
            _ => None,
        }
    }

    /// `FUN '(' (colref | '*') ')'` — the cursor is on the function name.
    fn agg_call(&mut self, fun: AggFun) -> Result<Option<ColRefAst>> {
        self.next()?; // function name
        self.expect(Tok::LParen)?;
        let arg = if self.peek() == Some(&Tok::Star) {
            self.next()?;
            if fun != AggFun::Count {
                return Err(Error::Parse(format!(
                    "{fun:?}(*) is not valid; only COUNT(*)"
                )));
            }
            None
        } else {
            Some(self.colref()?)
        };
        self.expect(Tok::RParen)?;
        Ok(arg)
    }

    fn alias_opt(&mut self) -> Result<Option<String>> {
        if self.at_keyword("AS") {
            self.keyword("AS")?;
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn select_item(&mut self) -> Result<SelectItemAst> {
        if let Some(fun) = self.agg_fun_at() {
            let arg = self.agg_call(fun)?;
            let alias = self.alias_opt()?;
            Ok(SelectItemAst::Agg(fun, arg, alias))
        } else {
            let c = self.colref()?;
            let alias = self.alias_opt()?;
            Ok(SelectItemAst::Col(c, alias))
        }
    }

    fn having_cond(&mut self) -> Result<(HavingLhsAst, CmpOp, Value)> {
        let lhs = if let Some(fun) = self.agg_fun_at() {
            HavingLhsAst::Agg(fun, self.agg_call(fun)?)
        } else {
            HavingLhsAst::Col(self.colref()?)
        };
        let op = match self.next()? {
            Tok::Op(o) => cmp_op(&o)?,
            other => return Err(Error::Parse(format!("expected operator, found {other:?}"))),
        };
        let v = match self.next()? {
            Tok::Int(i) => Value::Int(i),
            Tok::Float(f) => Value::Double(f),
            Tok::Str(s) => Value::str(s),
            other => {
                return Err(Error::Parse(format!(
                    "HAVING needs a constant right-hand side, found {other:?}"
                )))
            }
        };
        Ok((lhs, op, v))
    }
}

fn cmp_op(op: &str) -> Result<CmpOp> {
    Ok(match op {
        "=" => CmpOp::Eq,
        "<>" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        other => return Err(Error::Parse(format!("unknown operator {other}"))),
    })
}

/// Parse `sql` against `catalog` into a pivot query.
pub fn parse_sql(sql: &str, catalog: &SqlCatalog) -> Result<ParsedQuery> {
    let mut p = Parser {
        toks: lex(sql)?,
        pos: 0,
    };
    p.keyword("SELECT")?;
    let mut items = vec![p.select_item()?];
    while p.peek() == Some(&Tok::Comma) {
        p.next()?;
        items.push(p.select_item()?);
    }
    p.keyword("FROM")?;
    let mut tables: Vec<(String, String)> = Vec::new(); // (table, alias)
    loop {
        let table = p.ident()?;
        let alias = p.ident()?;
        tables.push((table, alias));
        if p.peek() == Some(&Tok::Comma) {
            p.next()?;
        } else {
            break;
        }
    }
    let mut conds: Vec<CondAst> = Vec::new();
    if p.at_keyword("WHERE") {
        p.keyword("WHERE")?;
        loop {
            if p.at_keyword("CONTAINS") {
                p.keyword("CONTAINS")?;
                p.expect(Tok::LParen)?;
                let c = p.colref()?;
                p.expect(Tok::Comma)?;
                let term = match p.next()? {
                    Tok::Str(s) => s,
                    other => {
                        return Err(Error::Parse(format!(
                            "CONTAINS needs a string term, found {other:?}"
                        )))
                    }
                };
                p.expect(Tok::RParen)?;
                conds.push(CondAst::Contains(c, term));
            } else {
                let l = p.colref()?;
                let op = match p.next()? {
                    Tok::Op(o) => o,
                    other => {
                        return Err(Error::Parse(format!("expected operator, found {other:?}")))
                    }
                };
                let rhs = match p.peek() {
                    Some(Tok::Int(_)) | Some(Tok::Float(_)) | Some(Tok::Str(_)) => {
                        match p.next()? {
                            Tok::Int(i) => RhsAst::Const(Value::Int(i)),
                            Tok::Float(f) => RhsAst::Const(Value::Double(f)),
                            Tok::Str(s) => RhsAst::Const(Value::str(s)),
                            _ => unreachable!(),
                        }
                    }
                    _ => RhsAst::Col(p.colref()?),
                };
                conds.push(CondAst::Cmp(l, op, rhs));
            }
            if p.at_keyword("AND") {
                p.keyword("AND")?;
            } else {
                break;
            }
        }
    }
    let mut group_refs: Vec<ColRefAst> = Vec::new();
    if p.at_keyword("GROUP") {
        p.keyword("GROUP")?;
        p.keyword("BY")?;
        group_refs.push(p.colref()?);
        while p.peek() == Some(&Tok::Comma) {
            p.next()?;
            group_refs.push(p.colref()?);
        }
    }
    let mut having_asts: Vec<(HavingLhsAst, CmpOp, Value)> = Vec::new();
    if p.at_keyword("HAVING") {
        p.keyword("HAVING")?;
        loop {
            having_asts.push(p.having_cond()?);
            if p.at_keyword("AND") {
                p.keyword("AND")?;
            } else {
                break;
            }
        }
    }
    if p.peek().is_some() {
        return Err(Error::Parse(format!(
            "trailing tokens after query: {:?}",
            p.peek()
        )));
    }

    let is_aggregate = !group_refs.is_empty()
        || !having_asts.is_empty()
        || items.iter().any(|i| matches!(i, SelectItemAst::Agg(..)));
    if !is_aggregate {
        let mut selects = Vec::new();
        let mut head_names = Vec::new();
        for item in items {
            match item {
                SelectItemAst::Col(c, alias) => {
                    head_names.push(alias.unwrap_or_else(|| format!("{}.{}", c.alias, c.column)));
                    selects.push(c);
                }
                SelectItemAst::Agg(..) => unreachable!("no aggregates on this path"),
            }
        }
        return build_cq(selects, head_names, tables, conds, catalog);
    }

    let (inner_refs, spec) = build_aggregate(items, group_refs, having_asts)?;
    let inner_names = inner_refs
        .iter()
        .map(|c| format!("{}.{}", c.alias, c.column))
        .collect();
    let mut parsed = build_cq(inner_refs, inner_names, tables, conds, catalog)?;
    parsed.aggregate = Some(spec);
    Ok(parsed)
}

/// Lay out the conjunctive core's head (group keys, then deduplicated
/// aggregate arguments) and resolve every SELECT/HAVING item to positional
/// indexes over the aggregate operator's output.
fn build_aggregate(
    items: Vec<SelectItemAst>,
    group_refs: Vec<ColRefAst>,
    having_asts: Vec<(HavingLhsAst, CmpOp, Value)>,
) -> Result<(Vec<ColRefAst>, AggregateSpec)> {
    let mut inner: Vec<ColRefAst> = Vec::new();
    let mut inner_idx: HashMap<(String, String), usize> = HashMap::new();
    for g in &group_refs {
        let key = (g.alias.clone(), g.column.clone());
        if let std::collections::hash_map::Entry::Vacant(e) = inner_idx.entry(key) {
            e.insert(inner.len());
            inner.push(g.clone());
        }
    }
    let group_cols = inner.len();

    // A bare column is legal only when it is one of the group keys; its
    // aggregate-output index equals its core-head index.
    let group_pos =
        |c: &ColRefAst, inner_idx: &HashMap<(String, String), usize>| -> Result<usize> {
            match inner_idx.get(&(c.alias.clone(), c.column.clone())) {
                Some(&i) if i < group_cols => Ok(i),
                _ => Err(Error::Parse(format!(
                    "column {}.{} must appear in GROUP BY to be used outside an aggregate",
                    c.alias, c.column
                ))),
            }
        };

    let mut aggs: Vec<AggSpec> = Vec::new();
    let register = |fun: AggFun,
                    arg: Option<&ColRefAst>,
                    inner: &mut Vec<ColRefAst>,
                    inner_idx: &mut HashMap<(String, String), usize>,
                    aggs: &mut Vec<AggSpec>|
     -> usize {
        // COUNT(*) counts core tuples; the engine's Count ignores its input
        // column, so any in-range index works — use 0 (validated non-empty
        // by the caller).
        let col = match arg {
            Some(c) => {
                let key = (c.alias.clone(), c.column.clone());
                *inner_idx.entry(key).or_insert_with(|| {
                    inner.push(c.clone());
                    inner.len() - 1
                })
            }
            None => 0,
        };
        if let Some(i) = aggs.iter().position(|a| a.fun == fun && a.col == col) {
            return i;
        }
        let name = match arg {
            Some(c) => format!("{}({}.{})", fun_name(fun), c.alias, c.column),
            None => "COUNT(*)".to_string(),
        };
        aggs.push(AggSpec { fun, col, name });
        aggs.len() - 1
    };

    let mut select = Vec::new();
    for item in &items {
        match item {
            SelectItemAst::Col(c, alias) => {
                let i = group_pos(c, &inner_idx)?;
                let name = alias
                    .clone()
                    .unwrap_or_else(|| format!("{}.{}", c.alias, c.column));
                select.push((name, i));
            }
            SelectItemAst::Agg(fun, arg, alias) => {
                let a = register(*fun, arg.as_ref(), &mut inner, &mut inner_idx, &mut aggs);
                let name = alias.clone().unwrap_or_else(|| aggs[a].name.clone());
                select.push((name, group_cols + a));
            }
        }
    }
    let mut having = Vec::new();
    for (lhs, op, v) in &having_asts {
        let idx = match lhs {
            HavingLhsAst::Col(c) => group_pos(c, &inner_idx)?,
            HavingLhsAst::Agg(fun, arg) => {
                group_cols + register(*fun, arg.as_ref(), &mut inner, &mut inner_idx, &mut aggs)
            }
        };
        having.push((idx, *op, v.clone()));
    }
    if inner.is_empty() {
        return Err(Error::Parse(
            "COUNT(*) needs at least one GROUP BY column or aggregate argument \
             (the conjunctive core would have an empty head)"
                .into(),
        ));
    }
    Ok((
        inner,
        AggregateSpec {
            group_cols,
            aggs,
            having,
            select,
        },
    ))
}

fn fun_name(fun: AggFun) -> &'static str {
    match fun {
        AggFun::Count => "COUNT",
        AggFun::Sum => "SUM",
        AggFun::Avg => "AVG",
        AggFun::Min => "MIN",
        AggFun::Max => "MAX",
    }
}

/// Union-find over (alias, column) cells plus constant binding.
struct Cells {
    parent: Vec<usize>,
    constant: Vec<Option<Value>>,
    index: HashMap<(String, String), usize>,
}

impl Cells {
    fn new() -> Cells {
        Cells {
            parent: Vec::new(),
            constant: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn cell(&mut self, alias: &str, col: &str) -> usize {
        let key = (alias.to_string(), col.to_string());
        if let Some(i) = self.index.get(&key) {
            return *i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.constant.push(None);
        self.index.insert(key, i);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) -> Result<()> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return Ok(());
        }
        let merged = match (&self.constant[ra], &self.constant[rb]) {
            (Some(x), Some(y)) if x != y => {
                return Err(Error::Parse(
                    "contradictory equality constants in WHERE clause".into(),
                ))
            }
            (Some(x), _) => Some(x.clone()),
            (_, y) => y.clone(),
        };
        self.parent[rb] = ra;
        self.constant[ra] = merged;
        Ok(())
    }

    fn bind_const(&mut self, i: usize, v: Value) -> Result<()> {
        let r = self.find(i);
        match &self.constant[r] {
            Some(existing) if *existing != v => Err(Error::Parse(
                "contradictory equality constants in WHERE clause".into(),
            )),
            _ => {
                self.constant[r] = Some(v);
                Ok(())
            }
        }
    }
}

fn build_cq(
    selects: Vec<ColRefAst>,
    head_names: Vec<String>,
    tables: Vec<(String, String)>,
    conds: Vec<CondAst>,
    catalog: &SqlCatalog,
) -> Result<ParsedQuery> {
    let alias_table: HashMap<String, String> =
        tables.iter().map(|(t, a)| (a.clone(), t.clone())).collect();
    let resolve = |c: &ColRefAst| -> Result<(String, String)> {
        let table = alias_table
            .get(&c.alias)
            .ok_or_else(|| Error::UnknownName(format!("alias {}", c.alias)))?;
        let info = catalog
            .get(table)
            .ok_or_else(|| Error::UnknownName(format!("table {table}")))?;
        if !info.columns.contains(&c.column) {
            return Err(Error::UnknownName(format!("column {}.{}", table, c.column)));
        }
        Ok((table.clone(), c.column.clone()))
    };

    let mut cells = Cells::new();
    // Materialize every column cell of every alias.
    for (table, alias) in &tables {
        let info = catalog
            .get(table)
            .ok_or_else(|| Error::UnknownName(format!("table {table}")))?;
        for col in &info.columns {
            cells.cell(alias, col);
        }
    }

    // First pass: fold equalities.
    let mut residual_asts = Vec::new();
    let mut contains_asts = Vec::new();
    for cond in conds {
        match cond {
            CondAst::Cmp(l, op, rhs) if op == "=" => {
                resolve(&l)?;
                let li = cells.cell(&l.alias, &l.column);
                match rhs {
                    RhsAst::Const(v) => cells.bind_const(li, v)?,
                    RhsAst::Col(r) => {
                        resolve(&r)?;
                        let ri = cells.cell(&r.alias, &r.column);
                        cells.union(li, ri)?;
                    }
                }
            }
            CondAst::Cmp(l, op, rhs) => {
                resolve(&l)?;
                match rhs {
                    RhsAst::Const(v) => residual_asts.push((l, op, v)),
                    RhsAst::Col(_) => {
                        return Err(Error::Parse(
                            "non-equality column-column comparisons are not supported".into(),
                        ))
                    }
                }
            }
            CondAst::Contains(c, term) => {
                resolve(&c)?;
                contains_asts.push((c, term));
            }
        }
    }

    // Assign variables per cell class without a constant.
    let mut class_var: HashMap<usize, Var> = HashMap::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut term_of = |cells: &mut Cells, alias: &str, col: &str| -> Term {
        let i = cells.cell(alias, col);
        let r = cells.find(i);
        if let Some(c) = &cells.constant[r] {
            return Term::Const(c.clone());
        }
        let next_id = class_var.len() as u32;
        let v = *class_var.entry(r).or_insert_with(|| {
            var_names.push(format!("{alias}_{col}"));
            Var(next_id)
        });
        Term::Var(v)
    };

    // Body atoms.
    let mut body = Vec::new();
    for (table, alias) in &tables {
        let info = &catalog[table];
        let args: Vec<Term> = info
            .columns
            .iter()
            .map(|col| term_of(&mut cells, alias, col))
            .collect();
        body.push(Atom::new(table.as_str(), args));
    }
    // CONTAINS atoms join through the table key.
    for (c, term) in contains_asts {
        let table = &alias_table[&c.alias];
        let info = &catalog[table];
        if !info.has_text {
            return Err(Error::Parse(format!(
                "table {table} has no text columns for CONTAINS"
            )));
        }
        let key_col = info
            .key_column
            .as_ref()
            .ok_or_else(|| Error::Parse(format!("table {table} needs a key for CONTAINS")))?;
        let key_term = term_of(&mut cells, &c.alias, key_col);
        // Terms are stored lowercase by the tokenizer.
        let normalized = term.to_lowercase();
        body.push(Atom::new(
            crate::dataset::Dataset::terms_relation(table),
            vec![Term::Const(Value::str(normalized)), key_term],
        ));
    }

    // Head and residuals.
    let mut head = Vec::new();
    for s in &selects {
        resolve(s)?;
        head.push(term_of(&mut cells, &s.alias, &s.column));
    }
    let mut residuals = Vec::new();
    for (l, op, v) in residual_asts {
        let t = term_of(&mut cells, &l.alias, &l.column);
        let var = match t {
            Term::Var(var) => var,
            Term::Const(c) => {
                // The column was pinned by an equality; evaluate statically.
                let holds = match op.as_str() {
                    "<" => c < v,
                    "<=" => c <= v,
                    ">" => c > v,
                    ">=" => c >= v,
                    "<>" => c != v,
                    _ => unreachable!(),
                };
                if holds {
                    continue;
                }
                return Err(Error::Parse(
                    "WHERE clause is statically unsatisfiable".into(),
                ));
            }
        };
        let op = match op.as_str() {
            "<" => ResOp::Lt,
            "<=" => ResOp::Le,
            ">" => ResOp::Gt,
            ">=" => ResOp::Ge,
            "<>" => ResOp::Ne,
            other => return Err(Error::Parse(format!("unknown operator {other}"))),
        };
        residuals.push(Residual { var, op, value: v });
    }

    let mut cq = Cq::new(Symbol::intern("Q"), head, body);
    cq.var_names = var_names;
    Ok(ParsedQuery {
        cq,
        head_names,
        residuals,
        aggregate: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> SqlCatalog {
        let mut c = SqlCatalog::new();
        c.insert(
            "Users".into(),
            SqlTable {
                columns: vec!["uid".into(), "name".into(), "tier".into()],
                key_column: Some("uid".into()),
                has_text: false,
            },
        );
        c.insert(
            "Orders".into(),
            SqlTable {
                columns: vec!["oid".into(), "uid".into(), "total".into()],
                key_column: Some("oid".into()),
                has_text: false,
            },
        );
        c.insert(
            "Products".into(),
            SqlTable {
                columns: vec!["pid".into(), "title".into()],
                key_column: Some("pid".into()),
                has_text: true,
            },
        );
        c
    }

    #[test]
    fn single_table_with_constant() {
        let p = parse_sql("SELECT u.name FROM Users u WHERE u.uid = 7", &catalog()).unwrap();
        assert_eq!(p.cq.body.len(), 1);
        assert_eq!(p.cq.body[0].args[0], Term::Const(Value::Int(7)));
        assert_eq!(p.head_names, vec!["u.name"]);
        assert!(p.residuals.is_empty());
        assert!(p.cq.is_safe());
    }

    #[test]
    fn join_unifies_variables() {
        let p = parse_sql(
            "SELECT u.name, o.total FROM Users u, Orders o WHERE u.uid = o.uid",
            &catalog(),
        )
        .unwrap();
        assert_eq!(p.cq.body.len(), 2);
        // Users.uid (pos 0) and Orders.uid (pos 1) share one variable.
        assert_eq!(p.cq.body[0].args[0], p.cq.body[1].args[1]);
    }

    #[test]
    fn range_predicate_becomes_residual() {
        let p = parse_sql("SELECT o.oid FROM Orders o WHERE o.total > 100", &catalog()).unwrap();
        assert_eq!(p.residuals.len(), 1);
        assert_eq!(p.residuals[0].op, ResOp::Gt);
        assert_eq!(p.residuals[0].value, Value::Int(100));
    }

    #[test]
    fn contains_adds_terms_atom() {
        let p = parse_sql(
            "SELECT p.pid FROM Products p WHERE CONTAINS(p.title, 'Mouse')",
            &catalog(),
        )
        .unwrap();
        assert_eq!(p.cq.body.len(), 2);
        let terms_atom = &p.cq.body[1];
        assert_eq!(
            terms_atom.args[0],
            Term::Const(Value::str("mouse")) // normalized
        );
        // Joined through the key variable.
        assert_eq!(terms_atom.args[1], p.cq.body[0].args[0]);
    }

    #[test]
    fn string_and_float_literals() {
        let p = parse_sql(
            "SELECT u.uid FROM Users u WHERE u.tier = 'gold' AND u.uid >= 1.5",
            &catalog(),
        )
        .unwrap();
        assert_eq!(p.cq.body[0].args[2], Term::Const(Value::str("gold")));
        assert_eq!(p.residuals[0].value, Value::Double(1.5));
    }

    #[test]
    fn contradictory_equalities_rejected() {
        let r = parse_sql(
            "SELECT u.uid FROM Users u WHERE u.uid = 1 AND u.uid = 2",
            &catalog(),
        );
        assert!(matches!(r, Err(Error::Parse(_))));
    }

    #[test]
    fn unknown_table_and_column_rejected() {
        assert!(matches!(
            parse_sql("SELECT x.a FROM Ghost x", &catalog()),
            Err(Error::UnknownName(_))
        ));
        assert!(matches!(
            parse_sql("SELECT u.ghost FROM Users u", &catalog()),
            Err(Error::UnknownName(_))
        ));
    }

    #[test]
    fn static_residual_on_pinned_constant() {
        // uid pinned to 7 and 7 > 5 holds: residual disappears.
        let p = parse_sql(
            "SELECT u.name FROM Users u WHERE u.uid = 7 AND u.uid > 5",
            &catalog(),
        )
        .unwrap();
        assert!(p.residuals.is_empty());
        // 7 > 9 fails statically.
        assert!(parse_sql(
            "SELECT u.name FROM Users u WHERE u.uid = 7 AND u.uid > 9",
            &catalog(),
        )
        .is_err());
    }

    #[test]
    fn self_join_with_two_aliases() {
        let p = parse_sql(
            "SELECT a.uid, b.uid FROM Users a, Users b WHERE a.tier = b.tier",
            &catalog(),
        )
        .unwrap();
        assert_eq!(p.cq.body.len(), 2);
        assert_eq!(p.cq.body[0].args[2], p.cq.body[1].args[2]);
        assert_ne!(p.cq.body[0].args[0], p.cq.body[1].args[0]);
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_sql("SELECT u.uid FROM Users u garbage", &catalog()).is_err());
    }

    #[test]
    fn group_by_with_aggregates() {
        let p = parse_sql(
            "SELECT u.tier, COUNT(o.oid), SUM(o.total) AS revenue \
             FROM Users u, Orders o WHERE u.uid = o.uid \
             GROUP BY u.tier HAVING SUM(o.total) > 100",
            &catalog(),
        )
        .unwrap();
        // Inner head: group key + the two aggregate arguments.
        assert_eq!(p.head_names, vec!["u.tier", "o.oid", "o.total"]);
        let spec = p.aggregate.unwrap();
        assert_eq!(spec.group_cols, 1);
        assert_eq!(spec.aggs.len(), 2);
        assert_eq!(spec.aggs[0].fun, AggFun::Count);
        assert_eq!(spec.aggs[0].col, 1);
        // HAVING SUM(o.total) reuses the SELECT aggregate (dedup).
        assert_eq!(spec.aggs[1].fun, AggFun::Sum);
        assert_eq!(spec.having, vec![(2, CmpOp::Gt, Value::Int(100))]);
        assert_eq!(
            spec.select,
            vec![
                ("u.tier".to_string(), 0),
                ("COUNT(o.oid)".to_string(), 1),
                ("revenue".to_string(), 2),
            ]
        );
    }

    #[test]
    fn count_star_uses_first_inner_column() {
        let p = parse_sql(
            "SELECT u.tier, COUNT(*) FROM Users u GROUP BY u.tier",
            &catalog(),
        )
        .unwrap();
        let spec = p.aggregate.unwrap();
        assert_eq!(spec.aggs.len(), 1);
        assert_eq!(spec.aggs[0].col, 0);
        assert_eq!(spec.aggs[0].name, "COUNT(*)");
        assert_eq!(spec.select[1].0, "COUNT(*)");
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let p = parse_sql("SELECT AVG(o.total) FROM Orders o", &catalog()).unwrap();
        let spec = p.aggregate.unwrap();
        assert_eq!(spec.group_cols, 0);
        assert_eq!(p.head_names, vec!["o.total"]);
        assert_eq!(spec.select, vec![("AVG(o.total)".to_string(), 0)]);
    }

    #[test]
    fn having_on_group_key() {
        let p = parse_sql(
            "SELECT u.tier FROM Users u GROUP BY u.tier HAVING u.tier <> 'basic'",
            &catalog(),
        )
        .unwrap();
        let spec = p.aggregate.unwrap();
        assert!(spec.aggs.is_empty()); // pure GROUP BY = distinct
        assert_eq!(spec.having, vec![(0, CmpOp::Ne, Value::str("basic"))]);
    }

    #[test]
    fn non_grouped_bare_column_is_typed_error() {
        let r = parse_sql(
            "SELECT u.name, COUNT(o.oid) FROM Users u, Orders o \
             WHERE u.uid = o.uid GROUP BY u.tier",
            &catalog(),
        );
        assert!(matches!(r, Err(Error::Parse(ref m)) if m.contains("GROUP BY")));
        // Same for a bare column in HAVING.
        let r = parse_sql(
            "SELECT u.tier FROM Users u GROUP BY u.tier HAVING u.name = 'x'",
            &catalog(),
        );
        assert!(matches!(r, Err(Error::Parse(ref m)) if m.contains("GROUP BY")));
    }

    #[test]
    fn bare_count_star_rejected() {
        assert!(matches!(
            parse_sql("SELECT COUNT(*) FROM Users u", &catalog()),
            Err(Error::Parse(_))
        ));
    }

    #[test]
    fn star_only_valid_for_count() {
        assert!(matches!(
            parse_sql(
                "SELECT u.tier, SUM(*) FROM Users u GROUP BY u.tier",
                &catalog()
            ),
            Err(Error::Parse(_))
        ));
    }

    #[test]
    fn aggregate_arg_columns_resolve_against_catalog() {
        assert!(matches!(
            parse_sql(
                "SELECT u.tier, SUM(u.ghost) FROM Users u GROUP BY u.tier",
                &catalog()
            ),
            Err(Error::UnknownName(_))
        ));
    }

    #[test]
    fn alias_named_count_still_parses_as_column() {
        // `count` followed by `.` is an alias, not an aggregate call.
        let mut c = catalog();
        c.insert(
            "Stats".into(),
            SqlTable {
                columns: vec!["count".into()],
                key_column: None,
                has_text: false,
            },
        );
        let p = parse_sql("SELECT count.count FROM Stats count", &c).unwrap();
        assert!(p.aggregate.is_none());
        assert_eq!(p.head_names, vec!["count.count"]);
    }
}
