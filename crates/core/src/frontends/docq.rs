//! Document frontend: tree-pattern queries over document datasets,
//! translated into the pivot encoding (`Root`/`Child`/`Desc`/`Node`/`Val`
//! atoms).

use crate::error::{Error, Result};
use estocada_pivot::encoding::document::TreePattern;
use estocada_pivot::{Cq, Symbol, Term, Var};

/// A parsed document query (same shape the SQL frontend produces).
#[derive(Debug, Clone)]
pub struct ParsedDocQuery {
    /// The conjunctive core over the dataset's encoding relations.
    pub cq: Cq,
    /// Output column names (the selected binding names).
    pub head_names: Vec<String>,
}

/// Translate a tree pattern with a selection of binding names into a pivot
/// query. The pattern's collection must be the *dataset name* (the encoding
/// prefix).
pub fn doc_query(pattern: &TreePattern, select: &[&str]) -> Result<ParsedDocQuery> {
    let mut next_var = 0u32;
    let (atoms, bindings) = pattern.to_atoms(&mut next_var);
    let mut head = Vec::new();
    let mut head_names = Vec::new();
    for s in select {
        let term = bindings
            .iter()
            .find(|(name, _)| name == s)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| Error::UnknownName(format!("binding {s}")))?;
        head.push(term);
        head_names.push(s.to_string());
    }
    let mut cq = Cq::new(Symbol::intern("DQ"), head, atoms);
    // Name bound variables after their bindings for readable EXPLAIN output.
    let max_var = cq.var_space();
    let mut names = vec![String::new(); max_var as usize];
    for (name, t) in &bindings {
        if let Term::Var(Var(i)) = t {
            names[*i as usize] = name.clone();
        }
    }
    for (i, n) in names.iter_mut().enumerate() {
        if n.is_empty() {
            *n = format!("n{i}");
        }
    }
    cq.var_names = names;
    Ok(ParsedDocQuery { cq, head_names })
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_pivot::encoding::document::{DocRelations, PatternStep};

    #[test]
    fn pattern_with_selection_translates() {
        let p = TreePattern::new("Carts").with_step(
            PatternStep::child("user")
                .eq(7i64)
                .with_child(PatternStep::descendant("sku").bind("s")),
        );
        let q = doc_query(&p, &["s"]).unwrap();
        assert_eq!(q.head_names, vec!["s"]);
        assert!(q.cq.is_safe());
        let rels = DocRelations::for_collection("Carts");
        assert!(q.cq.body.iter().any(|a| a.pred == rels.root));
        assert!(q.cq.body.iter().any(|a| a.pred == rels.desc));
    }

    #[test]
    fn unknown_binding_rejected() {
        let p = TreePattern::new("Carts").with_step(PatternStep::child("user").bind("u"));
        assert!(matches!(
            doc_query(&p, &["ghost"]),
            Err(Error::UnknownName(_))
        ));
    }
}
