//! Native-language query frontends: each application dataset is queried in
//! the language of its own data model and translated into the pivot model.

pub mod docq;
pub mod sql;

pub use docq::{doc_query, ParsedDocQuery};
pub use sql::{parse_sql, AggregateSpec, ParsedQuery, SqlCatalog, SqlTable};

use crate::analyze::{analyze_query, Diagnostic};
use crate::error::Result;
use estocada_pivot::Schema;

/// Parse a mini-SQL query and run the static analyzer's query lints on
/// its conjunctive core — without planning or executing anything. This is
/// the frontend-level entry to the analyzer: `E002`/`E004` for dangling
/// or arity-mismatched relation references, `E003` for unsafe heads,
/// `W003` for cartesian-product bodies. The same lints are attached to
/// [`crate::report::Report::diagnostics`] when the query actually runs
/// (served from the catalog-epoch-keyed lint cache —
/// [`crate::report::Report::lint_cache`] shows the activity).
///
/// Deployment-level findings — the termination-certificate lattice
/// (`E001`/`W006`), unsatisfiable constraint bodies (`E005`), fragment
/// subsumption and stratum spans (`W001`/`W005`) — are not per-query;
/// query them through [`crate::Estocada::analyze`] and
/// [`crate::Estocada::termination_certificate`].
pub fn lint_sql(sql: &str, catalog: &SqlCatalog, schema: &Schema) -> Result<Vec<Diagnostic>> {
    Ok(analyze_query(&parse_sql(sql, catalog)?.cq, schema))
}
