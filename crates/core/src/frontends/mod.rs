//! Native-language query frontends: each application dataset is queried in
//! the language of its own data model and translated into the pivot model.

pub mod docq;
pub mod sql;

pub use docq::{doc_query, ParsedDocQuery};
pub use sql::{parse_sql, ParsedQuery, SqlCatalog, SqlTable};
