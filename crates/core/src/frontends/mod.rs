//! Native-language query frontends: each application dataset is queried in
//! the language of its own data model and translated into the pivot model.

pub mod docq;
pub mod sql;

pub use docq::{doc_query, ParsedDocQuery};
pub use sql::{parse_sql, AggregateSpec, ParsedQuery, SqlCatalog, SqlTable};

use crate::analyze::{analyze_query, Diagnostic};
use crate::error::Result;
use estocada_pivot::Schema;

/// Parse a mini-SQL query and run the static analyzer's query lints on
/// its conjunctive core — without planning or executing anything. This is
/// the frontend-level entry to the analyzer: `E002`/`E004` for dangling
/// or arity-mismatched relation references, `E003` for unsafe heads,
/// `W003` for cartesian-product bodies. The same lints are attached to
/// [`crate::report::Report::diagnostics`] when the query actually runs.
pub fn lint_sql(sql: &str, catalog: &SqlCatalog, schema: &Schema) -> Result<Vec<Diagnostic>> {
    Ok(analyze_query(&parse_sql(sql, catalog)?.cq, schema))
}
