//! Fragment materialization: evaluating a view over the application
//! datasets (in the pivot model) and loading the result into the target
//! store, restructuring the data across models as needed — the error-prone
//! manual migration of the motivating scenario, automated.

use crate::catalog::{
    DocRole, FragmentMeta, FragmentRelation, FragmentSpec, FragmentStats, WhereSpec,
};
use crate::dataset::{Dataset, DatasetContent};
use crate::error::{Error, Result};
use crate::system::Stores;
use estocada_chase::{find_homs, Elem, HomConfig, Instance};
use estocada_pivot::encoding::document::DocRelations;
use estocada_pivot::{AccessPattern, Cq, Fact, Symbol, Term, Value, ViewDef};
use estocada_relstore::IndexKind;
use std::collections::{HashMap, HashSet};

/// Build a ground-fact instance (the staging database used to evaluate view
/// definitions).
pub fn fact_base(facts: &[Fact]) -> Instance {
    let mut inst = Instance::new();
    for f in facts {
        inst.insert(f.pred, f.args.iter().map(Elem::constant).collect());
    }
    inst
}

/// Project one homomorphism onto a view's head row (`None` when a head
/// variable maps to a labelled null — never the case over ground bases).
pub(crate) fn project_head(view: &Cq, h: &estocada_chase::Hom) -> Option<Vec<Value>> {
    view.head
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => h.map.get(v).and_then(Elem::as_value),
        })
        .collect()
}

/// Evaluate a view over the fact base: all homomorphic images of the body,
/// projected on the head. Duplicate rows are eliminated (set semantics of
/// the pivot model).
pub fn evaluate_view(base: &Instance, view: &Cq) -> Vec<Vec<Value>> {
    let homs = find_homs(base, &view.body, &HashMap::new(), HomConfig::default());
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for h in homs {
        if let Some(row) = project_head(view, &h) {
            if seen.insert(row.clone()) {
                out.push(row);
            }
        }
    }
    out
}

/// Compute statistics over materialized rows.
pub fn stats_of_rows(rows: &[Vec<Value>], arity: usize) -> FragmentStats {
    let mut distinct: Vec<HashSet<&Value>> = vec![HashSet::new(); arity];
    let mut bytes = 0u64;
    for r in rows {
        for (i, v) in r.iter().enumerate() {
            if i < arity {
                distinct[i].insert(v);
            }
            bytes += v.approx_size() as u64;
        }
    }
    FragmentStats {
        rows: rows.len() as u64,
        distinct: distinct.iter().map(|d| d.len() as u64).collect(),
        bytes,
    }
}

/// Head column names of a view (variable names, falling back to `c{i}`).
pub fn head_columns(view: &Cq) -> Vec<String> {
    view.head
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            Term::Var(v) => {
                let n = view.var_name(*v);
                if n.starts_with('?') {
                    format!("c{i}")
                } else {
                    n
                }
            }
            Term::Const(_) => format!("c{i}"),
        })
        .collect()
}

/// Materialize `spec` as fragment `id`: evaluates views over `base`, loads
/// the target store, and returns the registered metadata.
pub fn materialize(
    id: &str,
    spec: FragmentSpec,
    base: &Instance,
    datasets: &HashMap<String, Dataset>,
    stores: &Stores,
) -> Result<FragmentMeta> {
    let system = spec.system();
    let mut relations = Vec::new();
    let mut stats = Vec::new();

    match &spec {
        FragmentSpec::Table { view, index_on } => {
            check_view(view)?;
            let rows = evaluate_view(base, view);
            let columns = head_columns(view);
            let table = view.name.as_str().to_string();
            let colrefs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
            stores.rel.create_table(&table, &colrefs);
            stores.rel.insert_many(&table, rows.iter().cloned());
            for ix in index_on {
                if !columns.contains(ix) {
                    return Err(Error::BadFragment(format!(
                        "index column {ix} not in view head"
                    )));
                }
                stores.rel.create_index(&table, ix, IndexKind::BTree);
            }
            stats.push(stats_of_rows(&rows, columns.len()));
            relations.push(FragmentRelation {
                name: view.name,
                view: ViewDef::new(view.clone()),
                access: None,
                place: WhereSpec::Table { table, columns },
            });
        }
        FragmentSpec::KeyValue { view } => {
            check_view(view)?;
            if view.head.is_empty() {
                return Err(Error::BadFragment(
                    "key-value view needs a key column".into(),
                ));
            }
            let rows = evaluate_view(base, view);
            let columns = head_columns(view);
            let namespace = view.name.as_str().to_string();
            // Group rows per key: a key maps to the *list* of its value
            // tuples (like a Redis list), so non-unique keys keep every
            // row. Value tuples are sorted within their key so a packed
            // entry is a canonical function of the row *set* — incremental
            // DML maintenance repacks affected keys byte-identically.
            let mut groups: HashMap<Value, Vec<Value>> = HashMap::new();
            for r in &rows {
                groups
                    .entry(r[0].clone())
                    .or_default()
                    .push(Value::array(r[1..].iter().cloned()));
            }
            for (k, mut vrows) in groups {
                vrows.sort();
                stores.kv.put(&namespace, k, &[Value::array(vrows)]);
            }
            let pattern = {
                let mut s = String::from("i");
                s.extend(std::iter::repeat_n('o', columns.len() - 1));
                AccessPattern::parse(&s)
            };
            stats.push(stats_of_rows(&rows, columns.len()));
            relations.push(FragmentRelation {
                name: view.name,
                view: ViewDef::new(view.clone()),
                access: Some(pattern),
                place: WhereSpec::Namespace {
                    namespace,
                    value_columns: columns[1..].to_vec(),
                },
            });
        }
        FragmentSpec::DocRows { view, index_on } => {
            check_view(view)?;
            let rows = evaluate_view(base, view);
            let columns = head_columns(view);
            let collection = view.name.as_str().to_string();
            stores.doc.insert_many(
                &collection,
                rows.iter()
                    .map(|r| Value::object_owned(columns.iter().cloned().zip(r.iter().cloned()))),
            );
            for ix in index_on {
                if !columns.contains(ix) {
                    return Err(Error::BadFragment(format!(
                        "index column {ix} not in view head"
                    )));
                }
                stores.doc.create_index(&collection, ix);
            }
            stats.push(stats_of_rows(&rows, columns.len()));
            relations.push(FragmentRelation {
                name: view.name,
                view: ViewDef::new(view.clone()),
                access: None,
                place: WhereSpec::Collection {
                    collection,
                    columns,
                },
            });
        }
        FragmentSpec::ParRows {
            view,
            index_on,
            partitions,
        } => {
            check_view(view)?;
            let rows = evaluate_view(base, view);
            let columns = head_columns(view);
            let dataset = view.name.as_str().to_string();
            let colrefs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
            let parts = if *partitions == 0 {
                estocada_parstore::ParStore::default_partitions()
            } else {
                *partitions
            };
            stores
                .par
                .create_dataset(&dataset, &colrefs, rows.iter().cloned(), parts);
            let mut indexed = Vec::new();
            if !index_on.is_empty() {
                for ix in index_on {
                    let pos = columns.iter().position(|c| c == ix).ok_or_else(|| {
                        Error::BadFragment(format!("index column {ix} not in view head"))
                    })?;
                    indexed.push(pos);
                }
                let ixrefs: Vec<&str> = index_on.iter().map(|s| s.as_str()).collect();
                stores.par.build_key_index(&dataset, &ixrefs);
            }
            stats.push(stats_of_rows(&rows, columns.len()));
            relations.push(FragmentRelation {
                name: view.name,
                view: ViewDef::new(view.clone()),
                access: None,
                place: WhereSpec::ParDataset {
                    dataset,
                    columns,
                    indexed,
                },
            });
        }
        FragmentSpec::NativeDoc { dataset } => {
            let ds = datasets
                .get(dataset)
                .ok_or_else(|| Error::UnknownName(dataset.clone()))?;
            let docs = match &ds.content {
                DatasetContent::Documents(docs) => docs,
                DatasetContent::Relational(_) => {
                    return Err(Error::BadFragment(format!(
                        "{dataset} is not a document dataset"
                    )))
                }
            };
            stores
                .doc
                .insert_many(dataset, docs.iter().map(|d| d.body.clone()));
            let src = DocRelations::for_collection(dataset);
            let frag = DocRelations::for_collection(&format!("{dataset}F"));
            let roles = [
                (frag.doc, src.doc, DocRole::Doc, 2usize),
                (frag.root, src.root, DocRole::Root, 2),
                (frag.node, src.node, DocRole::Node, 2),
                (frag.child, src.child, DocRole::Child, 2),
                (frag.desc, src.desc, DocRole::Desc, 2),
                (frag.val, src.val, DocRole::Val, 2),
            ];
            for (fname, sname, role, arity) in roles {
                let view = identity_view(fname, sname, arity);
                let nrows = base.facts_of(sname).count() as u64;
                stats.push(FragmentStats {
                    rows: nrows,
                    distinct: vec![nrows; arity],
                    bytes: nrows * 16,
                });
                relations.push(FragmentRelation {
                    name: fname,
                    view: ViewDef::new(view),
                    access: None,
                    place: WhereSpec::NativeDocs {
                        collection: dataset.clone(),
                        role,
                    },
                });
            }
        }
        FragmentSpec::NativeTables { dataset, only } => {
            let ds = datasets
                .get(dataset)
                .ok_or_else(|| Error::UnknownName(dataset.clone()))?;
            let tables = match &ds.content {
                DatasetContent::Relational(tables) => tables,
                DatasetContent::Documents(_) => {
                    return Err(Error::BadFragment(format!(
                        "{dataset} is not a relational dataset"
                    )))
                }
            };
            for t in tables {
                if let Some(keep) = only {
                    if !keep
                        .iter()
                        .any(|k| k.as_str() == t.encoding.relation.as_str().as_ref())
                    {
                        continue;
                    }
                }
                let tname = t.encoding.relation.as_str().to_string();
                let columns = t.encoding.columns.clone();
                let colrefs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
                stores.rel.create_table(&tname, &colrefs);
                stores.rel.insert_many(&tname, t.rows.iter().cloned());
                if let Some(key) = &t.encoding.key {
                    for k in key {
                        stores.rel.create_index(&tname, k, IndexKind::BTree);
                    }
                }
                let fname = Symbol::intern(&format!("{tname}F"));
                let view = identity_view(fname, t.encoding.relation, columns.len());
                stats.push(stats_of_rows(&t.rows, columns.len()));
                relations.push(FragmentRelation {
                    name: fname,
                    view: ViewDef::new(view),
                    access: None,
                    place: WhereSpec::Table {
                        table: tname,
                        columns,
                    },
                });
            }
        }
        FragmentSpec::TextIndex { table } => {
            // Find the owning relational dataset and its text columns.
            let mut found = None;
            for ds in datasets.values() {
                if let DatasetContent::Relational(tables) = &ds.content {
                    for t in tables {
                        if t.encoding.relation.as_str().as_ref() == table.as_str() {
                            found = Some(t.clone());
                        }
                    }
                }
            }
            let t = found.ok_or_else(|| Error::UnknownName(table.clone()))?;
            if t.text_columns.is_empty() {
                return Err(Error::BadFragment(format!(
                    "table {table} declares no text columns"
                )));
            }
            let key_col = t
                .encoding
                .key
                .as_ref()
                .and_then(|k| k.first())
                .and_then(|k| t.encoding.columns.iter().position(|c| c == k))
                .ok_or_else(|| Error::BadFragment(format!("table {table} has no key")))?;
            let text_cols: Vec<usize> = t
                .text_columns
                .iter()
                .filter_map(|c| t.encoding.columns.iter().position(|x| x == c))
                .collect();
            let mut postings = 0u64;
            for row in &t.rows {
                let text: Vec<&str> = text_cols.iter().filter_map(|c| row[*c].as_str()).collect();
                stores
                    .text
                    .index_document(table, row[key_col].clone(), &text.join(" "));
                postings += 1;
            }
            let src = Dataset::terms_relation(table);
            let fname = Symbol::intern(&format!("{table}F_Text"));
            let view = identity_view(fname, src, 2);
            stats.push(FragmentStats {
                rows: postings * 8, // rough: ~8 indexed terms per row
                distinct: vec![postings * 4, postings],
                bytes: postings * 64,
            });
            relations.push(FragmentRelation {
                name: fname,
                view: ViewDef::new(view),
                access: Some(AccessPattern::parse("io")),
                place: WhereSpec::TextIndex {
                    index: table.clone(),
                },
            });
        }
    }

    Ok(FragmentMeta {
        id: id.to_string(),
        system,
        spec,
        relations,
        stats,
        credentials: format!("sim://{id}"),
        use_count: Default::default(),
    })
}

/// Remove a fragment's physical artifacts from the stores.
pub fn drop_fragment(meta: &FragmentMeta, stores: &Stores) {
    for r in &meta.relations {
        match &r.place {
            WhereSpec::Table { table, .. } => {
                stores.rel.drop_table(table);
            }
            WhereSpec::Namespace { namespace, .. } => {
                stores.kv.drop_namespace(namespace);
            }
            WhereSpec::Collection { collection, .. } => {
                stores.doc.drop_collection(collection);
            }
            WhereSpec::NativeDocs { collection, .. } => {
                stores.doc.drop_collection(collection);
            }
            WhereSpec::ParDataset { dataset, .. } => {
                stores.par.drop_dataset(dataset);
            }
            WhereSpec::TextIndex { index } => {
                stores.text.drop_index(index);
            }
        }
    }
}

fn check_view(view: &Cq) -> Result<()> {
    if !view.is_safe() {
        return Err(Error::BadFragment(format!(
            "view {} is not a safe conjunctive query",
            view.name
        )));
    }
    Ok(())
}

/// `V(x1..xn) :- R(x1..xn)` — the identity view of native fragments.
fn identity_view(vname: Symbol, source: Symbol, arity: usize) -> Cq {
    let vars: Vec<Term> = (0..arity as u32).map(Term::var).collect();
    Cq::new(
        vname,
        vars.clone(),
        vec![estocada_pivot::Atom::new(source, vars)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TableData;
    use crate::system::Latencies;
    use estocada_pivot::encoding::relational::TableEncoding;
    use estocada_pivot::{CqBuilder, IdGen};

    fn setup() -> (Instance, HashMap<String, Dataset>, Stores) {
        let ds = Dataset::relational(
            "sales",
            vec![TableData {
                encoding: TableEncoding::new("Users", &["uid", "name", "tier"], Some(&["uid"])),
                rows: (0..20)
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            Value::str(format!("user{i}")),
                            Value::str(if i % 2 == 0 { "gold" } else { "free" }),
                        ]
                    })
                    .collect(),
                text_columns: vec![],
            }],
        );
        let mut ids = IdGen::new();
        let facts = ds.pivot_facts(&mut ids);
        let base = fact_base(&facts);
        let mut datasets = HashMap::new();
        datasets.insert("sales".to_string(), ds);
        (base, datasets, Stores::new(Latencies::zero()))
    }

    #[test]
    fn evaluate_view_projects_and_dedups() {
        let (base, _, _) = setup();
        let v = CqBuilder::new("Tiers")
            .head_vars(["t"])
            .atom("Users", |a| a.v("u").v("n").v("t"))
            .build();
        let rows = evaluate_view(&base, &v);
        assert_eq!(rows.len(), 2); // gold, free
    }

    #[test]
    fn table_fragment_materializes_with_index() {
        let (base, datasets, stores) = setup();
        let v = CqBuilder::new("GoldUsers")
            .head_vars(["uid", "name"])
            .atom("Users", |a| a.v("uid").v("name").c("gold"))
            .build();
        let meta = materialize(
            "f1",
            FragmentSpec::Table {
                view: v,
                index_on: vec!["uid".into()],
            },
            &base,
            &datasets,
            &stores,
        )
        .unwrap();
        assert_eq!(stores.rel.row_count("GoldUsers"), 10);
        assert_eq!(meta.stats[0].rows, 10);
        assert_eq!(meta.stats[0].distinct[0], 10);
    }

    #[test]
    fn kv_fragment_keys_on_first_head_column() {
        let (base, datasets, stores) = setup();
        let v = CqBuilder::new("UserByIdKV")
            .head_vars(["uid", "name", "tier"])
            .atom("Users", |a| a.v("uid").v("name").v("tier"))
            .build();
        let meta = materialize(
            "f2",
            FragmentSpec::KeyValue { view: v },
            &base,
            &datasets,
            &stores,
        )
        .unwrap();
        // Rows are packed as a list of value tuples under the key.
        assert_eq!(
            stores.kv.get("UserByIdKV", &Value::Int(3)),
            Some(vec![Value::array([Value::array([
                Value::str("user3"),
                Value::str("free")
            ])])])
        );
        assert_eq!(
            format!("{}", meta.relations[0].access.as_ref().unwrap()),
            "ioo"
        );
    }

    #[test]
    fn kv_fragment_keeps_all_rows_of_non_unique_keys() {
        let (base, datasets, stores) = setup();
        // Key on tier: only two keys, many rows each.
        let v = CqBuilder::new("ByTierKV")
            .head_vars(["tier", "uid"])
            .atom("Users", |a| a.v("uid").v("n").v("tier"))
            .build();
        materialize(
            "f8",
            FragmentSpec::KeyValue { view: v },
            &base,
            &datasets,
            &stores,
        )
        .unwrap();
        let gold = stores.kv.get("ByTierKV", &Value::str("gold")).unwrap();
        match &gold[0] {
            Value::Array(rows) => assert_eq!(rows.len(), 10),
            other => panic!("expected packed rows, got {other}"),
        }
    }

    #[test]
    fn doc_rows_fragment_builds_flat_documents() {
        let (base, datasets, stores) = setup();
        let v = CqBuilder::new("UserDocs")
            .head_vars(["uid", "tier"])
            .atom("Users", |a| a.v("uid").v("n").v("tier"))
            .build();
        materialize(
            "f3",
            FragmentSpec::DocRows {
                view: v,
                index_on: vec!["uid".into()],
            },
            &base,
            &datasets,
            &stores,
        )
        .unwrap();
        let found = stores.doc.find(
            "UserDocs",
            &estocada_docstore::Filter::all().eq("uid", 4i64),
            None,
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].get("tier"), Some(&Value::str("gold")));
    }

    #[test]
    fn par_rows_fragment_with_key_index() {
        let (base, datasets, stores) = setup();
        let v = CqBuilder::new("UsersPar")
            .head_vars(["uid", "tier"])
            .atom("Users", |a| a.v("uid").v("n").v("tier"))
            .build();
        let meta = materialize(
            "f4",
            FragmentSpec::ParRows {
                view: v,
                index_on: vec!["uid".into()],
                partitions: 2,
            },
            &base,
            &datasets,
            &stores,
        )
        .unwrap();
        assert_eq!(stores.par.len("UsersPar"), 20);
        match &meta.relations[0].place {
            WhereSpec::ParDataset { indexed, .. } => assert_eq!(indexed, &vec![0]),
            other => panic!("unexpected place {other:?}"),
        }
    }

    #[test]
    fn native_tables_fragment_loads_and_indexes() {
        let (base, datasets, stores) = setup();
        let meta = materialize(
            "f5",
            FragmentSpec::NativeTables {
                dataset: "sales".into(),
                only: None,
            },
            &base,
            &datasets,
            &stores,
        )
        .unwrap();
        assert_eq!(stores.rel.row_count("Users"), 20);
        assert_eq!(meta.relations.len(), 1);
        assert_eq!(meta.relations[0].name, Symbol::intern("UsersF"));
    }

    #[test]
    fn drop_fragment_removes_artifacts() {
        let (base, datasets, stores) = setup();
        let v = CqBuilder::new("Tmp")
            .head_vars(["uid"])
            .atom("Users", |a| a.v("uid").v("n").v("t"))
            .build();
        let meta = materialize(
            "f6",
            FragmentSpec::Table {
                view: v,
                index_on: vec![],
            },
            &base,
            &datasets,
            &stores,
        )
        .unwrap();
        assert_eq!(stores.rel.row_count("Tmp"), 20);
        drop_fragment(&meta, &stores);
        assert_eq!(stores.rel.row_count("Tmp"), 0);
    }

    #[test]
    fn bad_index_column_rejected() {
        let (base, datasets, stores) = setup();
        let v = CqBuilder::new("Bad")
            .head_vars(["uid"])
            .atom("Users", |a| a.v("uid").v("n").v("t"))
            .build();
        let err = materialize(
            "f7",
            FragmentSpec::Table {
                view: v,
                index_on: vec!["nope".into()],
            },
            &base,
            &datasets,
            &stores,
        );
        assert!(matches!(err, Err(Error::BadFragment(_))));
    }
}
