//! The incremental write path: DML (`insert` / `delete` / `upsert`) into
//! registered datasets with **incremental fragment maintenance**.
//!
//! # The maintenance model
//!
//! A DML batch flows through three layers, each maintained from the deltas
//! alone — no fragment is ever rematerialized:
//!
//! 1. **Dataset rows** (the registered [`crate::dataset::Dataset`] content,
//!    the ground truth): deleted rows are removed one instance per request,
//!    inserted rows appended.
//! 2. **The staged fact base**: every dataset row contributes the pivot
//!    facts of [`crate::dataset::TableData::row_facts`]. The maintenance
//!    state counts rows per fact (`fact_counts`); a fact is retracted from
//!    the [`Instance`] only when its count reaches zero and inserted only
//!    on the zero→positive crossing, because the pivot model has set
//!    semantics (two rows can share a `{table}_Terms` fact).
//! 3. **Fragment stores**: each *view* fragment (table / key-value /
//!    doc-rows / par-rows) carries a per-row **support count** — how many
//!    body homomorphisms derive the row. Deltas are discovered with the
//!    semi-naive delta chase ([`find_homs_delta`]): the delete phase
//!    re-stamps the doomed facts into a fresh epoch, enumerates exactly
//!    the homomorphisms flowing through them, and only then retracts;
//!    the insert phase inserts the new facts and enumerates the
//!    homomorphisms they enable. A store row is deleted on the
//!    support's →0 crossing and inserted on the 0→ crossing (counting
//!    solution to the deletion problem — no tombstones needed). *Native*
//!    fragments (native-tables, text-index) mirror the dataset rows 1:1
//!    and receive the raw row deltas directly, preserving physical
//!    duplicate-row parity with a fresh rematerialization.
//!
//! Batches are **net-delta deduplicated** at both levels: a row deleted
//! and re-inserted in one batch cancels out before any store is touched.
//!
//! # Epochs and staleness
//!
//! Every batch bumps the engine's **data epoch** — distinct from the
//! catalog epoch, so cached rewrite plans survive writes — and advances
//! every fragment's **high-water mark** to it once its stores are
//! maintained. `high_water(fragment) == data_epoch()` is the staleness
//! invariant: a reader that observes the data epoch is guaranteed the
//! fragments reflect it, because DML holds `&mut Estocada` (writes are
//! serialized against the shared-read query path at the borrow level).
//!
//! DDL invalidates the maintenance state wholesale (supports were computed
//! against the previous catalog); it is re-seeded lazily on the next write.

use crate::catalog::{FragmentSpec, FragmentStats, WhereSpec};
use crate::dataset::DatasetContent;
use crate::error::{Error, Result};
use crate::evaluator::Estocada;
use crate::materialize::{project_head, stats_of_rows};
use estocada_chase::{find_homs, find_homs_delta, Elem, HomConfig, Instance};
use estocada_pivot::{Cq, Symbol, Value};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Incremental-maintenance bookkeeping, seeded lazily on the first DML
/// batch and dropped by any DDL operation.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceState {
    /// `(pred, ground args)` → number of dataset rows encoding this fact.
    fact_counts: HashMap<(Symbol, Vec<Elem>), u64>,
    /// Counting (view) fragment relation → distinct head row → number of
    /// body homomorphisms deriving it.
    supports: HashMap<Symbol, HashMap<Vec<Value>, u64>>,
    /// Fragment id → data epoch through which its stores are maintained.
    high_water: HashMap<String, u64>,
}

impl MaintenanceState {
    /// The data epoch through which `fragment`'s stores are maintained
    /// (`None` for unknown fragments).
    pub fn high_water(&self, fragment: &str) -> Option<u64> {
        self.high_water.get(fragment).copied()
    }

    /// The supported rows of a counting fragment relation (row → support),
    /// `None` for native/raw relations.
    pub fn supported_rows(&self, relation: Symbol) -> Option<&HashMap<Vec<Value>, u64>> {
        self.supports.get(&relation)
    }
}

/// Per-fragment-relation effect of one DML batch.
#[derive(Debug, Clone)]
pub struct FragmentDelta {
    /// Owning fragment id.
    pub fragment: String,
    /// The maintained fragment relation.
    pub relation: String,
    /// Rows removed from the backing store.
    pub store_deletes: usize,
    /// Rows added to the backing store.
    pub store_inserts: usize,
    /// `"counting"` for view fragments, `"raw"` for native mirrors.
    pub mode: &'static str,
}

/// What one DML batch did: row counts, the new data epoch, and the delta
/// each affected fragment relation absorbed.
#[derive(Debug, Clone)]
pub struct DmlReport {
    /// Target dataset.
    pub dataset: String,
    /// Target table.
    pub table: String,
    /// Rows inserted into the dataset.
    pub inserted: usize,
    /// Rows deleted from the dataset.
    pub deleted: usize,
    /// The data epoch this batch established.
    pub data_epoch: u64,
    /// Store-level deltas, one entry per fragment relation that changed.
    pub fragment_deltas: Vec<FragmentDelta>,
    /// Wall-clock time of the whole batch (validation through stats).
    pub maintenance_time: Duration,
}

/// Whether a fragment's relations are maintained by support counting
/// (view fragments) rather than raw 1:1 row mirroring.
fn is_counting(spec: &FragmentSpec) -> bool {
    matches!(
        spec,
        FragmentSpec::Table { .. }
            | FragmentSpec::KeyValue { .. }
            | FragmentSpec::DocRows { .. }
            | FragmentSpec::ParRows { .. }
    )
}

/// Count every body homomorphism per projected head row — the seed of a
/// counting fragment's support map. The same enumeration (sans counting)
/// drives [`crate::materialize::evaluate_view`], so `supports.keys()` is
/// exactly the materialized distinct row set.
fn row_supports(base: &Instance, view: &Cq) -> HashMap<Vec<Value>, u64> {
    let homs = find_homs(base, &view.body, &HashMap::new(), HomConfig::default());
    let mut out: HashMap<Vec<Value>, u64> = HashMap::new();
    for h in homs {
        if let Some(row) = project_head(view, &h) {
            *out.entry(row).or_insert(0) += 1;
        }
    }
    out
}

/// Ground fact key: `(pred, interned args)`.
fn fact_key(f: &estocada_pivot::Fact) -> (Symbol, Vec<Elem>) {
    (f.pred, f.args.iter().map(Elem::constant).collect())
}

/// Net store-level operations for one fragment relation.
#[derive(Debug, Default)]
struct StoreOps {
    deletes: Vec<Vec<Value>>,
    inserts: Vec<Vec<Value>>,
}

impl Estocada {
    /// Insert rows into a registered relational dataset's table,
    /// maintaining every fragment incrementally. Bumps the data epoch.
    pub fn insert_rows(
        &mut self,
        dataset: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<DmlReport> {
        self.apply_dml(dataset, table, Vec::new(), rows)
    }

    /// Delete rows (each entry removes **one** matching stored row) from a
    /// registered relational dataset's table, maintaining every fragment
    /// incrementally. A row with no match rejects the whole batch
    /// atomically with [`Error::Dml`]. Bumps the data epoch.
    pub fn delete_rows(
        &mut self,
        dataset: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<DmlReport> {
        self.apply_dml(dataset, table, rows, Vec::new())
    }

    /// Upsert rows by the table's declared key: every existing row whose
    /// key matches an upserted row is deleted, then the new rows are
    /// inserted. Requires a declared key ([`Error::Dml`] otherwise).
    /// Bumps the data epoch.
    pub fn upsert_rows(
        &mut self,
        dataset: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<DmlReport> {
        let t = self.table_data(dataset, table)?;
        let key_cols: Vec<usize> = t
            .encoding
            .key
            .as_ref()
            .filter(|k| !k.is_empty())
            .ok_or_else(|| Error::Dml(format!("upsert into {table} needs a declared key")))?
            .iter()
            .filter_map(|k| t.encoding.columns.iter().position(|c| c == k))
            .collect();
        let arity = t.encoding.columns.len();
        for r in &rows {
            if r.len() != arity {
                return Err(Error::Dml(format!(
                    "row arity {} does not match table {table} ({arity} columns)",
                    r.len()
                )));
            }
        }
        let keys: Vec<Vec<Value>> = rows
            .iter()
            .map(|r| key_cols.iter().map(|c| r[*c].clone()).collect())
            .collect();
        let deletes: Vec<Vec<Value>> = t
            .rows
            .iter()
            .filter(|row| {
                let k: Vec<Value> = key_cols.iter().map(|c| row[*c].clone()).collect();
                keys.contains(&k)
            })
            .cloned()
            .collect();
        self.apply_dml(dataset, table, deletes, rows)
    }

    /// The maintenance bookkeeping, once seeded by a first write (`None`
    /// before any DML or right after DDL).
    pub fn maintenance(&self) -> Option<&MaintenanceState> {
        self.maint.as_ref()
    }

    /// Resolve `dataset.table` to its [`crate::dataset::TableData`].
    fn table_data(&self, dataset: &str, table: &str) -> Result<&crate::dataset::TableData> {
        let ds = self
            .datasets
            .get(dataset)
            .ok_or_else(|| Error::UnknownName(dataset.to_string()))?;
        let DatasetContent::Relational(tables) = &ds.content else {
            return Err(Error::Dml(format!(
                "{dataset} is a document dataset; the incremental DML path covers relational datasets"
            )));
        };
        tables
            .iter()
            .find(|t| t.encoding.relation.as_str().as_ref() == table)
            .ok_or_else(|| Error::Dml(format!("unknown table {table} in dataset {dataset}")))
    }

    /// Seed the maintenance state from the current datasets, fact base and
    /// catalog (no-op when already seeded; DDL clears it).
    fn seed_maintenance(&mut self) {
        if self.maint.is_some() {
            return;
        }
        let base = self.base();
        let mut fact_counts: HashMap<(Symbol, Vec<Elem>), u64> = HashMap::new();
        for ds in self.datasets.values() {
            if let DatasetContent::Relational(tables) = &ds.content {
                for t in tables {
                    for row in &t.rows {
                        for f in t.row_facts(row) {
                            *fact_counts.entry(fact_key(&f)).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        let mut supports = HashMap::new();
        let mut high_water = HashMap::new();
        for fm in self.catalog.fragments() {
            high_water.insert(fm.id.clone(), self.data_epoch);
            if is_counting(&fm.spec) {
                for r in &fm.relations {
                    supports.insert(r.name, row_supports(base, &r.view.view));
                }
            }
        }
        self.maint = Some(MaintenanceState {
            fact_counts,
            supports,
            high_water,
        });
    }

    /// The whole incremental write path: validate, mutate the dataset rows,
    /// net the fact deltas, run the two-phase (deletes, then inserts)
    /// semi-naive delta chase over every counting fragment view, apply the
    /// store deltas, refresh affected statistics, and advance the data
    /// epoch + high-water marks.
    fn apply_dml(
        &mut self,
        dataset: &str,
        table: &str,
        deletes: Vec<Vec<Value>>,
        inserts: Vec<Vec<Value>>,
    ) -> Result<DmlReport> {
        let t0 = Instant::now();

        // -- validate (atomic: reject before any mutation) ------------------
        {
            let t = self.table_data(dataset, table)?;
            let arity = t.encoding.columns.len();
            for r in deletes.iter().chain(inserts.iter()) {
                if r.len() != arity {
                    return Err(Error::Dml(format!(
                        "row arity {} does not match table {table} ({arity} columns)",
                        r.len()
                    )));
                }
            }
            let mut avail: HashMap<&[Value], usize> = HashMap::new();
            for row in &t.rows {
                *avail.entry(row.as_slice()).or_insert(0) += 1;
            }
            for d in &deletes {
                let n = avail.entry(d.as_slice()).or_insert(0);
                if *n == 0 {
                    return Err(Error::Dml(format!(
                        "row to delete not found in {table}: {d:?}"
                    )));
                }
                *n -= 1;
            }
        }

        self.seed_maintenance();
        self.base(); // ensure the fact base is built before disjoint borrows

        // -- net fact deltas (batch-level dedup) ----------------------------
        // A fact appearing in both a deleted and an inserted row nets out
        // here, before the instance or any store is touched.
        let (delta, touch_order) = {
            let t = self.table_data(dataset, table)?;
            let mut delta: HashMap<(Symbol, Vec<Elem>), i64> = HashMap::new();
            let mut order: Vec<(Symbol, Vec<Elem>)> = Vec::new();
            let mut note = |key: (Symbol, Vec<Elem>), d: i64| {
                let e = delta.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    0
                });
                *e += d;
            };
            for row in &deletes {
                for f in t.row_facts(row) {
                    note(fact_key(&f), -1);
                }
            }
            for row in &inserts {
                for f in t.row_facts(row) {
                    note(fact_key(&f), 1);
                }
            }
            (delta, order)
        };

        // -- mutate the dataset rows (the ground truth) ---------------------
        {
            let ds = self.datasets.get_mut(dataset).expect("validated above");
            let DatasetContent::Relational(tables) = &mut ds.content else {
                unreachable!("validated above");
            };
            let t = tables
                .iter_mut()
                .find(|t| t.encoding.relation.as_str().as_ref() == table)
                .expect("validated above");
            for d in &deletes {
                let pos = t.rows.iter().position(|r| r == d).expect("validated above");
                t.rows.remove(pos);
            }
            t.rows.extend(inserts.iter().cloned());
        }

        // -- classify fact deltas through the multiplicity counts -----------
        let mut minus: Vec<(Symbol, Vec<Elem>)> = Vec::new();
        let mut plus: Vec<(Symbol, Vec<Elem>)> = Vec::new();
        {
            let maint = self.maint.as_mut().expect("seeded above");
            for key in touch_order {
                let d = delta[&key];
                if d == 0 {
                    continue;
                }
                let c = maint.fact_counts.entry(key.clone()).or_insert(0);
                let before = *c as i64;
                let after = before + d;
                debug_assert!(after >= 0, "fact multiplicity went negative");
                *c = after.max(0) as u64;
                if before > 0 && after <= 0 {
                    maint.fact_counts.remove(&key);
                    minus.push(key);
                } else if before == 0 && after > 0 {
                    plus.push(key);
                }
            }
        }

        // -- two-phase semi-naive delta chase over the fact base ------------
        let base = self.base.get_mut().expect("base built");
        // `(row, ±1)` hom deltas per counting fragment relation, in
        // enumeration order.
        let mut row_deltas: HashMap<Symbol, Vec<(Vec<Value>, i64)>> = HashMap::new();
        let hom_cfg = HomConfig::default();

        // Phase D: stamp the doomed facts into a fresh epoch, enumerate
        // every homomorphism flowing through at least one of them (each
        // exactly once, semi-naively), then retract.
        if !minus.is_empty() {
            let e_del = base.advance_epoch();
            let mut minus_ids = Vec::new();
            for (pred, args) in &minus {
                if let Some(id) = base.find_fact(*pred, args) {
                    base.touch(id);
                    minus_ids.push(id);
                }
            }
            let dix = base.delta_index(e_del);
            for fm in self.catalog.fragments() {
                if !is_counting(&fm.spec) {
                    continue;
                }
                for r in &fm.relations {
                    let view = &r.view.view;
                    for h in find_homs_delta(base, &view.body, &HashMap::new(), hom_cfg, &dix) {
                        if let Some(row) = project_head(view, &h) {
                            row_deltas.entry(r.name).or_default().push((row, -1));
                        }
                    }
                }
            }
            for id in minus_ids {
                base.retract(id);
            }
        }

        // Phase I: insert the new facts and enumerate every homomorphism
        // they enable.
        if !plus.is_empty() {
            let e_ins = base.advance_epoch();
            for (pred, args) in &plus {
                base.insert(*pred, args.clone());
            }
            let dix = base.delta_index(e_ins);
            for fm in self.catalog.fragments() {
                if !is_counting(&fm.spec) {
                    continue;
                }
                for r in &fm.relations {
                    let view = &r.view.view;
                    for h in find_homs_delta(base, &view.body, &HashMap::new(), hom_cfg, &dix) {
                        if let Some(row) = project_head(view, &h) {
                            row_deltas.entry(r.name).or_default().push((row, 1));
                        }
                    }
                }
            }
        }

        // -- roll hom deltas into the support counts; 0-crossings become
        // store operations ---------------------------------------------------
        let mut ops: HashMap<Symbol, StoreOps> = HashMap::new();
        let maint = self.maint.as_mut().expect("seeded above");
        for (rel, deltas) in &row_deltas {
            // Net per row first: a row deleted and re-derived in one batch
            // must not bounce through the store.
            let mut net: HashMap<&Vec<Value>, i64> = HashMap::new();
            let mut order: Vec<&Vec<Value>> = Vec::new();
            for (row, d) in deltas {
                let e = net.entry(row).or_insert_with(|| {
                    order.push(row);
                    0
                });
                *e += d;
            }
            let sup = maint.supports.entry(*rel).or_default();
            let o = ops.entry(*rel).or_default();
            for row in order {
                let d = net[row];
                if d == 0 {
                    continue;
                }
                let c = sup.entry(row.clone()).or_insert(0);
                let before = *c as i64;
                let after = before + d;
                debug_assert!(after >= 0, "row support went negative");
                *c = after.max(0) as u64;
                if before > 0 && after <= 0 {
                    sup.remove(row);
                    o.deletes.push(row.clone());
                } else if before == 0 && after > 0 {
                    o.inserts.push(row.clone());
                }
            }
        }

        // -- apply the deltas to the backing stores -------------------------
        // Deletes before inserts per fragment; raw fragments mirror the
        // dataset-row deltas 1:1 (duplicate physical rows and all).
        let mut fragment_deltas: Vec<FragmentDelta> = Vec::new();
        let mut stats_updates: Vec<(String, usize, FragmentStats)> = Vec::new();
        let post_rows: Vec<Vec<Value>> = {
            let ds = self.datasets.get(dataset).expect("validated above");
            let DatasetContent::Relational(tables) = &ds.content else {
                unreachable!()
            };
            tables
                .iter()
                .find(|t| t.encoding.relation.as_str().as_ref() == table)
                .expect("validated above")
                .rows
                .clone()
        };
        for fm in self.catalog.fragments() {
            for (ri, r) in fm.relations.iter().enumerate() {
                let mut applied: Option<(usize, usize, &'static str)> = None;
                match (&fm.spec, &r.place) {
                    // Counting view fragments.
                    (_, WhereSpec::Table { table: tname, .. }) if is_counting(&fm.spec) => {
                        if let Some(o) = ops.get(&r.name) {
                            if !o.deletes.is_empty() || !o.inserts.is_empty() {
                                self.stores.rel.delete_rows(tname, &o.deletes);
                                self.stores
                                    .rel
                                    .insert_many(tname, o.inserts.iter().cloned());
                                applied = Some((o.deletes.len(), o.inserts.len(), "counting"));
                            }
                        }
                    }
                    (_, WhereSpec::Namespace { namespace, .. }) => {
                        if let Some(o) = ops.get(&r.name) {
                            if !o.deletes.is_empty() || !o.inserts.is_empty() {
                                let sup = maint.supports.get(&r.name).expect("seeded");
                                // Repack every key a 0-crossing row touches,
                                // canonically (sorted value tuples — the
                                // same packing materialize writes).
                                let mut affected: Vec<&Value> = o
                                    .deletes
                                    .iter()
                                    .chain(o.inserts.iter())
                                    .map(|row| &row[0])
                                    .collect();
                                affected.sort();
                                affected.dedup();
                                for key in affected {
                                    let mut vrows: Vec<Value> = sup
                                        .keys()
                                        .filter(|row| &row[0] == key)
                                        .map(|row| Value::array(row[1..].iter().cloned()))
                                        .collect();
                                    if vrows.is_empty() {
                                        self.stores.kv.delete(namespace, key);
                                    } else {
                                        vrows.sort();
                                        self.stores.kv.put(
                                            namespace,
                                            key.clone(),
                                            &[Value::array(vrows)],
                                        );
                                    }
                                }
                                applied = Some((o.deletes.len(), o.inserts.len(), "counting"));
                            }
                        }
                    }
                    (
                        _,
                        WhereSpec::Collection {
                            collection,
                            columns,
                        },
                    ) => {
                        if let Some(o) = ops.get(&r.name) {
                            if !o.deletes.is_empty() || !o.inserts.is_empty() {
                                let to_doc = |row: &Vec<Value>| {
                                    Value::object_owned(
                                        columns.iter().cloned().zip(row.iter().cloned()),
                                    )
                                };
                                let dels: Vec<Value> = o.deletes.iter().map(to_doc).collect();
                                self.stores.doc.remove_docs(collection, &dels);
                                self.stores
                                    .doc
                                    .insert_many(collection, o.inserts.iter().map(to_doc));
                                applied = Some((o.deletes.len(), o.inserts.len(), "counting"));
                            }
                        }
                    }
                    (_, WhereSpec::ParDataset { dataset: dname, .. }) => {
                        if let Some(o) = ops.get(&r.name) {
                            if !o.deletes.is_empty() || !o.inserts.is_empty() {
                                self.stores.par.delete_rows(dname, &o.deletes);
                                self.stores
                                    .par
                                    .insert_rows(dname, o.inserts.iter().cloned());
                                applied = Some((o.deletes.len(), o.inserts.len(), "counting"));
                            }
                        }
                    }
                    // Raw mirrors of the mutated table.
                    (
                        FragmentSpec::NativeTables { dataset: d, .. },
                        WhereSpec::Table { table: tname, .. },
                    ) if d == dataset
                        && tname == table
                        && (!deletes.is_empty() || !inserts.is_empty()) =>
                    {
                        self.stores.rel.delete_rows(tname, &deletes);
                        self.stores.rel.insert_many(tname, inserts.iter().cloned());
                        applied = Some((deletes.len(), inserts.len(), "raw"));
                    }
                    (FragmentSpec::TextIndex { table: tt }, WhereSpec::TextIndex { index })
                        if tt == table && (!deletes.is_empty() || !inserts.is_empty()) =>
                    {
                        let ds = self.datasets.get(dataset).expect("validated above");
                        let DatasetContent::Relational(tables) = &ds.content else {
                            unreachable!()
                        };
                        let t = tables
                            .iter()
                            .find(|t| t.encoding.relation.as_str().as_ref() == table)
                            .expect("validated above");
                        let key_col = t
                            .encoding
                            .key
                            .as_ref()
                            .and_then(|k| k.first())
                            .and_then(|k| t.encoding.columns.iter().position(|c| c == k));
                        let text_cols: Vec<usize> = t
                            .text_columns
                            .iter()
                            .filter_map(|c| t.encoding.columns.iter().position(|x| x == c))
                            .collect();
                        let joined = |row: &Vec<Value>| {
                            let parts: Vec<&str> =
                                text_cols.iter().filter_map(|c| row[*c].as_str()).collect();
                            parts.join(" ")
                        };
                        let keyed = |row: &Vec<Value>| {
                            key_col.map(|k| row[k].clone()).unwrap_or(Value::Null)
                        };
                        let dels: Vec<(Value, String)> =
                            deletes.iter().map(|r| (keyed(r), joined(r))).collect();
                        self.stores.text.remove_documents(index, &dels);
                        for row in &inserts {
                            self.stores
                                .text
                                .index_document(index, keyed(row), &joined(row));
                        }
                        applied = Some((deletes.len(), inserts.len(), "raw"));
                    }
                    _ => {}
                }
                if let Some((sd, si, mode)) = applied {
                    // Refresh the relation's statistics the same way a
                    // rematerialization would compute them.
                    let arity = r.view.view.head.len();
                    let stats = match (&fm.spec, &r.place) {
                        (FragmentSpec::NativeTables { .. }, _) => stats_of_rows(&post_rows, arity),
                        (FragmentSpec::TextIndex { .. }, _) => {
                            let postings = post_rows.len() as u64;
                            FragmentStats {
                                rows: postings * 8,
                                distinct: vec![postings * 4, postings],
                                bytes: postings * 64,
                            }
                        }
                        _ => {
                            let rows: Vec<Vec<Value>> = maint
                                .supports
                                .get(&r.name)
                                .map(|s| s.keys().cloned().collect())
                                .unwrap_or_default();
                            stats_of_rows(&rows, arity)
                        }
                    };
                    stats_updates.push((fm.id.clone(), ri, stats));
                    fragment_deltas.push(FragmentDelta {
                        fragment: fm.id.clone(),
                        relation: r.name.as_str().to_string(),
                        store_deletes: sd,
                        store_inserts: si,
                        mode,
                    });
                }
            }
        }

        // -- advance the data epoch and every high-water mark ---------------
        self.data_epoch += 1;
        let epoch = self.data_epoch;
        for hw in maint.high_water.values_mut() {
            *hw = epoch;
        }
        for (fid, ri, stats) in stats_updates {
            if let Some(fm) = self
                .catalog
                .fragments_mut()
                .iter_mut()
                .find(|f| f.id == fid)
            {
                fm.stats[ri] = stats;
            }
        }

        Ok(DmlReport {
            dataset: dataset.to_string(),
            table: table.to_string(),
            inserted: inserts.len(),
            deleted: deletes.len(),
            data_epoch: epoch,
            fragment_deltas,
            maintenance_time: t0.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog::FragmentSpec;
    use crate::dataset::{Dataset, TableData};
    use crate::error::Error;
    use crate::evaluator::Estocada;
    use crate::system::Latencies;
    use estocada_pivot::encoding::relational::TableEncoding;
    use estocada_pivot::{CqBuilder, Value};

    fn shop(orders: &[(i64, i64, i64)]) -> Dataset {
        Dataset::relational(
            "shop",
            vec![
                TableData {
                    encoding: TableEncoding::new("Users", &["uid", "name"], Some(&["uid"])),
                    rows: vec![
                        vec![Value::Int(1), Value::str("ann")],
                        vec![Value::Int(2), Value::str("bob")],
                    ],
                    text_columns: vec![],
                },
                TableData {
                    encoding: TableEncoding::new(
                        "Orders",
                        &["oid", "uid", "amount"],
                        Some(&["oid"]),
                    ),
                    rows: orders
                        .iter()
                        .map(|(o, u, a)| vec![Value::Int(*o), Value::Int(*u), Value::Int(*a)])
                        .collect(),
                    text_columns: vec![],
                },
                TableData {
                    encoding: TableEncoding::new("Products", &["pid", "title"], Some(&["pid"])),
                    rows: vec![
                        vec![Value::Int(1), Value::str("wireless mouse")],
                        vec![Value::Int(2), Value::str("usb keyboard")],
                    ],
                    text_columns: vec!["title".into()],
                },
                TableData {
                    encoding: TableEncoding::new("Clicks", &["uid", "page"], None),
                    rows: vec![vec![Value::Int(1), Value::str("home")]],
                    text_columns: vec![],
                },
            ],
        )
    }

    /// One fragment of every maintainable kind over the shop dataset.
    fn deploy(ds: Dataset) -> Estocada {
        let mut est = Estocada::new(Latencies::zero());
        est.register_dataset(ds).unwrap();
        est.add_fragment(FragmentSpec::NativeTables {
            dataset: "shop".into(),
            only: None,
        })
        .unwrap();
        est.add_fragment(FragmentSpec::TextIndex {
            table: "Products".into(),
        })
        .unwrap();
        est.add_fragment(FragmentSpec::Table {
            view: CqBuilder::new("BigOrders")
                .head_vars(["uid", "name", "amount"])
                .atom("Users", |a| a.v("uid").v("name"))
                .atom("Orders", |a| a.v("oid").v("uid").v("amount"))
                .build(),
            index_on: vec![],
        })
        .unwrap();
        est.add_fragment(FragmentSpec::KeyValue {
            view: CqBuilder::new("OrdersKV")
                .head_vars(["uid", "oid", "amount"])
                .atom("Orders", |a| a.v("oid").v("uid").v("amount"))
                .build(),
        })
        .unwrap();
        est.add_fragment(FragmentSpec::DocRows {
            view: CqBuilder::new("OrderDocs")
                .head_vars(["oid", "uid", "amount"])
                .atom("Orders", |a| a.v("oid").v("uid").v("amount"))
                .build(),
            index_on: vec![],
        })
        .unwrap();
        est.add_fragment(FragmentSpec::ParRows {
            view: CqBuilder::new("OrdersPar")
                .head_vars(["uid", "oid", "amount"])
                .atom("Orders", |a| a.v("oid").v("uid").v("amount"))
                .build(),
            index_on: vec!["uid".into()],
            partitions: 0,
        })
        .unwrap();
        est
    }

    /// Canonicalized dump of every store object: `(label, contents)` with
    /// rows sorted, so physical insertion order is factored out.
    fn snapshot(est: &Estocada) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut tables = est.stores.rel.table_names();
        tables.sort();
        for t in tables {
            let mut rows = est.stores.rel.scan(&t).unwrap();
            rows.sort();
            out.push((format!("rel:{t}"), format!("{rows:?}")));
        }
        let mut nss = est.stores.kv.namespace_names();
        nss.sort();
        for ns in nss {
            let mut pairs = est.stores.kv.scan(&ns);
            pairs.sort();
            out.push((format!("kv:{ns}"), format!("{pairs:?}")));
        }
        let mut cols = est.stores.doc.collection_names();
        cols.sort();
        for c in cols {
            let mut docs = est.stores.doc.scan(&c);
            docs.sort();
            out.push((format!("doc:{c}"), format!("{docs:?}")));
        }
        let mut pds = est.stores.par.dataset_names();
        pds.sort();
        for d in pds {
            let mut rows = est.stores.par.scan(&d, &[], None);
            rows.sort();
            out.push((format!("par:{d}"), format!("{rows:?}")));
        }
        let mut docs = est.stores.text.documents("Products");
        docs.sort();
        out.push(("text:Products".into(), format!("{docs:?}")));
        out
    }

    fn assert_same_stores(incremental: &Estocada, fresh: &Estocada) {
        for (a, b) in snapshot(incremental).iter().zip(snapshot(fresh).iter()) {
            assert_eq!(a.0, b.0, "store object sets differ");
            assert_eq!(a.1, b.1, "{} diverged from rematerialization", a.0);
        }
    }

    #[test]
    fn mixed_dml_matches_a_fresh_rematerialization() {
        let mut est = deploy(shop(&[(1, 1, 10), (2, 1, 20), (3, 2, 30), (4, 2, 20)]));
        est.insert_rows(
            "shop",
            "Orders",
            vec![
                vec![Value::Int(5), Value::Int(1), Value::Int(70)],
                vec![Value::Int(6), Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        est.delete_rows(
            "shop",
            "Orders",
            vec![vec![Value::Int(2), Value::Int(1), Value::Int(20)]],
        )
        .unwrap();
        est.upsert_rows(
            "shop",
            "Users",
            vec![vec![Value::Int(2), Value::str("bobby")]],
        )
        .unwrap();
        est.upsert_rows(
            "shop",
            "Products",
            vec![vec![Value::Int(1), Value::str("wireless trackball mouse")]],
        )
        .unwrap();
        assert_eq!(est.data_epoch(), 4);
        let m = est.maintenance().expect("seeded by DML");
        for f in est.catalog().fragments() {
            assert_eq!(m.high_water(&f.id), Some(4));
        }

        let twin = deploy(est.datasets()["shop"].clone());
        assert_same_stores(&est, &twin);
    }

    #[test]
    fn every_high_water_mark_advances_with_the_data_epoch() {
        let mut est = deploy(shop(&[(1, 1, 10)]));
        est.insert_rows(
            "shop",
            "Orders",
            vec![vec![Value::Int(2), Value::Int(2), Value::Int(5)]],
        )
        .unwrap();
        est.insert_rows(
            "shop",
            "Orders",
            vec![vec![Value::Int(3), Value::Int(1), Value::Int(7)]],
        )
        .unwrap();
        assert_eq!(est.data_epoch(), 2);
        let m = est.maintenance().unwrap();
        for f in est.catalog().fragments() {
            assert_eq!(
                m.high_water(&f.id),
                Some(2),
                "fragment {} lags the data epoch",
                f.id
            );
        }
    }

    #[test]
    fn rejected_batches_are_atomic() {
        let mut est = deploy(shop(&[(1, 1, 10)]));
        let before = snapshot(&est);
        let err = est
            .delete_rows(
                "shop",
                "Orders",
                vec![
                    vec![Value::Int(1), Value::Int(1), Value::Int(10)],
                    vec![Value::Int(99), Value::Int(9), Value::Int(9)],
                ],
            )
            .unwrap_err();
        assert!(matches!(err, Error::Dml(_)), "got {err}");
        assert_eq!(
            est.data_epoch(),
            0,
            "rejected batch must not bump the epoch"
        );
        assert_eq!(
            snapshot(&est),
            before,
            "rejected batch must not touch stores"
        );
        let err = est
            .insert_rows("shop", "Orders", vec![vec![Value::Int(7)]])
            .unwrap_err();
        assert!(matches!(err, Error::Dml(_)), "got {err}");
        let err = est.insert_rows("nope", "Orders", vec![]).unwrap_err();
        assert!(matches!(err, Error::UnknownName(_)), "got {err}");
    }

    #[test]
    fn upsert_without_a_declared_key_is_rejected() {
        let mut est = deploy(shop(&[(1, 1, 10)]));
        let err = est
            .upsert_rows(
                "shop",
                "Clicks",
                vec![vec![Value::Int(1), Value::str("about")]],
            )
            .unwrap_err();
        assert!(matches!(err, Error::Dml(_)), "got {err}");
    }

    #[test]
    fn dml_keeps_cached_plans_and_serves_fresh_rows() {
        let mut est = deploy(shop(&[(1, 1, 10), (2, 2, 20)]));
        let sql = "SELECT o.oid, o.amount FROM Orders o WHERE o.uid = 1";
        let _ = est.query_sql(sql).unwrap();
        est.insert_rows(
            "shop",
            "Orders",
            vec![vec![Value::Int(3), Value::Int(1), Value::Int(30)]],
        )
        .unwrap();
        let r = est.query_sql(sql).unwrap();
        assert!(
            r.report.plan_cache.as_ref().is_some_and(|pc| pc.hit),
            "DML must not invalidate the rewrite-plan cache"
        );
        let mut rows = r.rows.clone();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(3), Value::Int(30)],
            ],
            "reader must observe the write"
        );
        // DDL, by contrast, drops the maintenance state with the epoch.
        assert!(est.maintenance().is_some());
        est.add_fragment(FragmentSpec::KeyValue {
            view: CqBuilder::new("UsersKV")
                .head_vars(["uid", "name"])
                .atom("Users", |a| a.v("uid").v("name"))
                .build(),
        })
        .unwrap();
        assert!(est.maintenance().is_none(), "DDL must reset maintenance");
    }

    #[test]
    fn dml_keeps_cached_lints() {
        // The lint cache keys on the catalog epoch alone; a DML batch
        // bumps only the data epoch, so the post-write query must be
        // served from the lint cache — no per-query re-analysis.
        let mut est = deploy(shop(&[(1, 1, 10), (2, 2, 20)]));
        let sql = "SELECT o.oid, o.amount FROM Orders o WHERE o.uid = 1";
        let first = est.query_sql(sql).unwrap();
        let lc = first.report.lint_cache.expect("lint activity");
        assert!(!lc.hit, "first run computes the lints");
        est.insert_rows(
            "shop",
            "Orders",
            vec![vec![Value::Int(3), Value::Int(1), Value::Int(30)]],
        )
        .unwrap();
        let before = est.lint_cache_stats();
        let r = est.query_sql(sql).unwrap();
        let lc = r.report.lint_cache.expect("lint activity");
        assert!(lc.hit, "DML must not invalidate the lint cache");
        assert_eq!(
            est.lint_cache_stats().misses,
            before.misses,
            "no lint recomputation after a write"
        );
        // DDL bumps the catalog epoch and genuinely invalidates lints.
        est.add_fragment(FragmentSpec::KeyValue {
            view: CqBuilder::new("UsersKV2")
                .head_vars(["uid", "name"])
                .atom("Users", |a| a.v("uid").v("name"))
                .build(),
        })
        .unwrap();
        let r = est.query_sql(sql).unwrap();
        assert!(
            r.report.lint_cache.is_some_and(|lc| !lc.hit),
            "DDL must invalidate cached lints"
        );
    }

    #[test]
    fn delete_only_touches_support_crossings() {
        // Orders 1 and 2 derive the same BigOrders row (uid, name, amount):
        // deleting one of them must leave the table row in place.
        let mut est = deploy(shop(&[(1, 1, 50), (2, 1, 50), (3, 2, 30)]));
        let r = est
            .delete_rows(
                "shop",
                "Orders",
                vec![vec![Value::Int(1), Value::Int(1), Value::Int(50)]],
            )
            .unwrap();
        let big = r
            .fragment_deltas
            .iter()
            .find(|d| d.relation == "BigOrders")
            .map(|d| (d.store_deletes, d.store_inserts));
        assert!(
            big.is_none(),
            "support 2 -> 1 must not delete the store row (got {big:?})"
        );
        let twin = deploy(est.datasets()["shop"].clone());
        assert_same_stores(&est, &twin);
        // Deleting the second copy crosses to zero and removes the row.
        let r = est
            .delete_rows(
                "shop",
                "Orders",
                vec![vec![Value::Int(2), Value::Int(1), Value::Int(50)]],
            )
            .unwrap();
        let big = r
            .fragment_deltas
            .iter()
            .find(|d| d.relation == "BigOrders")
            .expect("0-crossing must reach the store");
        assert_eq!((big.store_deletes, big.store_inserts), (1, 0));
        assert_eq!(big.mode, "counting");
        let twin = deploy(est.datasets()["shop"].clone());
        assert_same_stores(&est, &twin);
    }
}
