//! The mediator's cost model: "textbook formulas" over gathered fragment
//! statistics, with per-system request/tuple cost constants mirroring the
//! latency calibration.

use crate::system::{Latencies, SystemId};

/// Cost constants of one system (abstract cost units ≈ microseconds).
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Fixed cost per delegated request.
    pub per_request: f64,
    /// Cost per returned tuple.
    pub per_tuple: f64,
    /// Cost per tuple scanned inside the store.
    pub per_scan: f64,
}

/// The full cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Relational store costs.
    pub relational: CostParams,
    /// Key-value store costs.
    pub key_value: CostParams,
    /// Document store costs.
    pub document: CostParams,
    /// Text store costs.
    pub text: CostParams,
    /// Parallel store costs.
    pub parallel: CostParams,
    /// Mediator runtime cost per tuple flowing through an operator.
    pub runtime_per_tuple: f64,
    /// Additive penalty per plan backend whose circuit breaker is open
    /// (or that already failed in the current query) — large enough to
    /// make any healthy plan cheaper than any plan through a tripped
    /// store. When every breaker is closed no penalty applies, so the
    /// fault-free plan choice is identical to a model without it.
    pub open_circuit_penalty: f64,
}

impl CostModel {
    /// Derive cost constants from a latency calibration (ns → µs units).
    pub fn from_latencies(l: &Latencies) -> CostModel {
        let conv = |m: estocada_simkit::LatencyModel| CostParams {
            per_request: m.per_request_ns as f64 / 1_000.0 + 1.0,
            per_tuple: m.per_tuple_ns as f64 / 1_000.0 + 0.1,
            per_scan: m.per_scan_ns as f64 / 1_000.0 + 0.01,
        };
        CostModel {
            relational: conv(l.relational),
            key_value: conv(l.key_value),
            document: conv(l.document),
            text: conv(l.text),
            parallel: conv(l.parallel),
            runtime_per_tuple: 0.05,
            open_circuit_penalty: 1.0e12,
        }
    }

    /// `base` cost plus the unhealthy-backend penalty for `avoided`
    /// backends the plan touches. With `avoided == 0` this is exactly
    /// `base`.
    pub fn penalize(&self, base: f64, avoided: usize) -> f64 {
        base + self.open_circuit_penalty * avoided as f64
    }

    /// Parameters of one system.
    pub fn of(&self, id: SystemId) -> CostParams {
        match id {
            SystemId::Relational => self.relational,
            SystemId::KeyValue => self.key_value,
            SystemId::Document => self.document,
            SystemId::Text => self.text,
            SystemId::Parallel => self.parallel,
        }
    }

    /// Cost of one delegated request returning `rows` tuples after
    /// scanning `scanned` tuples inside the store.
    pub fn request_cost(&self, id: SystemId, rows: f64, scanned: f64) -> f64 {
        let p = self.of(id);
        p.per_request + p.per_tuple * rows.max(0.0) + p.per_scan * scanned.max(0.0)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::from_latencies(&Latencies::datacenter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_requests_are_cheapest() {
        let m = CostModel::default();
        assert!(
            m.request_cost(SystemId::KeyValue, 1.0, 0.0)
                < m.request_cost(SystemId::Document, 1.0, 0.0)
        );
        assert!(
            m.request_cost(SystemId::Document, 1.0, 0.0)
                < m.request_cost(SystemId::Parallel, 1.0, 0.0)
        );
    }

    #[test]
    fn penalty_is_identity_when_all_breakers_closed() {
        let m = CostModel::default();
        assert_eq!(m.penalize(123.5, 0), 123.5);
        // One tripped backend dwarfs any realistic plan cost.
        assert!(m.penalize(0.0, 1) > m.request_cost(SystemId::Parallel, 1e9, 1e9));
    }

    #[test]
    fn cost_grows_with_rows_and_scans() {
        let m = CostModel::default();
        assert!(
            m.request_cost(SystemId::Relational, 1000.0, 0.0)
                > m.request_cost(SystemId::Relational, 10.0, 0.0)
        );
        assert!(
            m.request_cost(SystemId::Parallel, 10.0, 100_000.0)
                > m.request_cost(SystemId::Parallel, 10.0, 0.0)
        );
    }
}
