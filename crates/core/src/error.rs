//! Mediator-level errors.

use estocada_chase::{ChaseError, RewriteError};
use estocada_engine::EngineError;
use std::fmt;

/// One failed plan attempt, as recorded by [`Error::AllPlansFailed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanFailure {
    /// Index of the attempted alternative (into the report's rewriting
    /// list).
    pub alternative: usize,
    /// The rewriting as text.
    pub rewriting: String,
    /// The store failure that killed the attempt.
    pub error: String,
}

/// Any failure surfaced by the ESTOCADA mediator.
#[derive(Debug)]
pub enum Error {
    /// Query text failed to parse.
    Parse(String),
    /// A name (dataset, table, fragment, column) was not found.
    UnknownName(String),
    /// Rewriting failed.
    Rewrite(RewriteError),
    /// No feasible rewriting covers the query with the current fragments.
    NoRewriting {
        /// The query name.
        query: String,
    },
    /// A rewriting exists but could not be translated to executable form
    /// (e.g. non-tree document pattern, unbound node-id join).
    Untranslatable(String),
    /// Runtime execution failed.
    Engine(EngineError),
    /// A chase run failed outside rewriting (e.g. materialization checks).
    Chase(ChaseError),
    /// Invalid fragment specification.
    BadFragment(String),
    /// A DML batch was rejected (unknown table, arity mismatch, missing
    /// row to delete, upsert without a declared key, …). Rejected batches
    /// are atomic: nothing was applied.
    Dml(String),
    /// DDL rejected by the static analyzer under
    /// [`crate::analyze::ValidationMode::Strict`]: the operation carried
    /// error-severity findings. The diagnostics list every finding
    /// (warnings included, for context); nothing was applied.
    Invalid(Vec<crate::analyze::Diagnostic>),
    /// Every executable rewriting of the query was attempted and every one
    /// failed on a store error (after retries, breaker rejections, and
    /// plan failover).
    AllPlansFailed {
        /// The query name.
        query: String,
        /// Every attempted plan with its failure, in attempt order.
        attempts: Vec<PlanFailure>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::UnknownName(n) => write!(f, "unknown name: {n}"),
            Error::Rewrite(e) => write!(f, "{e}"),
            Error::NoRewriting { query } => write!(
                f,
                "no feasible view-based rewriting answers query {query} over the current fragments"
            ),
            Error::Untranslatable(m) => write!(f, "rewriting not executable: {m}"),
            Error::Engine(e) => write!(f, "execution error: {e}"),
            Error::Chase(e) => write!(f, "chase error: {e}"),
            Error::BadFragment(m) => write!(f, "invalid fragment: {m}"),
            Error::Dml(m) => write!(f, "dml error: {m}"),
            Error::Invalid(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == crate::analyze::Severity::Error)
                    .count();
                write!(f, "DDL rejected by static analysis: {errors} error(s)")?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            Error::AllPlansFailed { query, attempts } => {
                write!(
                    f,
                    "all {} executable plan(s) for query {query} failed",
                    attempts.len()
                )?;
                for a in attempts {
                    write!(
                        f,
                        "; alternative {} [{}]: {}",
                        a.alternative, a.rewriting, a.error
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<RewriteError> for Error {
    fn from(e: RewriteError) -> Self {
        Error::Rewrite(e)
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<ChaseError> for Error {
    fn from(e: ChaseError) -> Self {
        Error::Chase(e)
    }
}

/// Mediator result alias.
pub type Result<T> = std::result::Result<T, Error>;
