//! Mediator-level errors.

use estocada_chase::{ChaseError, RewriteError};
use estocada_engine::EngineError;
use std::fmt;

/// Any failure surfaced by the ESTOCADA mediator.
#[derive(Debug)]
pub enum Error {
    /// Query text failed to parse.
    Parse(String),
    /// A name (dataset, table, fragment, column) was not found.
    UnknownName(String),
    /// Rewriting failed.
    Rewrite(RewriteError),
    /// No feasible rewriting covers the query with the current fragments.
    NoRewriting {
        /// The query name.
        query: String,
    },
    /// A rewriting exists but could not be translated to executable form
    /// (e.g. non-tree document pattern, unbound node-id join).
    Untranslatable(String),
    /// Runtime execution failed.
    Engine(EngineError),
    /// A chase run failed outside rewriting (e.g. materialization checks).
    Chase(ChaseError),
    /// Invalid fragment specification.
    BadFragment(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::UnknownName(n) => write!(f, "unknown name: {n}"),
            Error::Rewrite(e) => write!(f, "{e}"),
            Error::NoRewriting { query } => write!(
                f,
                "no feasible view-based rewriting answers query {query} over the current fragments"
            ),
            Error::Untranslatable(m) => write!(f, "rewriting not executable: {m}"),
            Error::Engine(e) => write!(f, "execution error: {e}"),
            Error::Chase(e) => write!(f, "chase error: {e}"),
            Error::BadFragment(m) => write!(f, "invalid fragment: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<RewriteError> for Error {
    fn from(e: RewriteError) -> Self {
        Error::Rewrite(e)
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<ChaseError> for Error {
    fn from(e: ChaseError) -> Self {
        Error::Chase(e)
    }
}

/// Mediator result alias.
pub type Result<T> = std::result::Result<T, Error>;
