//! The epoch-keyed caches behind the shared `&self` query path: the
//! rewrite-plan cache and (PR 8) the query-lint cache, both instances of
//! one generic [`EpochCache`].
//!
//! PACB rewriting is a pure function of `(query CQ, catalog views, schema
//! constraints, access map)` — and since PR 2 it is *deterministic* at any
//! worker count, which is what makes an outcome computed by one query
//! thread safely reusable by every other. The same holds for the static
//! analyzer's query lints: a pure function of `(query CQ, schema)`. The
//! catalog/schema inputs are summarized by the mediator's **catalog
//! epoch** (bumped by every DDL operation: `register_dataset`,
//! `add_fragment`, `drop_fragment`), so the cache key is `(canonical CQ,
//! epoch)`: any DDL invalidates the whole cache wholesale (the epoch no
//! longer matches), and repeat query shapes within an epoch skip the
//! cached computation entirely.
//!
//! The map is a small sharded `RwLock<HashMap>` (reads take a shard read
//! lock only), bounded by a per-shard FIFO: the cache can never grow past
//! [`EpochCache::capacity`] entries no matter how many distinct ad-hoc
//! shapes a workload produces. Entries store an `Arc`, so a hit is one
//! clone of a pointer. Hit/miss counters are relaxed atomics surfaced per
//! query in [`crate::report::Report::plan_cache`].
//!
//! Two threads racing on the same cold key both compute the value and
//! both try to insert; determinism makes the two values identical, so
//! first-insert-wins is correct and the loser merely did redundant work
//! (exactly what the serial run would have computed).

use crate::analyze::Diagnostic;
use estocada_chase::RewriteOutcome;
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shard count: enough to keep concurrent readers of distinct shapes off
/// each other's locks, small enough that `len()` stays trivial.
const SHARDS: usize = 16;

/// Default bound on cached outcomes across all shards.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1_024;

/// Counters and size of an epoch cache at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache since construction / last reset.
    pub hits: u64,
    /// Lookups that had to run the cached computation.
    pub misses: u64,
    /// Values currently cached.
    pub entries: usize,
}

struct Entry<V> {
    epoch: u64,
    value: V,
}

struct Shard<V> {
    map: HashMap<String, Entry<V>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
}

impl<V> Default for Shard<V> {
    fn default() -> Shard<V> {
        Shard {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }
}

/// The rewrite-plan cache: `canonical CQ → Arc<RewriteOutcome>`.
pub type PlanCache = EpochCache<Arc<RewriteOutcome>>;

/// The query-lint cache: `canonical CQ → Arc<Vec<Diagnostic>>` — the
/// analyzer's per-query findings, reused until the next DDL.
pub type LintCache = EpochCache<Arc<Vec<Diagnostic>>>;

/// A bounded, sharded, epoch-keyed map `String → V` (see the module
/// docs). `V` is expected to be cheap to clone (an `Arc`).
pub struct EpochCache<V: Clone> {
    shards: Vec<RwLock<Shard<V>>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> EpochCache<V> {
    /// A cache bounded to roughly `capacity` values (rounded up to a
    /// multiple of the shard count; `capacity = 0` disables storage but
    /// still counts misses).
    pub fn new(capacity: usize) -> EpochCache<V> {
        EpochCache {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            per_shard: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Total entry bound.
    pub fn capacity(&self) -> usize {
        self.per_shard * SHARDS
    }

    fn shard(&self, key: &str) -> &RwLock<Shard<V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// The cached value for `key` at `epoch`, if any. An entry from an
    /// older epoch never matches (DDL bumped the epoch past it). Counts a
    /// hit or a miss.
    pub fn lookup(&self, key: &str, epoch: u64) -> Option<V> {
        let found = {
            let shard = self.shard(key).read();
            shard
                .map
                .get(key)
                .filter(|e| e.epoch == epoch)
                .map(|e| e.value.clone())
        };
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Cache `value` under `(key, epoch)`. First insert wins on a racing
    /// key (the values are identical by determinism); a stale-epoch entry
    /// under the same key is replaced in place. At capacity the oldest
    /// entry of the key's shard is evicted (FIFO).
    pub fn insert(&self, key: String, epoch: u64, value: V) {
        if self.per_shard == 0 {
            return;
        }
        let mut shard = self.shard(&key).write();
        if let Some(existing) = shard.map.get_mut(&key) {
            if existing.epoch != epoch {
                *existing = Entry { epoch, value };
            }
            return;
        }
        while shard.map.len() >= self.per_shard {
            match shard.order.pop_front() {
                Some(old) => {
                    shard.map.remove(&old);
                }
                None => break,
            }
        }
        shard.order.push_back(key.clone());
        shard.map.insert(key, Entry { epoch, value });
    }

    /// Drop every entry (the DDL path calls this on each epoch bump — the
    /// epoch tag alone already makes stale entries unreachable, clearing
    /// eagerly just returns their memory).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.write();
            s.map.clear();
            s.order.clear();
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter + size snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

impl<V: Clone> Default for EpochCache<V> {
    fn default() -> EpochCache<V> {
        EpochCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl<V: Clone> std::fmt::Debug for EpochCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("EpochCache")
            .field("entries", &s.entries)
            .field("capacity", &self.capacity())
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use estocada_chase::{RewriteOutcome, RewriteStats};
    use estocada_pivot::CqBuilder;

    fn outcome(tag: &str) -> Arc<RewriteOutcome> {
        Arc::new(RewriteOutcome {
            rewritings: Vec::new(),
            universal_plan: CqBuilder::new(tag)
                .head_vars(["x"])
                .atom("R", |a| a.v("x"))
                .build(),
            complete: true,
            stats: RewriteStats::default(),
        })
    }

    #[test]
    fn hit_and_miss_counting() {
        let c = PlanCache::new(8);
        assert!(c.lookup("q1", 0).is_none());
        c.insert("q1".into(), 0, outcome("a"));
        assert!(c.lookup("q1", 0).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn epoch_bump_invalidates() {
        let c = PlanCache::new(8);
        c.insert("q1".into(), 0, outcome("a"));
        assert!(c.lookup("q1", 1).is_none(), "stale epoch must miss");
        // Re-inserting at the new epoch replaces in place.
        c.insert("q1".into(), 1, outcome("b"));
        assert!(c.lookup("q1", 1).is_some());
        assert!(c.lookup("q1", 0).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_is_bounded() {
        let c = PlanCache::new(32);
        for i in 0..10_000 {
            c.insert(format!("q{i}"), 0, outcome("a"));
        }
        assert!(c.len() <= c.capacity(), "{} > {}", c.len(), c.capacity());
        assert!(c.capacity() < 100);
    }

    #[test]
    fn clear_empties_everything() {
        let c = PlanCache::new(32);
        for i in 0..20 {
            c.insert(format!("q{i}"), 0, outcome("a"));
        }
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn first_insert_wins_on_same_epoch() {
        let c = PlanCache::new(8);
        c.insert("q".into(), 0, outcome("first"));
        c.insert("q".into(), 0, outcome("second"));
        let got = c.lookup("q", 0).unwrap();
        assert_eq!(got.universal_plan.name.to_string(), "first");
    }

    #[test]
    fn concurrent_lookups_and_inserts_are_safe() {
        let c = PlanCache::new(64);
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..500 {
                        let key = format!("q{}", (t * 31 + i) % 40);
                        if c.lookup(&key, 0).is_none() {
                            c.insert(key, 0, outcome("x"));
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 40);
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 8 * 500);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let c = PlanCache::new(0);
        c.insert("q".into(), 0, outcome("a"));
        assert!(c.lookup("q", 0).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn lint_cache_shares_the_machinery() {
        use crate::analyze::{Code, Diagnostic};
        let c = LintCache::new(8);
        assert!(c.lookup("q", 3).is_none());
        let diags = Arc::new(vec![Diagnostic {
            severity: Code::CartesianProductBody.severity(),
            code: Code::CartesianProductBody,
            target: "query q".into(),
            message: "cross product".into(),
            witness: None,
        }]);
        c.insert("q".into(), 3, diags);
        let got = c.lookup("q", 3).expect("hit");
        assert_eq!(got.len(), 1);
        assert!(c.lookup("q", 4).is_none(), "DDL epoch bump invalidates");
    }
}
